"""Figure 7: the symbolic execution tree example on real gates."""

from repro.eval.figure7 import build_figure7, render_figure7
from repro.logic.ternary import ONE, UNKNOWN, ZERO


def test_figure7_execution_tree(timed, bench_json):
    prefix, left, right, left_final, right_final = timed(build_figure7)

    # common prefix: reset lands in S=0; untainted 1 moves to S=1;
    # the tainted 0 taints the next state.
    assert prefix[1].s == (ZERO, 0)
    assert prefix[2].s == (ONE, 0)
    assert prefix[2].s_next == (ONE, 1)

    # the paper's punchline rows
    assert left_final == (ZERO, 1)  # tainted reset cannot de-taint
    assert right_final == (ZERO, 0)  # untainted reset de-taints

    bench_json(
        "fig7_tree",
        {
            "prefix_steps": len(prefix),
            "left_steps": len(left),
            "right_steps": len(right),
        },
        wall_seconds=timed.seconds,
    )
    print()
    print(render_figure7())
