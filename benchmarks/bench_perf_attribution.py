"""Instrumentation overhead of the perf-attribution profiler.

The attribution mode in :mod:`repro.sim.compiled` exists to steer the
simulator-speedup work, so it must not distort what it measures: the
documented budget is **<15% overhead** over the uninstrumented run.
This bench times the same gate-level run plain and armed (interleaved,
best-of-N on each side) and also checks the attribution document's
self-consistency: the sum of the measured components must cover the
run's wall time to within 10%.
"""

import time

import pytest

from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.obs.perf import PerfAttribution, PerfHarness
from repro.sim.runner import GateRunner

LOOP = """
    mov #400, r10
loop:
    dec r10
    jnz loop
    halt
"""

CYCLES = 1_000
ROUNDS = 5


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


def test_attribution_overhead(circuit, bench_json):
    program = assemble(LOOP, name="loop")

    def run_plain():
        start = time.perf_counter()
        GateRunner(circuit, program).run(max_cycles=CYCLES)
        return time.perf_counter() - start

    def run_armed():
        recorder = PerfAttribution()
        harness = PerfHarness(
            GateRunner(circuit, program), recorder
        )
        harness.run(max_cycles=CYCLES)
        return harness

    run_plain()  # warm every lazy cache before timing
    # Host throughput drifts substantially between runs, so compare
    # back-to-back pairs and take the median per-round ratio: slow
    # phases hit both sides of a pair, not one.
    ratios = []
    plain_times = []
    armed_times = []
    harness = None
    for _ in range(ROUNDS):
        plain_times.append(run_plain())
        harness = run_armed()
        armed_times.append(harness.wall_seconds)
        ratios.append(armed_times[-1] / plain_times[-1])
    plain = min(plain_times)
    armed = min(armed_times)
    overhead = sorted(ratios)[len(ratios) // 2]

    document = harness.to_document("loop")
    fraction = document["attributed_fraction"]
    bench_json(
        "perf_attribution",
        {
            "cycles": harness.cycles,
            "plain_seconds": plain,
            "armed_seconds": armed,
            "overhead_ratio": overhead,
            "round_ratios": ratios,
            "attributed_fraction": fraction,
            "ranks": len(document["ranks"]),
            "cones": len(document["cones"]),
            "activity_samples": document["activity"]["samples"],
            "mean_changed_fraction": document["activity"][
                "mean_changed_fraction"
            ],
        },
        wall_seconds=armed,
        cycles_per_second=harness.cycles / armed,
    )

    assert document["ranks"], "no rank attribution recorded"
    assert document["cones"], "no cones discovered"
    assert abs(1.0 - fraction) < 0.10, (
        f"attributed {100 * fraction:.1f}% of wall time; the measured "
        "components must cover the run to within 10%"
    )
    assert overhead < 1.15, (
        f"attribution overhead {overhead:.3f}x exceeds the 15% budget "
        f"(plain {plain:.3f}s, armed {armed:.3f}s)"
    )
