"""Timeline flight-recorder overhead on the gate-level hot path.

Two contracts from the timeline design (DESIGN.md section 9):

* recording every cycle's state delta into a ``TimelineRecorder`` must
  cost < 15% over the unrecorded gate-level run;
* the on-disk ``.timeline`` format must stay compact -- the document
  reports bytes per 1k recorded cycles so format regressions show up in
  the BENCH trajectory.

Emits ``BENCH_timeline.json``.
"""

import time

import pytest

from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.obs.timeline import (
    TimelineRecorder,
    record_timeline,
    save_timeline,
)
from repro.sim.runner import GateRunner

LOOP = """
    mov #400, r10
loop:
    dec r10
    jnz loop
    halt
"""


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_timeline_recording_overhead(circuit, tmp_path, bench_json):
    """Per-cycle delta capture must cost < 15% over the plain run."""
    program = assemble(LOOP, name="loop")
    cycles = 2_000
    rounds = 5

    def run_plain():
        return GateRunner(circuit, program).run(max_cycles=cycles)

    def run_recording():
        recorder = TimelineRecorder()
        with record_timeline(recorder):
            ran = GateRunner(circuit, program).run(max_cycles=cycles)
        return ran, recorder

    run_plain()  # warm every lazy cache before timing

    # Interleave the variants so clock drift biases neither side;
    # compare best-of-N against best-of-N.
    plain_times, recording_times = [], []
    recorder = None
    for _ in range(rounds):
        plain_times.append(_timed(run_plain)[1])
        (ran, recorder), seconds = _timed(run_recording)
        recording_times.append(seconds)
    plain = min(plain_times)
    recording = min(recording_times)
    overhead = recording / plain

    assert recorder.num_frames > 1_000

    out = tmp_path / "loop.timeline"
    save_timeline(out, recorder)
    size = out.stat().st_size
    bytes_per_1k_cycles = 1_000 * size / recorder.num_frames

    bench_json(
        "timeline",
        {
            "cycles": recorder.num_frames,
            "keyframes": recorder.keyframes,
            "plain_seconds": plain,
            "recording_seconds": recording,
            "overhead_ratio": overhead,
            "file_bytes": size,
            "bytes_per_1k_cycles": bytes_per_1k_cycles,
            "rounds": rounds,
        },
        wall_seconds=recording,
        cycles_per_second=recorder.num_frames / recording,
    )
    print(
        f"\ntimeline: {recorder.num_frames} frames, "
        f"{overhead:.3f}x overhead, "
        f"{bytes_per_1k_cycles / 1024:.1f} KiB per 1k cycles"
    )
    assert overhead < 1.15, (
        f"timeline recording overhead {overhead:.3f}x exceeds the 15% "
        f"target (plain {plain:.3f}s, recording {recording:.3f}s)"
    )
