"""Figures 2-5: the motivating offset application, analysed end to end."""

from repro.eval.motivation import build_motivation, render_motivation


def test_figures_2_to_5(timed, bench_json):
    rows = timed(build_motivation)
    by_figure = {row.figure: row for row in rows}

    # Figure 3: clean split between tainted and untainted halves.
    assert by_figure["Figure 3"].secure

    # Figure 4: the tainted offset makes the system vulnerable, with the
    # memory condition among the breaks.
    assert not by_figure["Figure 4"].secure
    assert 2 in by_figure["Figure 4"].conditions

    # Figure 5: the masking repair restores security.
    assert by_figure["Figure 5"].secure

    bench_json(
        "fig2to5_motivation",
        {
            "figures": [row.figure for row in rows],
            "secure": {row.figure: row.secure for row in rows},
        },
        wall_seconds=timed.seconds,
    )
    print()
    print(render_motivation(rows))
