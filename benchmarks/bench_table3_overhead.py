"""Table 3: overhead with vs. without application-specific analysis.

Paper shape asserted here:
* clean benchmarks pay 0% with analysis but substantial overhead without;
* violators pay comparable overhead in both columns (their protection is
  necessary);
* the with-analysis average sits near the paper's ~15%;
* analysis reduces the average cost by a substantial factor (paper 3.3x;
  our hand-written, register-allocated kernels give the always-on
  baseline fewer stores to mask, so the measured factor is ~2x -- see
  EXPERIMENTS.md).
"""

from repro.eval.table3 import build_table3, render_table3, summarize
from repro.workloads.registry import BENCHMARKS, TABLE2_VIOLATORS


def test_table3_overheads(timed, bench_json):
    rows = timed(build_table3)
    by_name = {row.name: row for row in rows}

    for name, info in BENCHMARKS.items():
        row = by_name[name]
        if info.expected_violator:
            assert row.with_overhead > 0, f"{name} should need protection"
            # necessary protection: with-analysis cost is close to (never
            # above) the always-on cost
            assert row.with_overhead <= row.without_overhead + 1e-9
        else:
            assert row.with_overhead == 0.0, f"{name} should be free"
            assert row.without_overhead > 0

    summary = summarize(rows)
    assert 5.0 <= summary["with_avg"] <= 30.0  # paper: 15.1%
    assert summary["reduction_factor"] >= 1.5  # paper: 3.3x

    bench_json(
        "table3_overhead",
        {
            "with_avg": summary["with_avg"],
            "reduction_factor": summary["reduction_factor"],
            "workloads": [row.name for row in rows],
        },
        wall_seconds=timed.seconds,
    )
    print()
    print(render_table3(rows))
