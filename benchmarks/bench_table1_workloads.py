"""Table 1: the benchmark roster with measured sizes and CPI."""

from repro.eval.table1 import build_table1, render_table1


def test_table1_workloads(timed, bench_json):
    rows = timed(build_table1)
    assert len(rows) == 13
    names = {row.name for row in rows}
    assert {"mult", "binSearch", "tea8", "Viterbi"} <= names

    # the multi-cycle LP430's CPI band (paper: per-instruction rate in a
    # narrow band on openMSP430)
    for row in rows:
        assert 2.0 <= row.cpi <= 6.0, f"{row.name}: CPI {row.cpi:.2f}"

    bench_json(
        "table1_workloads",
        {
            "workloads": [row.name for row in rows],
            "cpi": {row.name: row.cpi for row in rows},
        },
        wall_seconds=timed.seconds,
    )
    print()
    print(render_table1(rows))
