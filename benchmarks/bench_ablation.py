"""Ablation studies for the design choices DESIGN.md calls out.

Not paper tables -- these quantify *why* the reproduction (and the paper)
is built the way it is:

1. **Value-aware GLIFT vs naive DIFT.**  With value-blind taint
   propagation, a tainted value poisons every mux leg it reaches, so all
   clean benchmarks become false positives -- no application could ever
   be verified on commodity hardware, which is exactly the paper's
   argument for gate-level value-aware tracking.
2. **Exact-visit budget vs pure widening.**  With no exact-exploration
   budget, conservative merging widens bounded untainted loop pointers
   bit by bit until their stores appear to escape the partition -- clean
   kernels turn into false condition-2 violations.
3. **Slice-plan optimisation (Section 7.2).**  The overhead-minimising
   interval/slice choice vs naively bounding every task with one fixed
   interval.
4. **Scratch-register masking preserves functionality.**  The repair must
   not change what the program computes on benign inputs.
"""

from itertools import cycle

from repro.baselines.naive import naive_taint_analysis
from repro.core import TaintTracker
from repro.isasim.executor import run_concrete
from repro.transform import choose_slicing, secure_compile
from repro.transform.slicing import PER_SLICE_OVERHEAD, SlicePlan
from repro.workloads.registry import benchmark


def test_ablation_value_aware_taint(timed, bench_json):
    """Naive DIFT cannot verify any clean application."""
    names = ["mult", "rle", "tea8"]

    def run():
        outcomes = {}
        for name in names:
            program = benchmark(name).service_program()
            glift = TaintTracker(program, max_cycles=400_000).run()
            naive = naive_taint_analysis(program, max_cycles=400_000)
            outcomes[name] = (glift.secure, naive.secure)
        return outcomes

    outcomes = timed(run)
    bench_json(
        "ablation",
        {
            "study": "value_aware_taint",
            "outcomes": {
                name: {"glift_secure": g, "naive_secure": n}
                for name, (g, n) in outcomes.items()
            },
        },
        wall_seconds=timed.seconds,
    )
    for name, (glift_secure, naive_secure) in outcomes.items():
        assert glift_secure, f"{name} must verify under GLIFT"
        assert not naive_secure, (
            f"{name} should be a false positive under naive taint"
        )
    print()
    print("taint-semantics ablation (secure?):")
    for name, (glift_secure, naive_secure) in outcomes.items():
        print(
            f"  {name:6s}  value-aware GLIFT: {glift_secure}   "
            f"naive DIFT: {naive_secure}"
        )


def test_ablation_exact_visit_budget(once):
    """Pure widening (budget 0) falsely flags bounded untainted loops."""

    def run():
        program = benchmark("mult").service_program()
        exact = TaintTracker(program, max_cycles=400_000).run()
        widened = TaintTracker(
            program, max_cycles=400_000, exact_branch_visits=0
        ).run()
        return exact, widened

    exact, widened = once(run)
    assert exact.secure
    assert not widened.secure
    assert 2 in widened.violated_conditions()
    print()
    print(
        "exploration ablation on mult: "
        f"default budget -> secure={exact.secure} "
        f"({exact.stats.cycles_simulated} cycles); "
        f"widening-only -> secure={widened.secure} "
        f"conditions={sorted(widened.violated_conditions())}"
    )


def test_ablation_slice_optimizer(once):
    """The Section 7.2 optimiser vs a fixed one-size interval."""

    def run():
        comparisons = []
        for task_cycles in (100, 700, 3_000, 9_000, 30_000, 120_000):
            optimal = choose_slicing(task_cycles)
            import math

            slices = max(
                1, math.ceil(task_cycles / (8192 - PER_SLICE_OVERHEAD))
            )
            fixed = SlicePlan(8192, 1, slices, task_cycles)
            comparisons.append((task_cycles, optimal, fixed))
        return comparisons

    comparisons = once(run)
    print()
    print("slice-plan ablation (overhead %):")
    for task_cycles, optimal, fixed in comparisons:
        assert optimal.total_cycles <= fixed.total_cycles
        print(
            f"  task {task_cycles:>7d} cyc: optimised "
            f"{100 * optimal.overhead_fraction:6.1f}%  "
            f"(interval {optimal.interval} x {optimal.slices})   "
            f"fixed-8192 {100 * fixed.overhead_fraction:6.1f}%"
        )


def test_ablation_masking_preserves_function(once):
    """The repaired binSearch still finds the key."""

    def run():
        info = benchmark("binSearch")
        inputs = cycle([23])  # table[5]
        baseline = run_concrete(
            info.measurement_program(),
            inputs=lambda port: next(inputs),
            follow_watchdog=False,
        )
        repaired = secure_compile(
            info.service_source,
            name="binSearch",
            task_cycles={"bench": baseline.cycles},
            max_cycles=800_000,
        )
        inputs2 = cycle([23])
        protected = run_concrete(
            repaired.program,
            inputs=lambda port: next(inputs2),
            max_cycles=200_000,
            stop=lambda r: r.writes_to("P2OUT") >= 1,
        )
        return baseline, protected

    baseline, protected = once(run)
    base_out = baseline.port_writes[-1][1].value
    prot_out = next(
        w.value for p, w in protected.port_writes if p == "P2OUT"
    )
    assert base_out == prot_out == 5
    print()
    print(
        f"masking-functionality ablation: baseline finds index "
        f"{base_out}, repaired binary finds {prot_out}"
    )
