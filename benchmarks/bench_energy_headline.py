"""The abstract's headline numbers: ~15% average energy overhead and the
analysis-driven cost reduction."""

from repro.eval.energy import energy_rows, render_energy, summarize_energy
from repro.eval.table3 import build_table3


def test_energy_headline(timed, bench_json):
    table3 = timed(build_table3)
    rows = energy_rows(table3)
    summary = summarize_energy(rows)

    # paper headline: "15% energy overhead, on average"
    assert 4.0 <= summary["with_avg"] <= 30.0
    # paper headline: analysis reduces cost by 3.3x (ours ~2x; see
    # EXPERIMENTS.md for the store-density discussion)
    assert summary["reduction_factor"] >= 1.5

    # the idle fill burns less than full power: energy overhead never
    # exceeds the cycle overhead
    for energy_row, cycle_row in zip(rows, table3):
        assert (
            energy_row.with_overhead <= cycle_row.with_overhead + 1e-6
        )

    bench_json(
        "energy_headline",
        {
            "with_avg": summary["with_avg"],
            "reduction_factor": summary["reduction_factor"],
            "rows": len(rows),
        },
        wall_seconds=timed.seconds,
    )
    print()
    print(render_energy(table3))
