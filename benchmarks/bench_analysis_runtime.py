"""Footnote 4: analysis tractability across the suite."""

from repro.eval.runtime import build_runtime, render_runtime


def test_analysis_runtime(timed, bench_json):
    rows = timed(build_runtime)
    assert len(rows) == 13

    for row in rows:
        # the conservative approximation must terminate every benchmark
        assert row.wall_seconds < 300, f"{row.name} took too long"
        # and it terminates *because* of merging, not luck: every
        # benchmark's exploration ends in merge-stops
        assert row.merge_terminations >= 1, row.name

    bench_json(
        "analysis_runtime",
        {
            "total_wall_seconds": sum(r.wall_seconds for r in rows),
            "benchmarks": {row.name: row for row in rows},
        },
        wall_seconds=timed.seconds,
    )

    print()
    print(render_runtime(rows))
