"""Footnote 4: analysis tractability across the suite."""

from repro.eval.runtime import build_runtime, render_runtime


def test_analysis_runtime(once):
    rows = once(build_runtime)
    assert len(rows) == 13

    for row in rows:
        # the conservative approximation must terminate every benchmark
        assert row.wall_seconds < 300, f"{row.name} took too long"
        # and it terminates *because* of merging, not luck: every
        # benchmark's exploration ends in merge-stops
        assert row.merge_terminations >= 1, row.name

    print()
    print(render_runtime(rows))
