"""Event-engine speedup on a real Table 1 workload.

Runs the same gate-level workload under both evaluation engines and
emits their throughputs side by side.  The headline metrics
(``wall_seconds`` / ``cycles_per_second``) are the *event* engine's, so
the ``repro bench --check`` regression detector guards the speedup: if
the dirty-set sweep ever degenerates to dense-pass cost, the event
series' cycles_per_second collapses and the gate trips.

Quick by design (it is part of the CI ``perf-smoke`` gate via
``repro bench --quick``): one workload, a few thousand cycles.
"""

import time

from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.sim.runner import GateRunner
from repro.workloads.registry import BENCHMARKS

#: The measured workload.  binSearch idles between watchdog-paced
#: service requests, which is exactly the activity profile the event
#: engine exploits; any Table 1 workload works, this one demonstrates.
WORKLOAD = "binSearch"
CYCLES = 1_500
ROUNDS = 3


def _program():
    info = BENCHMARKS[WORKLOAD]
    return assemble(info.service_source, name=WORKLOAD)


def _best_run(engine, program):
    """Best-of-N (cycles, seconds) for one engine."""
    circuit = compiled_cpu(engine)
    GateRunner(circuit, program).run(max_cycles=200)  # warm caches
    best = None
    for _ in range(ROUNDS):
        runner = GateRunner(circuit, program)
        start = time.perf_counter()
        cycles = runner.run(max_cycles=CYCLES, stop_at_halt=False)
        seconds = time.perf_counter() - start
        if best is None or seconds < best[1]:
            best = (cycles, seconds)
    return best


def test_event_engine_speedup(benchmark, bench_json):
    program = _program()

    def measure():
        return _best_run("dense", program), _best_run("event", program)

    (dense_cycles, dense_seconds), (event_cycles, event_seconds) = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    assert dense_cycles == event_cycles == CYCLES
    dense_cps = dense_cycles / dense_seconds
    event_cps = event_cycles / event_seconds
    speedup = event_cps / dense_cps

    bench_json(
        "simulator_event_engine",
        {
            "workload": WORKLOAD,
            "cycles": CYCLES,
            "engines": {
                "dense": {
                    "wall_seconds": dense_seconds,
                    "cycles_per_second": dense_cps,
                },
                "event": {
                    "wall_seconds": event_seconds,
                    "cycles_per_second": event_cps,
                },
            },
            "speedup": speedup,
        },
        wall_seconds=event_seconds,
        cycles_per_second=event_cps,
    )
    # The committed artifact records the measured ratio (>= 10x on this
    # host); the in-test floor is looser so CI timer noise cannot flake
    # the build while still catching any real degeneration.
    assert speedup >= 5.0, (
        f"event engine only {speedup:.2f}x dense on {WORKLOAD} "
        f"(dense {dense_cps:.0f} cyc/s, event {event_cps:.0f} cyc/s)"
    )
