"""Figure 8 / Section 5.3: the untainted-timer-reset micro-benchmark.

"Consider the left-hand code listing in Figure 8 ... once the PC becomes
tainted, it never becomes untainted again.  However, if the watchdog timer
is set using untainted code, each execution of the untainted code section
has a trusted PC."
"""

from repro.core import TaintTracker
from repro.isa.assembler import assemble
from repro.workloads import micro


def analyse_both():
    unprotected = TaintTracker(
        assemble(micro.FIG8_UNPROTECTED, name="fig8"),
        max_cycles=600_000,
    ).run()
    protected = TaintTracker(
        assemble(micro.FIG8_PROTECTED, name="fig8p"),
        max_cycles=600_000,
    ).run()
    return unprotected, protected


def test_fig8_watchdog_reset(timed, bench_json):
    unprotected, protected = timed(analyse_both)

    assert not unprotected.secure
    assert 1 in unprotected.violated_conditions()

    assert protected.secure
    # the tainted control flow is still *present* (advisory), but the
    # watchdog's untainted reset makes it harmless
    assert protected.tasks_needing_watchdog() == ["tainted_code"]
    assert protected.stats.fast_forwarded_cycles > 0

    cycles = (
        unprotected.stats.cycles_simulated
        + protected.stats.cycles_simulated
    )
    bench_json(
        "fig8_watchdog",
        {
            "unprotected_secure": unprotected.secure,
            "protected_secure": protected.secure,
            "cycles": cycles,
        },
        wall_seconds=timed.seconds,
        cycles_per_second=cycles / timed.seconds if timed.seconds else None,
    )
    print()
    print("Figure 8 unprotected:", unprotected.report().splitlines()[2])
    print("Figure 8 protected:  ", protected.report().splitlines()[2])
