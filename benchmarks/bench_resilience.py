"""Resilience-layer overhead on the un-degraded hot path.

The budget checks and checkpoint-cadence test run on every worklist pop
and instruction fetch; an armed-but-unexhausted budget plus a
never-due checkpointer must cost < 5% over the unbudgeted analysis.
Emits ``BENCH_resilience.json``.
"""

import time

import pytest

from repro.core import TaintTracker, default_policy
from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.resilience import AnalysisBudget, Checkpointer
from repro.workloads.registry import BENCHMARKS


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_budget_and_checkpoint_overhead(circuit, tmp_path, bench_json):
    """Armed budgets + cadence checks on a real Table 1 analysis."""
    program = assemble(BENCHMARKS["intAVG"].service_source, name="intavg")
    policy = default_policy()
    rounds = 5

    def run_plain():
        return TaintTracker(program, policy, circuit=circuit).run()

    def run_armed():
        # Every axis armed but far from exhaustion, plus a checkpointer
        # whose cadence never comes due: the zero-degradation hot path.
        budget = AnalysisBudget(
            max_paths=10**6,
            max_cycles=10**9,
            max_merged_states=10**6,
            deadline_seconds=3600.0,
            max_rss_mb=1 << 20,
        )
        checkpointer = Checkpointer(
            tmp_path / "never.ckpt", every_paths=10**6
        )
        return TaintTracker(
            program,
            policy,
            circuit=circuit,
            budget=budget,
            checkpointer=checkpointer,
        ).run()

    baseline = run_plain()  # warm every lazy cache before timing

    # Interleave the variants so clock drift biases neither side.
    plain_times, armed_times = [], []
    for _ in range(rounds):
        plain_times.append(_timed(run_plain)[1])
        armed_result, seconds = _timed(run_armed)
        armed_times.append(seconds)
    plain = min(plain_times)
    armed = min(armed_times)
    overhead = armed / plain

    # The armed run must not have degraded anything.
    assert armed_result.verdict == baseline.verdict
    assert not armed_result.exhausted
    assert armed_result.stats.drained_paths == 0
    assert not (tmp_path / "never.ckpt").exists()

    bench_json(
        "resilience",
        {
            "workload": "intAVG",
            "verdict": armed_result.verdict,
            "paths": armed_result.stats.paths,
            "plain_seconds": plain,
            "armed_seconds": armed,
            "overhead_ratio": overhead,
            "rounds": rounds,
        },
        wall_seconds=armed,
    )
    assert overhead < 1.05, (
        f"budget/checkpoint overhead {overhead:.3f}x exceeds the 5% "
        f"target (plain {plain:.3f}s, armed {armed:.3f}s)"
    )
