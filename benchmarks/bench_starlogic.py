"""Footnote 8: *-logic vs application-specific analysis."""

from repro.eval.starlogic_eval import build_starlogic, render_starlogic
from repro.workloads.registry import TABLE2_VIOLATORS


def test_starlogic_comparison(timed, bench_json):
    names = list(TABLE2_VIOLATORS) + ["mult", "tea8"]
    rows = timed(build_starlogic, names=names)
    by_name = {row.name: row for row in rows}

    for name in TABLE2_VIOLATORS:
        row = by_name[name]
        # *-logic loses the PC and most of the netlist on the violators,
        # including the watchdog the software techniques rely on.
        assert row.pc_lost_at is not None, name
        assert row.unknown_tainted_fraction > 0.5, name
        assert not row.watchdog_verifiable, name

    # clean kernels keep a verifiable watchdog even under *-logic
    assert by_name["mult"].watchdog_verifiable
    assert by_name["tea8"].watchdog_verifiable

    violators = [by_name[n] for n in TABLE2_VIOLATORS]
    average = sum(r.unknown_tainted_fraction for r in violators) / len(
        violators
    )
    assert average > 0.55  # paper: ~70% of gates

    bench_json(
        "starlogic",
        {
            "workloads": names,
            "avg_unknown_tainted_fraction": average,
        },
        wall_seconds=timed.seconds,
    )
    print()
    print(render_starlogic(rows))
