"""Shared configuration for the reproduction benchmarks.

Each module regenerates one of the paper's tables or figures, benchmarks
the generation (single-round: these are experiments, not microbenchmarks)
and asserts the paper's qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only -s

Benchmarks additionally emit machine-readable ``BENCH_<name>.json``
documents (to ``benchmarks/out/`` by default, or ``$REPRO_BENCH_DIR``)
so the performance trajectory of the simulator and tracker can be
tracked across commits.
"""

import json
import os
from pathlib import Path

import pytest

from repro.eval.formatting import to_jsonable

#: Bump when the emitted BENCH_*.json document shape changes.
BENCH_SCHEMA = 1


def bench_output_dir() -> Path:
    return Path(
        os.environ.get(
            "REPRO_BENCH_DIR", Path(__file__).parent / "out"
        )
    )


def emit_bench_json(name: str, payload: dict) -> Path:
    """Write one machine-readable benchmark document.

    *payload* is converted with :func:`repro.eval.formatting.to_jsonable`
    so dataclasses and numpy scalars pass straight through.
    """
    out_dir = bench_output_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    document = {"bench": name, "schema": BENCH_SCHEMA}
    document.update(to_jsonable(payload))
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark *func* with exactly one round/iteration."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


@pytest.fixture
def once(benchmark):
    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner


@pytest.fixture
def bench_json():
    """Emit a BENCH_<name>.json document from inside a benchmark."""
    return emit_bench_json
