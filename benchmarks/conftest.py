"""Shared configuration for the reproduction benchmarks.

Each module regenerates one of the paper's tables or figures, benchmarks
the generation (single-round: these are experiments, not microbenchmarks)
and asserts the paper's qualitative shape.  Run with::

    pytest benchmarks/ -s

Every benchmark module additionally emits one machine-readable
``BENCH_<name>.json`` document to the repository root (override with
``$REPRO_BENCH_DIR``) so the performance trajectory lands in version
control and can be diffed commit over commit.  The document schema and
common keys (``bench``/``schema``/``host``/``git_rev``/``utc``/
``wall_seconds``, plus ``cycles_per_second`` for cycle-based benches)
live in :mod:`_emit`, shared with the ``repro bench`` regression
tracker.
"""

import importlib.util
from pathlib import Path

import pytest

_spec = importlib.util.spec_from_file_location(
    "repro_bench_emit", Path(__file__).parent / "_emit.py"
)
_emit = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_emit)

#: Re-exported so existing callers (and tests loading this conftest
#: standalone) keep one import point.
BENCH_SCHEMA = _emit.BENCH_SCHEMA
bench_output_dir = _emit.bench_output_dir
host_note = _emit.host_note
emit_bench_json = _emit.emit_bench_json


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark *func* with exactly one round/iteration."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


@pytest.fixture
def once(benchmark):
    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner


@pytest.fixture
def timed(benchmark):
    """Like ``once`` but also keeps the wall time on ``timed.seconds``,
    so the test can hand it to ``bench_json(..., wall_seconds=...)``."""
    import time

    def runner(func, *args, **kwargs):
        start = time.perf_counter()
        result = run_once(benchmark, func, *args, **kwargs)
        runner.seconds = time.perf_counter() - start
        return result

    runner.seconds = None
    return runner


@pytest.fixture
def bench_json():
    """Emit a BENCH_<name>.json document from inside a benchmark."""
    return emit_bench_json
