"""Shared configuration for the reproduction benchmarks.

Each module regenerates one of the paper's tables or figures, benchmarks
the generation (single-round: these are experiments, not microbenchmarks)
and asserts the paper's qualitative shape.  Run with::

    pytest benchmarks/ -s

Every benchmark module additionally emits one machine-readable
``BENCH_<name>.json`` document to the repository root (override with
``$REPRO_BENCH_DIR``) so the performance trajectory lands in version
control and can be diffed commit over commit.  Schema 2, common keys on
every document: ``bench`` (name), ``schema``, ``host`` (platform note),
``wall_seconds`` (headline wall time) and ``cycles_per_second`` (null
for benches with no cycle notion), plus bench-specific payload fields.
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.eval.formatting import to_jsonable

#: Bump when the emitted BENCH_*.json document shape changes.
#: v1 wrote bench-specific payloads to ``benchmarks/out/``; v2 writes to
#: the repo root and stamps host/wall_seconds/cycles_per_second on every
#: document.
BENCH_SCHEMA = 2


def bench_output_dir() -> Path:
    """Where BENCH_*.json lands: the repo root, so artifacts are
    version-controlled next to the tables they regenerate."""
    return Path(
        os.environ.get("REPRO_BENCH_DIR", Path(__file__).parent.parent)
    )


def host_note() -> str:
    return (
        f"{platform.platform()} / {platform.python_implementation()} "
        f"{platform.python_version()}"
    )


def emit_bench_json(
    name: str,
    payload: dict,
    wall_seconds: float = None,
    cycles_per_second: float = None,
) -> Path:
    """Write one machine-readable benchmark document.

    *payload* is converted with :func:`repro.eval.formatting.to_jsonable`
    so dataclasses and numpy scalars pass straight through; it may also
    override the common ``wall_seconds``/``cycles_per_second`` keys.
    """
    out_dir = bench_output_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "schema": BENCH_SCHEMA,
        "host": host_note(),
        "wall_seconds": wall_seconds,
        "cycles_per_second": cycles_per_second,
    }
    document.update(to_jsonable(payload))
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark *func* with exactly one round/iteration."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


@pytest.fixture
def once(benchmark):
    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner


@pytest.fixture
def timed(benchmark):
    """Like ``once`` but also keeps the wall time on ``timed.seconds``,
    so the test can hand it to ``bench_json(..., wall_seconds=...)``."""
    import time

    def runner(func, *args, **kwargs):
        start = time.perf_counter()
        result = run_once(benchmark, func, *args, **kwargs)
        runner.seconds = time.perf_counter() - start
        return result

    runner.seconds = None
    return runner


@pytest.fixture
def bench_json():
    """Emit a BENCH_<name>.json document from inside a benchmark."""
    return emit_bench_json
