"""Shared configuration for the reproduction benchmarks.

Each module regenerates one of the paper's tables or figures, benchmarks
the generation (single-round: these are experiments, not microbenchmarks)
and asserts the paper's qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark *func* with exactly one round/iteration."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


@pytest.fixture
def once(benchmark):
    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner
