"""Table 4: embedded-processor feature survey (static data check)."""

from repro.eval.table4 import TABLE4, render_table4


def test_table4_features(timed, bench_json):
    rows = timed(lambda: TABLE4)
    by_name = {row.processor: row for row in rows}
    # the paper's survey rows
    assert not by_name["TI MSP430"].branch_predictor
    assert not by_name["TI MSP430"].cache
    assert by_name["ARM Cortex-M3"].branch_predictor
    assert by_name["Intel Quark-D1000"].cache
    # the reproduction's processor sits in the deterministic class
    lp430 = by_name["LP430 (this reproduction)"]
    assert not lp430.branch_predictor and not lp430.cache

    bench_json(
        "table4_features",
        {"processors": [row.processor for row in rows]},
        wall_seconds=timed.seconds,
    )
    print()
    print(render_table4())
