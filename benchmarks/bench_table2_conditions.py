"""Table 2: condition violations before/after modification, all 13
benchmarks.

Paper shape: exactly six violators (binSearch, div, inSort, intAVG,
tHold, Viterbi), each breaking conditions 1 and 2; none break 3, 4 or 5
(footnote 7); after the toolflow's modifications, zero violations remain.
"""

from repro.eval.table2 import build_table2, render_table2
from repro.workloads.registry import TABLE2_VIOLATORS


def test_table2_conditions(timed, bench_json):
    rows = timed(build_table2)
    by_name = {row.name: row for row in rows}

    violators = {row.name for row in rows if row.unmodified}
    assert violators == set(TABLE2_VIOLATORS)

    for name in TABLE2_VIOLATORS:
        row = by_name[name]
        assert row.unmodified == {1, 2}, f"{name}: {row.unmodified}"
        # footnote 7: conditions 3-5 never break
        assert not row.unmodified & {3, 4, 5}
        # after modification, all violations eliminated
        assert row.modified == set(), f"{name} still violates"
        assert row.bounded  # the watchdog mechanism was applied

    for row in rows:
        if row.name not in TABLE2_VIOLATORS:
            assert row.unmodified == set()

    bench_json(
        "table2_conditions",
        {
            "violators": sorted(violators),
            "workloads": [row.name for row in rows],
        },
        wall_seconds=timed.seconds,
    )
    print()
    print(render_table2(rows))
