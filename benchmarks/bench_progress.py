"""Armed-progress-estimator overhead on the analysis hot path.

The estimator rides the same boundaries as the budget (worklist pops,
fetch boundaries) behind a counter-then-interval double throttle, so an
*armed* estimator -- attached and snapshotting at the service's default
cadence -- must cost under 5% over a plain analysis on a real Table 1
workload.  Measured interleaved, best-of-N, like the other overhead
benches.

Emits ``BENCH_progress.json`` with the ratio plus the snapshot counts so
the trajectory (and the throttle's effectiveness) is tracked across
commits.
"""

import time

import pytest

from repro.core import TaintTracker, default_policy
from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.resilience import AnalysisBudget, ProgressEstimator
from repro.workloads.registry import BENCHMARKS

#: The acceptance ceiling: armed progress must stay under 5% overhead.
OVERHEAD_CEILING = 1.05

#: The service worker's default snapshot cadence (heartbeat interval).
ARMED_INTERVAL = 0.5


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_progress_overhead(circuit, bench_json):
    program = assemble(BENCHMARKS["intAVG"].service_source, name="intavg")
    policy = default_policy()
    rounds = 5

    def run_plain():
        return TaintTracker(
            program, policy, circuit=circuit, budget=AnalysisBudget()
        ).run()

    def run_armed():
        estimator = ProgressEstimator(interval_seconds=ARMED_INTERVAL)
        result = TaintTracker(
            program,
            policy,
            circuit=circuit,
            budget=AnalysisBudget(),
            progress=estimator,
        ).run()
        return result, estimator

    baseline = run_plain()  # warm every lazy cache before timing

    # Interleave the variants so clock drift biases neither side.
    plain_times, armed_times = [], []
    estimator = None
    for _ in range(rounds):
        plain_times.append(_timed(run_plain)[1])
        (armed_result, estimator), seconds = _timed(run_armed)
        armed_times.append(seconds)
    plain = min(plain_times)
    armed = min(armed_times)
    overhead = armed / plain
    jitter = max(plain_times) / min(plain_times)

    # The estimator must not perturb the analysis itself.
    assert armed_result.verdict == baseline.verdict
    assert armed_result.stats.paths == baseline.stats.paths
    assert (
        armed_result.stats.cycles_simulated
        == baseline.stats.cycles_simulated
    )

    # It must have actually armed: at least the final forced snapshot.
    assert estimator.snapshots_taken >= 1
    assert estimator.latest is not None
    assert estimator.latest.fraction == 1.0

    bench_json(
        "progress",
        {
            "workload": "intAVG",
            "verdict": armed_result.verdict,
            "paths": armed_result.stats.paths,
            "plain_seconds": plain,
            "armed_seconds": armed,
            "overhead_ratio": overhead,
            "plain_jitter_ratio": jitter,
            "snapshots_taken": estimator.snapshots_taken,
            "interval_seconds": ARMED_INTERVAL,
            "rounds": rounds,
        },
        wall_seconds=armed,
    )
    assert overhead < OVERHEAD_CEILING, (
        f"armed progress overhead {overhead:.3f}x exceeds the 5% target "
        f"(plain {plain:.3f}s, armed {armed:.3f}s)"
    )
