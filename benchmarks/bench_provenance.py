"""Provenance-recording overhead on the gate-level analysis hot path.

Two contracts from the provenance design:

* recorder *off* (the default): the per-group ``get_recorder()`` None
  check must cost < 2% over a build without the hook -- measured here as
  plain-vs-plain jitter with the hook compiled in, bounded at 2%;
* recorder *on*: recording every newly-tainted net's cause edge must
  stay under 25% over the plain analysis on a real Table 1 workload.

Emits ``BENCH_provenance.json`` with both ratios so the trajectory is
tracked across commits.
"""

import time

import pytest

from repro.core import TaintTracker, default_policy
from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.obs.provenance import ProvenanceRecorder, explain_violation
from repro.workloads.registry import BENCHMARKS


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_provenance_overhead(circuit, bench_json):
    program = assemble(BENCHMARKS["intAVG"].service_source, name="intavg")
    policy = default_policy()
    rounds = 5

    def run_plain():
        return TaintTracker(program, policy, circuit=circuit).run()

    def run_recording():
        recorder = ProvenanceRecorder()
        result = TaintTracker(
            program, policy, circuit=circuit, provenance=recorder
        ).run()
        return result, recorder

    baseline = run_plain()  # warm every lazy cache before timing

    # Interleave the variants so clock drift biases neither side.
    plain_times, recording_times = [], []
    for _ in range(rounds):
        plain_times.append(_timed(run_plain)[1])
        (recorded_result, recorder), seconds = _timed(run_recording)
        recording_times.append(seconds)
    plain = min(plain_times)
    recording = min(recording_times)
    overhead = recording / plain
    # Off-path jitter bound: successive plain runs against each other.
    off_ratio = max(plain_times) / min(plain_times)

    # Recording must not perturb the analysis itself.
    assert recorded_result.verdict == baseline.verdict
    assert recorded_result.stats.paths == baseline.stats.paths
    assert recorder.recorded > 0

    # The recorded edges must actually explain the violations.
    explained = 0
    for index in range(len(recorded_result.violations)):
        flow = explain_violation(recorded_result, index)
        if flow.origins:
            explained += 1
    if recorded_result.violations:
        assert explained > 0, "no violation reached a labelled origin"

    bench_json(
        "provenance",
        {
            "workload": "intAVG",
            "verdict": recorded_result.verdict,
            "paths": recorded_result.stats.paths,
            "plain_seconds": plain,
            "provenance_seconds": recording,
            "overhead_ratio": overhead,
            "off_jitter_ratio": off_ratio,
            "edges": recorder.recorded,
            "truncated": recorder.truncated,
            "violations": len(recorded_result.violations),
            "violations_explained": explained,
            "rounds": rounds,
        },
        wall_seconds=recording,
    )
    assert overhead < 1.25, (
        f"provenance overhead {overhead:.3f}x exceeds the 25% target "
        f"(plain {plain:.3f}s, recording {recording:.3f}s)"
    )
