"""Shared BENCH_*.json artifact emission for every benchmark module.

One helper, one schema.  Every ``benchmarks/bench_*.py`` emits its
machine-readable document through :func:`emit_bench_json` (via the
``bench_json`` fixture in ``conftest.py``), so the common keys are
enforced in exactly one place and ``repro bench`` / the regression
detector can rely on them:

* ``bench``   -- the document name (``BENCH_<bench>.json``);
* ``schema``  -- :data:`BENCH_SCHEMA`;
* ``host``    -- platform note (OS / interpreter / version);
* ``git_rev`` -- the commit the numbers were measured at (falls back to
  ``$REPRO_GIT_REV``, then ``"unknown"`` outside a git checkout);
* ``utc``     -- ISO-8601 UTC emission timestamp;
* ``wall_seconds``      -- the headline wall time;
* ``cycles_per_second`` -- present **only** for cycle-based benches;
  benches with no cycle notion omit the key instead of writing a
  meaningless ``null``.

Version history: v1 wrote bench-specific payloads to
``benchmarks/out/``; v2 moved to the repo root and stamped
host/wall_seconds/cycles_per_second on every document; v3 added
``git_rev``/``utc`` and dropped the null ``cycles_per_second``.
"""

import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

from repro.eval.formatting import to_jsonable

#: Bump when the emitted BENCH_*.json document shape changes.
BENCH_SCHEMA = 3

_REPO_ROOT = Path(__file__).parent.parent


def bench_output_dir() -> Path:
    """Where BENCH_*.json lands: the repo root, so artifacts are
    version-controlled next to the tables they regenerate."""
    return Path(os.environ.get("REPRO_BENCH_DIR", _REPO_ROOT))


def host_note() -> str:
    return (
        f"{platform.platform()} / {platform.python_implementation()} "
        f"{platform.python_version()}"
    )


def git_rev() -> str:
    """The HEAD commit hash, so every artifact names the code it
    measured.  ``$REPRO_GIT_REV`` overrides (CI detached worktrees);
    outside a checkout the stamp degrades to ``"unknown"``."""
    override = os.environ.get("REPRO_GIT_REV")
    if override:
        return override
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def utc_now() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def emit_bench_json(
    name: str,
    payload: dict,
    wall_seconds: float = None,
    cycles_per_second: float = None,
) -> Path:
    """Write one machine-readable benchmark document.

    *payload* is converted with :func:`repro.eval.formatting.to_jsonable`
    so dataclasses and numpy scalars pass straight through; it may also
    override the common keys.  ``cycles_per_second`` is omitted (not
    nulled) when the bench has no cycle notion.
    """
    out_dir = bench_output_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "schema": BENCH_SCHEMA,
        "host": host_note(),
        "git_rev": git_rev(),
        "utc": utc_now(),
        "wall_seconds": wall_seconds,
    }
    if cycles_per_second is not None:
        document["cycles_per_second"] = cycles_per_second
    document.update(to_jsonable(payload))
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path
