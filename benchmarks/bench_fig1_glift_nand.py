"""Figure 1: the GLIFT NAND truth table, regenerated and checked."""

from repro.eval.figure1 import boolean_rows, render_figure1

#: the paper's sixteen rows, verbatim
PAPER_FIGURE1 = [
    (0, 0, 0, 0, 1, 0),
    (0, 0, 0, 1, 1, 0),
    (0, 0, 1, 0, 1, 0),
    (0, 0, 1, 1, 1, 0),
    (0, 1, 0, 0, 1, 0),
    (0, 1, 0, 1, 1, 1),
    (0, 1, 1, 0, 1, 1),
    (0, 1, 1, 1, 1, 1),
    (1, 0, 0, 0, 1, 0),
    (1, 0, 0, 1, 1, 1),
    (1, 0, 1, 0, 0, 0),
    (1, 0, 1, 1, 0, 1),
    (1, 1, 0, 0, 1, 0),
    (1, 1, 0, 1, 1, 1),
    (1, 1, 1, 0, 0, 1),
    (1, 1, 1, 1, 0, 1),
]


def test_figure1_glift_nand(timed, bench_json):
    rows = timed(boolean_rows)
    assert rows == PAPER_FIGURE1  # exact, bit for bit
    bench_json(
        "fig1_glift_nand",
        {"rows": len(rows), "exact_match": True},
        wall_seconds=timed.seconds,
    )
    print()
    print(render_figure1(include_ternary=True))
