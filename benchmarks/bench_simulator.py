"""Infrastructure micro-benchmarks: simulator and analysis throughput.

Not a paper table -- these quantify the reproduction's own substrate so
performance regressions in the gate-level simulator or tracker show up.
Each test also emits a ``BENCH_*.json`` document (see conftest) so the
perf trajectory is tracked commit over commit.
"""

import time

import pytest

from repro.core import TaintTracker
from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.isasim.executor import run_concrete
from repro.obs import Observer, TraceRecorder, observe
from repro.sim.runner import GateRunner

LOOP = """
    mov #400, r10
loop:
    dec r10
    jnz loop
    halt
"""


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


def _timed(func, *args):
    start = time.perf_counter()
    result = func(*args)
    return result, time.perf_counter() - start


def test_gate_level_cycles_per_second(benchmark, circuit, bench_json):
    program = assemble(LOOP, name="loop")
    times = []

    def run():
        result, seconds = _timed(
            lambda: GateRunner(circuit, program).run(max_cycles=2_000)
        )
        times.append(seconds)
        return result

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 1_000

    # Per-engine throughput on a *real* Table 1 workload (the dec-loop
    # above is active every cycle, which is exactly the profile the
    # event engine cannot exploit -- it burst-escalates to dense cost).
    # The headline series stays the dense engine for ledger continuity;
    # the payload records both engines and the measured speedup.  The
    # CI-guarded quick gate on the same measurement lives in
    # bench_engine_event.py.
    from repro.workloads.registry import BENCHMARKS

    workload = "binSearch"
    real = assemble(BENCHMARKS[workload].service_source, name=workload)
    real_cycles = 1_500
    engines = {}
    for engine in ("dense", "event"):
        engine_circuit = compiled_cpu(engine)
        GateRunner(engine_circuit, real).run(max_cycles=200)  # warm
        best = None
        for _ in range(5):
            runner = GateRunner(engine_circuit, real)
            ran, seconds = _timed(
                lambda r=runner: r.run(
                    max_cycles=real_cycles, stop_at_halt=False
                )
            )
            assert ran == real_cycles
            if best is None or seconds < best:
                best = seconds
        engines[engine] = {
            "wall_seconds": best,
            "cycles_per_second": real_cycles / best,
        }

    bench_json(
        "simulator_gate_level",
        {
            "cycles": cycles,
            "engine_workload": workload,
            "engine_cycles": real_cycles,
            "engines": engines,
            "event_speedup": (
                engines["event"]["cycles_per_second"]
                / engines["dense"]["cycles_per_second"]
            ),
        },
        wall_seconds=min(times),
        cycles_per_second=cycles / min(times),
    )


def test_tracing_overhead(circuit, tmp_path, bench_json):
    """Full observability (JSONL trace + metrics + spans) on the
    gate-level runner must cost < 10% over the untraced run."""
    program = assemble(LOOP, name="loop")
    cycles = 400
    rounds = 5

    def run_plain():
        return GateRunner(circuit, program).run(max_cycles=cycles)

    def run_traced(path):
        observer = Observer(trace=TraceRecorder(path))
        with observe(observer):
            ran = GateRunner(circuit, program).run(max_cycles=cycles)
        observer.close()
        return ran, observer

    run_plain()  # warm every lazy cache before timing
    # Interleave the two variants so clock-speed drift over the run
    # biases neither side; compare best-of-N against best-of-N.
    plain_times = []
    traced_times = []
    observer = None
    for index in range(rounds):
        plain_times.append(_timed(run_plain)[1])
        (_, observer), seconds = _timed(
            run_traced, tmp_path / f"trace{index}.jsonl"
        )
        traced_times.append(seconds)
    plain = min(plain_times)
    traced = min(traced_times)

    overhead = traced / plain
    snapshot = observer.snapshot()
    bench_json(
        "simulator_tracing_overhead",
        {
            "cycles": cycles,
            "plain_seconds": plain,
            "traced_seconds": traced,
            "overhead_ratio": overhead,
            "events_per_run": observer.trace.events_written,
            "counters": snapshot["metrics"]["counters"],
        },
        wall_seconds=traced,
        cycles_per_second=cycles / traced,
    )
    assert snapshot["metrics"]["counters"]["sim.gate_evals"] > 0
    assert overhead < 1.10, (
        f"tracing overhead {overhead:.3f}x exceeds the 10% budget "
        f"(plain {plain:.3f}s, traced {traced:.3f}s)"
    )


def test_architectural_simulator_speed(benchmark, bench_json):
    program = assemble(LOOP, name="loop")
    times = []

    def run():
        result, seconds = _timed(
            lambda: run_concrete(
                program, max_cycles=100_000, follow_watchdog=False
            ).cycles
        )
        times.append(seconds)
        return result

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 1_000
    bench_json(
        "simulator_architectural",
        {"cycles": cycles},
        wall_seconds=min(times),
        cycles_per_second=cycles / min(times),
    )


def test_tracker_throughput(benchmark, circuit, bench_json):
    source = """
.task sys trusted
start:
    mov #0x0FFE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    and #0x03FF, r4
    bis #0x0400, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""
    program = assemble(source, name="clean")
    times = []

    def analyse():
        result, seconds = _timed(
            lambda: TaintTracker(program, circuit=circuit).run()
        )
        times.append(seconds)
        return result

    result = benchmark.pedantic(analyse, rounds=3, iterations=1)
    assert result.secure
    bench_json(
        "tracker_throughput",
        {"stats": result.stats},
        wall_seconds=min(times),
    )


def test_cpu_compile_time(benchmark, bench_json):
    from repro.cpu.build import build_cpu
    from repro.sim.compiled import CompiledCircuit

    times = []

    def compile_cpu():
        result, seconds = _timed(
            lambda: CompiledCircuit(build_cpu())
        )
        times.append(seconds)
        return result

    compiled = benchmark.pedantic(compile_cpu, rounds=3, iterations=1)
    assert compiled.num_dffs > 300
    bench_json("cpu_compile_time", {}, wall_seconds=min(times))
