"""Infrastructure micro-benchmarks: simulator and analysis throughput.

Not a paper table -- these quantify the reproduction's own substrate so
performance regressions in the gate-level simulator or tracker show up.
"""

import pytest

from repro.cpu import compiled_cpu
from repro.core import TaintTracker
from repro.isa.assembler import assemble
from repro.isasim.executor import run_concrete
from repro.sim.runner import GateRunner

LOOP = """
    mov #400, r10
loop:
    dec r10
    jnz loop
    halt
"""


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


def test_gate_level_cycles_per_second(benchmark, circuit):
    program = assemble(LOOP, name="loop")

    def run():
        runner = GateRunner(circuit, program)
        return runner.run(max_cycles=2_000)

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 1_000


def test_architectural_simulator_speed(benchmark):
    program = assemble(LOOP, name="loop")

    def run():
        return run_concrete(
            program, max_cycles=100_000, follow_watchdog=False
        ).cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 1_000


def test_tracker_throughput(benchmark, circuit):
    source = """
.task sys trusted
start:
    mov #0x0FFE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    and #0x03FF, r4
    bis #0x0400, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""
    program = assemble(source, name="clean")

    def analyse():
        return TaintTracker(program, circuit=circuit).run()

    result = benchmark.pedantic(analyse, rounds=3, iterations=1)
    assert result.secure


def test_cpu_compile_time(benchmark):
    from repro.cpu.build import build_cpu
    from repro.sim.compiled import CompiledCircuit

    compiled = benchmark.pedantic(
        lambda: CompiledCircuit(build_cpu()), rounds=3, iterations=1
    )
    assert compiled.num_dffs > 300
