"""Section 7.3: information-flow secure scheduling on MiniRTOS."""

from repro.eval.rtos_case import build_rtos_case


def test_rtos_secure_scheduling(timed, bench_json):
    case = timed(build_rtos_case)

    # the unprotected system is vulnerable through the untrusted task
    assert case.unprotected_conditions == {1, 2}
    assert case.flagged_stores >= 1  # the paper found 330 in binSearch

    # the toolflow repairs it: watchdog around bs_task, masks as flagged
    assert case.bounded_tasks == ["bs_task"]
    assert case.repaired_secure

    # "the total performance overhead ... is only 0.83%"
    assert case.overhead_percent < 5.0
    assert case.protected_cycles >= case.baseline_cycles

    bench_json(
        "rtos_usecase",
        {
            "overhead_percent": case.overhead_percent,
            "baseline_cycles": case.baseline_cycles,
            "protected_cycles": case.protected_cycles,
            "repaired_secure": case.repaired_secure,
        },
        wall_seconds=timed.seconds,
    )
    print()
    print(case.report())
