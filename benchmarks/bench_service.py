"""Analysis-service overheads: submission fsync, journal replay, and
end-to-end supervised turnaround vs a bare in-process analysis.

Three numbers matter for the daemon:

* **submit latency** -- a 202 includes an fsync'd journal append, so
  acknowledgement throughput is bounded by the disk, not the analyzer;
* **replay throughput** -- crash recovery replays the full journal
  before the daemon serves again, so restart time scales with it;
* **supervision overhead** -- the gap between a supervised job's
  turnaround (spawn subprocess, heartbeat, reap, classify, journal) and
  the same analysis run in-process.  The gap is dominated by worker
  interpreter startup and is the price of crash isolation.

Emits ``BENCH_service.json``.
"""

import time

from repro.core import TaintTracker, default_policy
from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.service import AnalysisService, ServiceConfig
from repro.service.journal import JobJournal

#: Single-path insecure program: minimal analysis, so the measured
#: turnaround is almost entirely service machinery.
TINY = """\
.task sys trusted
start:
    mov &P1IN, r4
    mov r4, &P4OUT
    halt
"""

SUBMISSIONS = 50


def test_service_overheads(tmp_path, timed, bench_json):
    compiled_cpu()  # build the circuit cache outside every timer

    # -- submit latency (fsync per acknowledgement) --------------------
    queue_root = tmp_path / "queue"
    queue = AnalysisService(
        ServiceConfig(root=str(queue_root), queue_capacity=SUBMISSIONS + 1)
    )
    queue.start()
    start = time.perf_counter()
    for index in range(SUBMISSIONS):
        queue.submit(source=TINY, name=f"s{index}")
    submit_seconds = time.perf_counter() - start
    queue.journal.close()

    # -- journal replay (crash-recovery restart cost) ------------------
    start = time.perf_counter()
    replayed = JobJournal(queue_root).replay()
    replay_seconds = time.perf_counter() - start
    assert len(replayed) == SUBMISSIONS

    # -- bare in-process analysis (the floor) --------------------------
    program = assemble(TINY, name="tiny")
    start = time.perf_counter()
    result = TaintTracker(program, default_policy()).run()
    inprocess_seconds = time.perf_counter() - start
    assert result.verdict == "insecure"

    # -- supervised end-to-end turnaround ------------------------------
    service = AnalysisService(
        ServiceConfig(root=str(tmp_path / "svc"), workers=1, poll_interval=0.02)
    )
    service.start()

    def turnaround():
        record = service.submit(source=TINY, name="timed")
        while not record.terminal:
            service.tick()
            time.sleep(service.config.poll_interval)
        return record

    try:
        record = timed(turnaround)
        assert record.verdict == "insecure"
        assert record.attempts == 1
    finally:
        for handle in list(service.supervisor.live.values()):
            handle.kill("bench cleanup")
        service.journal.close()

    bench_json(
        "service",
        {
            "submissions": SUBMISSIONS,
            "submit_seconds_total": submit_seconds,
            "submits_per_second": SUBMISSIONS / submit_seconds,
            "replay_seconds": replay_seconds,
            "replayed_jobs": len(replayed),
            "inprocess_seconds": inprocess_seconds,
            "turnaround_seconds": timed.seconds,
            "supervision_overhead_seconds": (
                timed.seconds - inprocess_seconds
            ),
        },
        wall_seconds=timed.seconds,
    )
