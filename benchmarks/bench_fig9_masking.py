"""Figure 9 / Section 5.3: the software masked-addressing micro-benchmark.

"We observe during information flow tracking that the entire memory space
becomes tainted ... When instructions are inserted that guarantee that
the unknown address is bounded to the tainted task's region in data
memory, then the result of information flow tracking indicates that no
untainted memory locations can be tainted."
"""

from repro import memmap
from repro.core import TaintTracker
from repro.core.labels import SecurityPolicy
from repro.isa.assembler import assemble
from repro.sim.runner import GateRunner
from repro.cpu import compiled_cpu
from repro.workloads import micro


def analyse_both():
    unmasked = TaintTracker(
        assemble(micro.FIG9_UNMASKED, name="fig9"), max_cycles=400_000
    ).run()
    masked = TaintTracker(
        assemble(micro.FIG9_MASKED, name="fig9m"), max_cycles=400_000
    ).run()
    return unmasked, masked


def taint_footprints():
    """Raw gate-level runs measuring which RAM words get tainted."""
    footprints = {}
    for label, source in (
        ("unmasked", micro.FIG9_UNMASKED),
        ("masked", micro.FIG9_MASKED),
    ):
        runner = GateRunner(compiled_cpu(), assemble(source, name=label))
        runner.run(max_cycles=400)
        ram = runner.soc.space.ram
        footprints[label] = (
            ram.region_taint_count(memmap.RAM_BASE, memmap.TAINTED_RAM_BASE),
            ram.region_taint_count(
                memmap.TAINTED_RAM_BASE, memmap.TAINTED_RAM_END
            ),
            ram.region_taint_count(memmap.TAINTED_RAM_END, memmap.RAM_END),
        )
    return footprints


def test_fig9_memory_masking(timed, bench_json):
    unmasked, masked = timed(analyse_both)

    assert 2 in unmasked.violated_conditions()
    assert 2 not in masked.violated_conditions()

    footprints = taint_footprints()
    below, inside, above = footprints["unmasked"]
    assert below > 0 and above > 0  # the whole data memory gets tainted
    below, inside, above = footprints["masked"]
    assert below == 0 and above == 0  # confined to 0x0400..0x07FF
    assert inside > 0

    cycles = (
        unmasked.stats.cycles_simulated + masked.stats.cycles_simulated
    )
    bench_json(
        "fig9_masking",
        {"footprints": footprints, "cycles": cycles},
        wall_seconds=timed.seconds,
        cycles_per_second=cycles / timed.seconds if timed.seconds else None,
    )
    print()
    print("Figure 9 tainted-word footprint (below / inside / above the "
          "tainted partition):")
    for label, counts in footprints.items():
        print(f"  {label:9s} {counts}")
