"""Parallel path exploration: measured walls plus a schedule model.

Two numbers matter and they are kept strictly apart:

* **measured** -- real wall-clock of the same analysis at ``jobs`` 1, 2
  and 4 on *this* host.  Path-level parallelism can only pay when the
  host actually has cores; a quota-capped CI container with one
  effective core will measure ~1x regardless of the architecture, so
  the document also records the calibrated effective core count.
* **model** -- a discrete-event list-scheduling simulation driven by
  *measured per-path compute times* from an instrumented serial run and
  the real fork-tree dependency structure (a child path becomes ready
  when its parent's exploration finishes; the ready stack pops in the
  coordinator's canonical order).  This is the host-independent speedup
  of the coordinator/worker design, and the >=2x-at-4-jobs acceptance
  gate is asserted on it.

Emits ``BENCH_parallel.json``.
"""

import time
from typing import Dict, List

import pytest

from repro.core import TaintTracker, default_policy
from repro.cpu import compiled_cpu
from repro.workloads.registry import benchmark

#: Fork-heavy Table 1 workload used for the headline numbers.  Viterbi
#: forks 58 times into a wide tree (binSearch forks more but along a
#: dominant serial spine, capping its attainable speedup below 2x).
WORKLOAD = "Viterbi"
JOB_COUNTS = (1, 2, 4)
MODEL_SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


def _burn(n):
    x = 0
    for i in range(n):
        x += i * i
    return x


def _effective_cores() -> float:
    """Calibrate how much CPU-bound parallelism this host really gives
    (container quotas can make os.cpu_count() a lie)."""
    from multiprocessing import Pool

    n = 2_500_000
    start = time.perf_counter()
    for _ in range(4):
        _burn(n)
    serial = time.perf_counter() - start
    with Pool(4) as pool:
        start = time.perf_counter()
        pool.map(_burn, [n] * 4)
        parallel = time.perf_counter() - start
    return round(serial / parallel, 2)


class _TimedTracker(TaintTracker):
    """Serial tracker that records, per explored work item, the compute
    time and the child items it enqueued -- the exact task graph the
    parallel coordinator schedules."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.task_times: Dict[int, float] = {}
        self.task_children: Dict[int, List[int]] = {}
        self._item_nodes: Dict[int, int] = {}

    def _explore_path(self, node_id, worklist):
        before = len(worklist)
        start = time.perf_counter()
        try:
            super()._explore_path(node_id, worklist)
        finally:
            elapsed = time.perf_counter() - start
            self.task_times[node_id] = (
                self.task_times.get(node_id, 0.0) + elapsed
            )
            children = [item.node_id for item in worklist[before:]]
            self.task_children.setdefault(node_id, []).extend(children)


def _simulate_makespan(
    times: Dict[int, float],
    children: Dict[int, List[int]],
    root: int,
    workers: int,
) -> float:
    """Greedy list scheduling of the measured fork tree on N workers.

    The ready stack pops in the coordinator's canonical LIFO order; a
    child becomes ready the moment its parent's exploration finishes.
    """
    import heapq

    ready: List[int] = [root]
    #: (finish_time, sequence, node) of in-flight tasks
    running: List[tuple] = []
    sequence = 0
    now = 0.0
    makespan = 0.0
    while ready or running:
        while ready and len(running) < workers:
            node = ready.pop()
            sequence += 1
            finish = now + times.get(node, 0.0)
            heapq.heappush(running, (finish, sequence, node))
        finish, _, node = heapq.heappop(running)
        now = makespan = max(makespan, finish)
        # children enqueued in fork order; LIFO pop matches coordinator
        for child in children.get(node, []):
            ready.append(child)
    return makespan


def test_parallel_exploration_speedup(circuit, bench_json):
    info = benchmark(WORKLOAD)
    program = info.service_program()
    policy = default_policy()

    # Warm every lazily-built simulation cache (plan totals, counter
    # tables) so the jobs=1 wall is not inflated by one-time setup.
    TaintTracker(program, policy=policy, circuit=circuit).run()

    # --- measured: real walls at each worker count ---------------------
    measured = {}
    results = {}
    for jobs in JOB_COUNTS:
        start = time.perf_counter()
        results[jobs] = TaintTracker(
            program, policy=policy, circuit=circuit, jobs=jobs
        ).run()
        measured[jobs] = round(time.perf_counter() - start, 3)
    # determinism sanity: the bench must not trade correctness for speed
    for jobs in JOB_COUNTS[1:]:
        assert results[jobs].verdict == results[1].verdict
        assert results[jobs].stats.paths == results[1].stats.paths

    # --- model: measured task graph, simulated schedule ----------------
    timed = _TimedTracker(program, policy=policy, circuit=circuit)
    timed_result = timed.run()
    root = min(timed.task_times)
    makespans = {
        jobs: _simulate_makespan(
            timed.task_times, timed.task_children, root, jobs
        )
        for jobs in JOB_COUNTS
    }
    model_speedup = {
        jobs: round(makespans[1] / makespans[jobs], 2)
        for jobs in JOB_COUNTS
    }
    critical_path = _simulate_makespan(
        timed.task_times, timed.task_children, root, 10**6
    )

    cores = _effective_cores()
    document = {
        "workload": WORKLOAD,
        "paths": timed_result.stats.paths,
        "forks": timed_result.stats.forks,
        "host": {
            "effective_cores_measured": cores,
        },
        "measured": {
            "basis": "wall-clock of the full analysis on this host",
            "wall_seconds": measured,
            "speedup": {
                jobs: round(measured[1] / measured[jobs], 2)
                for jobs in JOB_COUNTS
            },
        },
        "model": {
            "basis": (
                "discrete-event list scheduling of per-path compute "
                "times measured from an instrumented serial run on the "
                "real fork-tree dependency structure (coordinator-order "
                "ready stack); host-independent"
            ),
            "serial_seconds": round(makespans[1], 3),
            "makespan_seconds": {
                jobs: round(makespans[jobs], 3) for jobs in JOB_COUNTS
            },
            "speedup": model_speedup,
            "critical_path_seconds": round(critical_path, 3),
            "max_parallel_speedup": round(
                makespans[1] / critical_path, 2
            ),
        },
    }
    bench_json("parallel", document, wall_seconds=measured[1])

    print(
        f"\n{WORKLOAD}: measured walls {measured} "
        f"(host gives {cores} effective cores); "
        f"model speedup {model_speedup} "
        f"(critical path {critical_path:.2f}s of {makespans[1]:.2f}s)"
    )
    # The acceptance gate rides on the host-independent model; the
    # measured number is reported alongside and matches the model
    # wherever the host actually has >= 4 cores.
    assert model_speedup[4] >= MODEL_SPEEDUP_FLOOR, (
        f"model speedup at 4 workers {model_speedup[4]} < "
        f"{MODEL_SPEEDUP_FLOOR}: the fork tree no longer exposes "
        "enough path-level parallelism"
    )
