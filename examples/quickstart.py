#!/usr/bin/env python3
"""Quickstart: analyse, repair and verify an IoT application.

This walks the paper's whole loop in ~40 lines of user code:

1. write an LP430 system binary (trusted system code + an untrusted task
   that uses a tainted input as a store offset -- the Figure 4 bug);
2. run application-specific gate-level information flow tracking;
3. let the toolflow repair it (watchdog bounding + address masking);
4. re-verify the repaired binary on the same commodity netlist.

Run:  python examples/quickstart.py
"""

from repro.core import TaintTracker, default_policy
from repro.isa.assembler import assemble
from repro.transform import secure_compile

APPLICATION = """
; A sensor task: reads an untrusted offset and an untrusted sample from
; port P1, files the sample by offset, and echoes it to port P2.
.task sys trusted
start:
    mov #0x07FE, sp        ; task stack lives in the tainted partition
    call #sensor
    jmp start

.task sensor untrusted
sensor:
    mov &P1IN, r4          ; offset  (attacker-controlled!)
    mov &P1IN, r5          ; sample  (attacker-controlled)
    tst r5
    jz sensor_store        ; input-dependent control flow
    inc r5
sensor_store:
    mov r5, 0(r4)          ; unmasked store through the tainted offset
    mov r5, &P2OUT
    ret
"""


def main() -> None:
    print("=" * 72)
    print("step 1: application-specific gate-level information flow "
          "tracking")
    print("=" * 72)
    program = assemble(APPLICATION, name="sensor")
    result = TaintTracker(program, policy=default_policy()).run()
    print(result.report())

    print()
    print("=" * 72)
    print("step 2: automatic software repair (Figure 10/11 toolflow)")
    print("=" * 72)
    repaired = secure_compile(
        APPLICATION, name="sensor", task_cycles={"sensor": 60}
    )
    print(repaired.diagnostics())

    print()
    print("=" * 72)
    print("step 3: the repaired source")
    print("=" * 72)
    print(repaired.source)

    print("=" * 72)
    print("step 4: verification on the same commodity netlist")
    print("=" * 72)
    print(repaired.analysis.report())
    assert repaired.secure
    print()
    print("the system now guarantees gate-level information flow "
          "security -- on unmodified commodity hardware.")


if __name__ == "__main__":
    main()
