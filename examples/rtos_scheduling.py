#!/usr/bin/env python3
"""Section 7.3: information-flow secure scheduling on MiniRTOS.

A trusted divider and an untrusted binary search share the processor
under a round-robin scheduler whose entry point doubles as the reset
vector.  The toolflow bounds the untrusted task with the watchdog and
masks its flagged stores; analysis then proves no task can taint the
scheduler or the trusted task, at sub-percent runtime overhead.

Run:  python examples/rtos_scheduling.py
"""

from repro.eval.rtos_case import build_rtos_case
from repro.rtos import rtos_source


def main() -> None:
    print("MiniRTOS system source (excerpt):")
    print("\n".join(rtos_source().splitlines()[:22]))
    print("    ...")
    print()
    case = build_rtos_case()
    print(case.report())


if __name__ == "__main__":
    main()
