#!/usr/bin/env python3
"""The full toolflow on a real benchmark: binSearch from Table 1.

Shows every Figure 10/11 stage: analysis of the unmodified benchmark,
root-cause identification, the automatic rewrites, re-analysis, and the
final verified binary's disassembly.

Run:  python examples/secure_compile_demo.py
"""

from repro.core import TaintTracker
from repro.isa.disasm import disassemble_program
from repro.isasim.executor import run_concrete
from repro.transform import identify_root_causes, secure_compile
from repro.workloads.registry import benchmark


def main() -> None:
    info = benchmark("binSearch")

    print("=" * 72)
    print("analysis of the unmodified benchmark")
    print("=" * 72)
    result = TaintTracker(info.service_program(), max_cycles=800_000).run()
    print(result.report())

    print()
    print("=" * 72)
    print("root causes")
    print("=" * 72)
    causes = identify_root_causes(result)
    print(f"stores to mask:    {[hex(a) for a in causes.stores_to_mask]}")
    print(f"tasks to bound:    {causes.tasks_to_bound}")
    print(f"repairable:        {causes.automatic_repair_possible}")

    print()
    print("=" * 72)
    print("secure compile")
    print("=" * 72)
    baseline = run_concrete(
        info.measurement_program(), max_cycles=200_000,
        follow_watchdog=False,
    )
    repaired = secure_compile(
        info.service_source,
        name="binSearch",
        task_cycles={"bench": baseline.cycles},
        max_cycles=800_000,
    )
    print(repaired.diagnostics())
    print()
    print(repaired.analysis.report())

    print()
    print("=" * 72)
    print("verified binary (first 40 lines of the disassembly)")
    print("=" * 72)
    listing = disassemble_program(repaired.program)
    print("\n".join(listing.splitlines()[:40]))


if __name__ == "__main__":
    main()
