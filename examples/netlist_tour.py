#!/usr/bin/env python3
"""A tour of the hardware substrate: the gate-level LP430.

Elaborates the processor, prints its synthesis-style report, exports it
as structural Verilog (round-tripping through the parser), and runs a
small program on the raw gates while watching taint flow.

Run:  python examples/netlist_tour.py
"""

import io

from repro.cpu import build_cpu, compiled_cpu, cpu_stats
from repro.isa.assembler import assemble
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.sim.runner import GateRunner


def main() -> None:
    print(cpu_stats().format())
    print()

    text = io.StringIO()
    write_verilog(build_cpu(), text)
    verilog = text.getvalue()
    print(f"structural Verilog export: {len(verilog.splitlines())} lines")
    print("\n".join(verilog.splitlines()[:12]))
    print("  ...")
    parsed = parse_verilog(verilog)
    print(
        f"round trip: {len(parsed.gates)} cells, {len(parsed.dffs)} "
        "flip-flops re-parsed OK"
    )
    print()

    program = assemble(
        """
        mov &P1IN, r4          ; tainted input
        and #0x00FF, r4        ; mask the high byte
        mov &P3IN, r5          ; untainted input
        add r5, r4
        halt
        """,
        name="tour",
    )
    runner = GateRunner(compiled_cpu(), program)
    runner.run(max_cycles=100)
    r4 = runner.register(4)
    r5 = runner.register(5)
    print("after running on the gates:")
    print(f"  r4 = {r4!r}")
    print(f"       taint mask 0x{r4.tmask:04x}: the AND stripped the "
          "high byte's taint, the ADD's carries spread the rest")
    print(f"  r5 = {r5!r} (untainted unknown)")


if __name__ == "__main__":
    main()
