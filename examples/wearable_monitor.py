#!/usr/bin/env python3
"""A wearable heart-rate monitor: the paper's motivating IoT domain.

The introduction motivates the work with wearables and medical devices:
"smartwatches and fitness trackers to steal private information and
health data".  This example builds that system:

* a **trusted sensing task** reads the optical sensor (P3), smooths it
  with a small FIR filter and raises the alarm line (P4) on tachycardia;
* an **untrusted radio task** parses configuration packets from the
  network (P1 -- fully attacker-controlled) and stores per-profile
  thresholds in its own partition, acknowledging on P2.

The radio task has both classic bugs: packet-dependent control flow and a
packet-indexed table write.  The toolflow finds them, repairs them, and
proves the repaired firmware cannot let a network packet influence the
medical alarm -- on the unmodified commodity netlist.

Run:  python examples/wearable_monitor.py
"""

from itertools import cycle

from repro.core import TaintTracker
from repro.isa.assembler import assemble
from repro.isasim.executor import run_concrete
from repro.transform import secure_compile

FIRMWARE = """
; ------------------------------------------------------------------
; wearable heart-rate monitor firmware
; ------------------------------------------------------------------
.task kernel trusted
start:
    mov #0x0FFE, sp
    call #sense            ; trusted: sample + filter + alarm
    mov #0x07FE, sp        ; untrusted task gets the tainted-side stack
    call #radio            ; untrusted: network configuration
    jmp start

.task sense trusted
sense:
    push r10
    ; three-sample smoothing of the optical channel
    mov &P3IN, r4
    mov &P3IN, r5
    add r5, r4
    mov &P3IN, r5
    add r5, r4
    rra r4
    and #0x3FFF, r4
    rra r4
    and #0x1FFF, r4        ; r4 = smoothed sample (~avg of 3..4)
    mov r4, &0x0210        ; kernel telemetry word (untainted RAM)
    ; alarm if above the *factory* threshold (trusted constant)
    cmp #0x1200, r4
    jnc sense_ok           ; below threshold
    mov #1, r10
    mov r10, &P4OUT        ; raise the alarm line
    jmp sense_done
sense_ok:
    clr r10
    mov r10, &P4OUT
sense_done:
    pop r10
    ret

.task radio untrusted
radio:
    push r10
    mov &P1IN, r4          ; packet word 0: profile index (tainted!)
    mov &P1IN, r5          ; packet word 1: requested threshold (tainted)
    mov r5, profiles(r4)   ; store by profile index -- the Figure 4 bug
    tst r5
    jz radio_nack          ; packet-dependent control flow
    mov #0x00AC, r10       ; ACK
    jmp radio_reply
radio_nack:
    mov #0x00NAK, r10
radio_reply:
    mov r10, &P2OUT
    pop r10
    ret

.data 0x0400
profiles:
    .space 16
"""


def main() -> None:
    source = FIRMWARE.replace("#0x00NAK", "#0x004E")  # 'N'
    print("analysing the wearable firmware ...")
    result = TaintTracker(assemble(source, name="wearable")).run()
    print(result.report())
    print()

    print("repairing ...")
    repaired = secure_compile(
        source, name="wearable", task_cycles={"radio": 60}
    )
    print(repaired.diagnostics())
    assert repaired.secure
    print()
    print("the network-facing task can no longer influence the alarm.")
    print()

    print("concrete run of the verified firmware (elevated heart rate):")
    sensor = cycle([0x1900, 0x1880, 0x1910])  # tachycardia samples
    packets = cycle([3, 0x1000])

    def inputs(port):
        return next(sensor) if port == "P3IN" else next(packets)

    run = run_concrete(
        repaired.program,
        inputs=inputs,
        max_cycles=5_000,
        stop=lambda r: r.writes_to("P4OUT") >= 1,
    )
    alarm = next(w for p, w in run.port_writes if p == "P4OUT")
    print(f"  alarm line P4OUT <- {alarm.value}  (1 = tachycardia alert)")
    assert alarm.value == 1


if __name__ == "__main__":
    main()
