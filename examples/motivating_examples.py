#!/usr/bin/env python3
"""The Section 3 motivating examples (Figures 2-5), analysed end to end.

Run:  python examples/motivating_examples.py
"""

from repro.eval.motivation import build_motivation, render_motivation


def main() -> None:
    print(render_motivation(build_motivation()))
    print()
    print(
        "Takeaway (Section 3): information flow security is possible on a\n"
        "commodity processor once the application is known, and a\n"
        "vulnerable application can be repaired with software alone."
    )


if __name__ == "__main__":
    main()
