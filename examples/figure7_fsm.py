#!/usr/bin/env python3
"""Figure 7: gate-level information flow tracking on a 3-gate FSM.

Builds the paper's example circuit (S' = S xor In, resettable flip-flop)
with the circuit DSL, then replays the figure's exact input and taint
schedule, printing the per-cycle tables for the common prefix and both
branches of the execution tree.

Run:  python examples/figure7_fsm.py
"""

from repro.eval.figure7 import figure7_circuit, render_figure7
from repro.netlist.stats import netlist_stats


def main() -> None:
    circuit = figure7_circuit()
    print(netlist_stats(circuit.netlist).format())
    print()
    print(render_figure7())
    print()
    print(
        "Punchline: only an *untainted* reset de-taints processor state --\n"
        "the property the watchdog-based control-flow recovery relies on."
    )


if __name__ == "__main__":
    main()
