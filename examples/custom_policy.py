#!/usr/bin/env python3
"""Custom information flow policies: secrecy, and a custom partition.

The paper analyses two taints separately -- untrusted-ness and secrecy
(Section 4.2).  This example runs the same application under both, and
then under a policy with a differently-placed tainted partition, showing
how labels change the verdict without touching the code.

Run:  python examples/custom_policy.py
"""

from repro import memmap
from repro.core import TaintTracker, default_policy, secret_policy
from repro.core.labels import SecurityPolicy
from repro.isa.assembler import assemble
from repro.memmap import MemoryRegion

APPLICATION = """
; Reads the *secret* input port P5 and publishes a digest on P4.
.task sys trusted
start:
    mov &P5IN, r4
    swpb r4
    xor &P5IN, r4
    mov r4, &P4OUT
    halt
"""

PARTITIONED = """
; An untrusted logger writing inside a small dedicated window.
.task sys trusted
start:
    mov #0x07FE, sp
    call #logger
    jmp start
.task logger untrusted
logger:
    mov &P1IN, r4
    and #0x003F, r4        ; confine to a 64-word window
    bis #0x0600, r4        ; based at 0x0600
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""


def main() -> None:
    program = assemble(APPLICATION, name="digest")

    print("under the untrusted-taint policy (P1 tainted):")
    result = TaintTracker(program, policy=default_policy()).run()
    print(" ", "SECURE" if result.secure else "INSECURE",
          sorted(result.violated_conditions()))

    print("under the secrecy policy (P5 secret, P4 non-secret):")
    result = TaintTracker(program, policy=secret_policy()).run()
    print(" ", "SECURE" if result.secure else "INSECURE",
          sorted(result.violated_conditions()))
    print("  -> the same binary leaks secrets even though it is trusted:")
    for violation in result.violations:
        print("    ", violation.render())

    print()
    print("custom partition: the logger owns only 0x0600..0x0640")
    policy = SecurityPolicy(
        name="logger-window",
        tainted_memory=(MemoryRegion("log", 0x0600, 0x0640),),
    )
    program = assemble(PARTITIONED, name="logger")
    result = TaintTracker(program, policy=policy).run()
    print(" ", "SECURE" if result.secure else "INSECURE",
          sorted(result.violated_conditions()))


if __name__ == "__main__":
    main()
