"""Durable job store: snapshot container + append-only log.

The journal is a directory with two files::

    jobs.snapshot    REPRO-JOBS container (magic + JSON header + pickle
                     payload, written atomically via the checkpoint
                     codec's rename path) holding the full job table at
                     the last compaction
    jobs.log         JSONL appends since that snapshot, one full job
                     record per line, fsync'd before the submission is
                     acknowledged

Appends carry the *entire* record (not a delta) plus its monotonically
increasing ``seq``, so replay is a trivial last-writer-wins fold:
records from the log override snapshot entries with a lower ``seq`` and
stale log lines left behind by an interrupted compaction are ignored.
A ``kill -9`` can at worst tear the final log line; every fsync'd line
before it replays intact, which is exactly the durability contract --
an *acknowledged* submission is never lost.

Compaction rewrites the snapshot through the atomic-rename codec first
and only then truncates the log (same rename trick), so a crash between
the two steps leaves a journal that replays to the identical job table.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

from repro.resilience.checkpoint import read_container, write_container
from repro.resilience.errors import CheckpointError
from repro.service.jobs import JobRecord

#: The journal snapshot's own container identity (the codec is shared
#: with ``.ckpt`` / ``.timeline`` files; the magic is not).
JOURNAL_MAGIC = b"REPRO-JOBS\n"
JOURNAL_VERSION = 1

SNAPSHOT_NAME = "jobs.snapshot"
LOG_NAME = "jobs.log"


class JobJournal:
    """Append-only durable store for :class:`JobRecord` tables."""

    def __init__(self, root):
        self.root = Path(root)
        self.snapshot_path = self.root / SNAPSHOT_NAME
        self.log_path = self.root / LOG_NAME
        self._log_file = None
        #: next journal sequence number (continues across restarts)
        self.next_seq = 1
        self.appended = 0

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self) -> Dict[str, JobRecord]:
        """Fold snapshot + log into the current job table and position
        ``next_seq`` after the highest sequence seen."""
        self.root.mkdir(parents=True, exist_ok=True)
        jobs: Dict[str, JobRecord] = {}
        if self.snapshot_path.exists():
            _, payload = read_container(
                self.snapshot_path,
                JOURNAL_MAGIC,
                JOURNAL_VERSION,
                kind="job journal snapshot",
                code_prefix="JOURNAL",
            )
            for document in payload["jobs"]:
                record = JobRecord.from_dict(document)
                jobs[record.job_id] = record
        if self.log_path.exists():
            for document in self._log_documents():
                record = JobRecord.from_dict(document)
                existing = jobs.get(record.job_id)
                if existing is None or record.seq >= existing.seq:
                    jobs[record.job_id] = record
        highest = max((r.seq for r in jobs.values()), default=0)
        self.next_seq = highest + 1
        return jobs

    def _log_documents(self):
        """Parse the JSONL log, tolerating a torn final line (the only
        kind of corruption an append-crash can produce)."""
        with self.log_path.open("rb") as handle:
            lines = handle.read().split(b"\n")
        last = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1
        )
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except ValueError as error:
                if index == last:  # torn tail: expected
                    break
                raise CheckpointError(
                    f"job journal log {str(self.log_path)!r} has a "
                    f"corrupt record at line {index + 1}: {error}",
                    code="JOURNAL_CORRUPT",
                    path=str(self.log_path),
                ) from error

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def open_log(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        if self._log_file is None:
            self._log_file = self.log_path.open("ab")

    def append(self, record: JobRecord) -> None:
        """Durably journal *record*'s current state (fsync before
        returning: once this returns, a ``kill -9`` cannot lose it)."""
        record.seq = self.next_seq
        self.next_seq += 1
        self.open_log()
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        self._log_file.write(line.encode())
        self._log_file.flush()
        os.fsync(self._log_file.fileno())
        self.appended += 1

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, jobs: Dict[str, JobRecord]) -> None:
        """Snapshot the full table and truncate the log (both atomic;
        crash between them only leaves stale log lines that replay as
        no-ops thanks to last-writer-wins)."""
        write_container(
            self.snapshot_path,
            JOURNAL_MAGIC,
            JOURNAL_VERSION,
            {"jobs": [record.to_dict() for record in jobs.values()]},
            meta={"jobs": len(jobs), "next_seq": self.next_seq},
            kind="job journal snapshot",
            code_prefix="JOURNAL",
        )
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None
        tmp = self.log_path.with_name(self.log_path.name + ".tmp")
        tmp.write_bytes(b"")
        os.replace(tmp, self.log_path)

    def close(self) -> None:
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None
