"""The supervised analysis daemon: journal + supervisor + REST glue.

:class:`AnalysisService` composes the durable :class:`JobJournal`, the
process :class:`Supervisor` and the HTTP front end into one lifecycle:

* **submit** journals the job (fsync) *before* acknowledging, so an
  accepted job survives ``kill -9`` of the daemon;
* **tick** reaps worker ends, classifies them through the
  :class:`RetryPolicy` (verdict / retry-with-backoff / fail-fast) and
  launches eligible work into free slots;
* **recovery** replays the journal on start and moves jobs that were
  ``running`` when the daemon died to ``retrying`` -- their next attempt
  resumes from the per-job checkpoint, and exploration determinism makes
  the eventual verdict identical to an uninterrupted run;
* **backpressure and shedding**: the queue is bounded (submit raises
  :class:`QueueFull` -> HTTP 429); above the shed threshold newly
  *launched* jobs get clamped budgets, trading ``inconclusive`` verdicts
  for queue survival -- degradation is sound (over-taint only adds
  violations), collapse is not;
* **drain** (SIGINT/SIGTERM): stop accepting, SIGTERM workers (they
  checkpoint and exit 130), journal everything, compact, exit 130.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.obs import Observer, get_observer
from repro.resilience.errors import EXIT_INTERRUPTED
from repro.service.jobs import (
    JobRecord,
    TERMINAL_STATES,
    VERDICT_STATES,
    new_job,
    transition,
)
from repro.service.journal import JobJournal
from repro.service.retry import RetryPolicy
from repro.service.supervisor import Supervisor, WorkerEnd


#: Histogram bounds (seconds) for service latencies: submit-fsync sits
#: in the low milliseconds, job turnaround in seconds-to-minutes.
TIME_BOUNDS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
)


class QueueFull(RuntimeError):
    """The bounded queue rejected a submission (HTTP 429)."""


class Draining(RuntimeError):
    """The daemon is shutting down and no longer accepts work (503)."""


@dataclass
class ServiceConfig:
    root: str = ".repro-service"
    host: str = "127.0.0.1"
    port: int = 8437
    workers: int = 2
    queue_capacity: int = 64
    #: backlog size above which launches get shed budgets (default:
    #: three quarters of capacity).
    shed_after: Optional[int] = None
    max_attempts: int = 4
    checkpoint_every: int = 8
    heartbeat_timeout: float = 15.0
    heartbeat_interval: float = 0.5
    drain_grace: float = 10.0
    poll_interval: float = 0.05
    compact_every: int = 256
    default_budget: Dict[str, Any] = field(
        default_factory=lambda: {"max_paths": 4096}
    )
    #: budget clamps applied to launches while shedding.
    shed_budget: Dict[str, Any] = field(
        default_factory=lambda: {"max_paths": 64, "deadline_seconds": 10.0}
    )
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    @property
    def shed_threshold(self) -> int:
        if self.shed_after is not None:
            return self.shed_after
        return max(1, (self.queue_capacity * 3) // 4)


class AnalysisService:
    """Thread-safe facade over jobs, journal, supervisor and server."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        observer: Optional[Observer] = None,
        spawn_command: Optional[Callable[[str], List[str]]] = None,
    ):
        self.config = config or ServiceConfig()
        if observer is not None:
            self.obs = observer
        else:
            # The daemon always keeps live metrics: /metrics and
            # ``repro jobs --stats`` must have numbers to report even
            # when no process-wide observer was armed.
            ambient = get_observer()
            self.obs = ambient if ambient.enabled else Observer()
        self.root = Path(self.config.root)
        self.journal = JobJournal(self.root)
        self.supervisor = Supervisor(
            workers=self.config.workers,
            heartbeat_timeout=self.config.heartbeat_timeout,
        )
        if spawn_command is not None:
            self.supervisor.spawn_command = spawn_command
        self.jobs: Dict[str, JobRecord] = {}
        self.lock = threading.RLock()
        self.draining = False
        self.recovered: List[str] = []
        self.started_unix = time.time()
        self._stop = threading.Event()
        self._server = None
        self._server_thread = None
        #: per-tick hooks (the chaos harness registers here)
        self.on_tick: List[Callable[["AnalysisService"], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Replay the journal, run crash recovery, open for appends."""
        with self.lock:
            self.jobs = self.journal.replay()
            for record in sorted(self.jobs.values(), key=lambda r: r.seq):
                if record.state == "running":
                    # In flight when the daemon died: resume from the
                    # job's checkpoint on the next launch.  The crash is
                    # the daemon's fault, so it costs no attempt.
                    transition(
                        record,
                        "retrying",
                        note="daemon restart recovery",
                        not_before=0.0,
                    )
                    self.journal.append(record)
                    self.recovered.append(record.job_id)
            self.journal.open_log()
        self._emit(
            "service_started",
            jobs=len(self.jobs),
            recovered=len(self.recovered),
        )

    def start_server(self) -> str:
        """Bind the REST server (port 0 picks a free port) and publish
        the address in ``<root>/address``."""
        from repro.service.server import ServiceHTTPServer

        self._server = ServiceHTTPServer(
            (self.config.host, self.config.port), self
        )
        host, port = self._server.server_address[:2]
        url = f"http://{host}:{port}"
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._server_thread.start()
        (self.root / "address").write_text(url + "\n")
        return url

    def stop_server(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None

    def request_stop(self, reason: str = "stop") -> None:
        """Signal-handler safe: ask the run loop to drain and exit."""
        self.draining = True
        self._stop.set()

    def run(self, install_signals: bool = True) -> int:
        """Serve until SIGINT/SIGTERM, then drain.  Returns 130."""
        if install_signals:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    signal.signal(
                        sig,
                        lambda signum, frame: self.request_stop(
                            signal.Signals(signum).name
                        ),
                    )
                except ValueError:
                    pass  # not the main thread
        while not self._stop.is_set():
            self.tick()
            self._stop.wait(self.config.poll_interval)
        self.shutdown()
        return EXIT_INTERRUPTED

    def shutdown(self) -> None:
        """Cooperative drain: refuse new work, checkpoint the running
        jobs, journal every outcome, compact, close."""
        self.draining = True
        self._emit("service_drain", jobs=len(self.supervisor.live))
        for end in self.supervisor.drain(self.config.drain_grace):
            self._on_worker_end(end)
        self.stop_server()
        with self.lock:
            self.journal.compact(self.jobs)
            self.journal.close()

    # ------------------------------------------------------------------
    # Submission / queries (called from HTTP handler threads)
    # ------------------------------------------------------------------
    def backlog(self) -> int:
        return sum(
            1 for r in self.jobs.values() if r.state not in TERMINAL_STATES
        )

    def submit(
        self,
        *,
        source: str,
        name: str = "submission",
        policy: str = "untrusted",
        max_cycles: int = 1_000_000,
        budget: Optional[Dict[str, Any]] = None,
        fault_injection: Optional[Dict[str, Any]] = None,
        engine: str = "dense",
    ) -> JobRecord:
        if policy not in ("untrusted", "secret"):
            raise ValueError(f"unknown policy {policy!r} (untrusted|secret)")
        if engine not in ("dense", "event"):
            raise ValueError(f"unknown engine {engine!r} (dense|event)")
        with self.lock:
            if self.draining:
                raise Draining("service is draining; resubmit elsewhere")
            if self.backlog() >= self.config.queue_capacity:
                raise QueueFull(
                    f"queue full ({self.config.queue_capacity} jobs in "
                    "flight); retry after a verdict frees a slot"
                )
            record = new_job(
                seq=self.journal.next_seq,
                name=name,
                source=source,
                policy=policy,
                max_cycles=max_cycles,
                budget=dict(
                    budget
                    if budget is not None
                    else self.config.default_budget
                ),
                max_attempts=self.config.max_attempts,
                fault_injection=fault_injection,
                engine=engine,
            )
            self.jobs[record.job_id] = record
            fsync_start = time.perf_counter()
            self.journal.append(record)  # fsync: the 202 is now durable
            fsync_seconds = time.perf_counter() - fsync_start
        self._emit("job_submitted", job=record.job_id, name=record.name)
        self._counter("service.jobs_submitted")
        self._observe("service.submit_fsync_seconds", fsync_seconds)
        return record

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self.lock:
            return self.jobs.get(job_id)

    def list_jobs(self) -> List[Dict[str, Any]]:
        with self.lock:
            ordered = sorted(self.jobs.values(), key=lambda r: r.seq)
            return [record.summary() for record in ordered]

    def report(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The verdict document a finished worker wrote, if any."""
        record = self.get(job_id)
        if record is None:
            return None
        result = record.artifacts.get("result")
        if not result or not Path(result).exists():
            return None
        if not record.terminal:
            return None
        import json

        try:
            return json.loads(Path(result).read_text())
        except ValueError:
            return None

    def job_events_snapshot(self, job_id: str) -> Optional[Dict[str, Any]]:
        """A consistent point-in-time view of one job for the SSE
        stream: full transition history, latest progress, terminality.
        Copied under the lock so the streaming thread never reads a
        record mid-mutation."""
        with self.lock:
            record = self.jobs.get(job_id)
            if record is None:
                return None
            return {
                "history": [dict(entry) for entry in record.history],
                "progress": (
                    dict(record.progress) if record.progress else None
                ),
                "terminal": record.terminal,
                "summary": record.summary(),
            }

    def health(self) -> Dict[str, Any]:
        with self.lock:
            counts: Dict[str, int] = {}
            for record in self.jobs.values():
                counts[record.state] = counts.get(record.state, 0) + 1
            return {
                "status": "ok",
                "uptime_seconds": time.time() - self.started_unix,
                "draining": self.draining,
                "workers": self.config.workers,
                "workers_live": len(self.supervisor.live),
                "backlog": self.backlog(),
                "queue_capacity": self.config.queue_capacity,
                "shedding": self.backlog() > self.config.shed_threshold,
                "jobs": counts,
            }

    # ------------------------------------------------------------------
    # Telemetry (GET /metrics, GET /statsz, repro jobs --stats)
    # ------------------------------------------------------------------
    def fleet_progress(self) -> Dict[str, Any]:
        """Fleet-level progress over the running jobs: the summed
        pending exploration frontier, the oldest running job's age, and
        each running job's latest progress document."""
        now = time.time()
        with self.lock:
            running = [
                record
                for record in self.jobs.values()
                if record.state == "running"
            ]
            per_job: Dict[str, Any] = {}
            paths_in_flight = 0
            for record in running:
                if record.progress:
                    per_job[record.job_id] = dict(record.progress)
                    paths_in_flight += int(
                        record.progress.get("pending") or 0
                    )
            oldest = max(
                (
                    now - record.updated_unix
                    for record in running
                    if record.updated_unix
                ),
                default=0.0,
            )
        return {
            "running": per_job,
            "paths_in_flight": paths_in_flight,
            "oldest_running_job_age_seconds": oldest,
        }

    def _scrape_gauges(self):
        """Scrape-time gauges derived from job state rather than
        accumulated: queue depth, per-state population, worker count,
        fleet progress."""
        health = self.health()
        fleet = self.fleet_progress()
        entries = [
            (
                "service.backlog",
                health["backlog"],
                None,
                "jobs not yet terminal (queue depth)",
            ),
            (
                "service.queue_capacity",
                health["queue_capacity"],
                None,
                "bounded queue size; submissions beyond it get 429",
            ),
            (
                "service.workers_live",
                health["workers_live"],
                None,
                "worker processes currently running",
            ),
            (
                "service.workers_configured",
                health["workers"],
                None,
                "configured worker slots",
            ),
            (
                "service.draining",
                health["draining"],
                None,
                "1 while the daemon is shutting down",
            ),
            (
                "service.shedding",
                health["shedding"],
                None,
                "1 while launches get shed (clamped) budgets",
            ),
            (
                "service.uptime_seconds",
                health["uptime_seconds"],
                None,
                "seconds since the daemon started",
            ),
            (
                "service.paths_in_flight",
                fleet["paths_in_flight"],
                None,
                "pending exploration frontier summed over running jobs",
            ),
            (
                "service.oldest_running_job_age_seconds",
                fleet["oldest_running_job_age_seconds"],
                None,
                "age of the longest-running in-flight job (0 when idle)",
            ),
        ]
        for state in sorted(health["jobs"]):
            entries.append(
                (
                    "service.jobs_state",
                    health["jobs"][state],
                    {"state": state},
                    "jobs currently in each lifecycle state",
                )
            )
        return entries

    def _registry(self):
        metrics = getattr(self.obs, "metrics", None)
        if metrics is None:  # a NullObserver was injected explicitly
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        return metrics

    def metrics_text(self) -> str:
        """The Prometheus text-exposition payload for ``GET /metrics``."""
        from repro.obs.exposition import render_prometheus

        return render_prometheus(
            self._registry(), extra_gauges=self._scrape_gauges()
        )

    def stats(self) -> Dict[str, Any]:
        """The same telemetry as JSON (``GET /statsz``, ``jobs --stats``)."""
        return {
            "health": self.health(),
            "metrics": self._registry().snapshot(),
            "progress": self.fleet_progress(),
        }

    def readiness(self):
        with self.lock:
            if self.draining:
                return False, {"ready": False, "reason": "draining"}
            if self.backlog() >= self.config.queue_capacity:
                return False, {"ready": False, "reason": "queue full"}
        return True, {"ready": True}

    # ------------------------------------------------------------------
    # The supervision loop
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One supervision round: reap, classify, launch, ingest."""
        for end in self.supervisor.poll():
            self._on_worker_end(end)
        if not self.draining:
            self._launch_eligible()
        self._ingest_progress()
        for hook in list(self.on_tick):
            hook(self)

    def _ingest_progress(self) -> None:
        """Parse every live worker's heartbeat progress document onto
        its job record (in memory only: progress is ephemeral telemetry;
        journaling every beat would turn the fsync'd log into a spam
        channel).  Bare-touch heartbeats and torn files parse to None
        and leave the record untouched."""
        for job_id, handle in list(self.supervisor.live.items()):
            document = handle.progress()
            if not document:
                continue
            if document.get("job_id") not in (None, job_id):
                continue  # stale file from an artifact-dir reuse
            snapshot = document.get("progress")
            if not isinstance(snapshot, dict):
                continue  # alive, but no snapshot taken yet
            merged: Dict[str, Any] = {
                "attempt": document.get("attempt"),
                "run_id": document.get("run_id"),
                "unix": document.get("unix"),
            }
            merged.update(snapshot)
            with self.lock:
                record = self.jobs.get(job_id)
                if record is not None and record.state == "running":
                    record.progress = merged

    def _eligible(self, now: float) -> List[JobRecord]:
        runnable = [
            record
            for record in self.jobs.values()
            if record.job_id not in self.supervisor.live
            and (
                record.state == "queued"
                or (record.state == "retrying" and now >= record.not_before)
            )
        ]
        return sorted(runnable, key=lambda r: r.seq)

    def _launch_eligible(self) -> None:
        now = time.time()
        with self.lock:
            for record in self._eligible(now)[: self.supervisor.free_slots]:
                self._launch(record, now)

    def _launch(self, record: JobRecord, now: float) -> None:
        art = self.root / "artifacts" / record.job_id
        art.mkdir(parents=True, exist_ok=True)
        budget = dict(record.budget)
        shed = self.backlog() > self.config.shed_threshold
        if shed:
            # Overload: clamp toward fast inconclusive degradation.
            for axis, clamp in self.config.shed_budget.items():
                current = budget.get(axis)
                budget[axis] = (
                    clamp if current is None else min(current, clamp)
                )
        spec = {
            "job_id": record.job_id,
            "name": record.name,
            "source": record.source,
            "policy": record.policy,
            "max_cycles": record.max_cycles,
            "budget": budget,
            "engine": record.engine,
            "attempt": record.attempts + 1,
            "checkpoint": str(art / "checkpoint.ckpt"),
            "checkpoint_every": self.config.checkpoint_every,
            "heartbeat": str(art / "heartbeat"),
            "heartbeat_interval": self.config.heartbeat_interval,
            "result": str(art / "result.json"),
            "trace": str(art / "trace.jsonl"),
            "fault_injection": record.fault_injection,
            "spec_path": str(art / "spec.json"),
        }
        # A stale result document from a previous attempt must not be
        # read as this attempt's verdict: the worker rewrites it, but
        # only if it gets far enough to run at all.  Same for the
        # heartbeat: a previous attempt's progress document must not be
        # ingested as this attempt's (liveness falls back to the spawn
        # wall-clock until the new worker's first beat).
        for stale in (spec["result"], spec["heartbeat"]):
            try:
                Path(stale).unlink()
            except OSError:
                pass
        transition(
            record,
            "running",
            note="shed launch" if shed else "launch",
            now=now,
            attempts=record.attempts + 1,
            shed=record.shed or shed,
            artifacts={
                "dir": str(art),
                "checkpoint": spec["checkpoint"],
                "result": spec["result"],
                "heartbeat": spec["heartbeat"],
                "trace": spec["trace"],
            },
            progress=None,  # a fresh attempt starts a fresh stream
        )
        self.journal.append(record)
        self.supervisor.spawn(spec)
        self._emit(
            "job_started",
            job=record.job_id,
            attempt=record.attempts,
            shed=shed,
        )
        self._counter("service.jobs_started")
        if shed:
            self._counter("service.jobs_shed")

    # ------------------------------------------------------------------
    def _on_worker_end(self, end: WorkerEnd) -> None:
        import json

        with self.lock:
            record = self.jobs.get(end.handle.job_id)
            if record is None or record.state != "running":
                return
            error = None
            result_verdict = None
            result_path = Path(end.handle.spec["result"])
            if result_path.exists():
                try:
                    document = json.loads(result_path.read_text())
                    error = document.get("error")
                    result_verdict = document.get("verdict")
                except ValueError:
                    pass  # torn write cannot happen (atomic rename)
            outcome = self.config.retry.classify(
                attempts=record.attempts,
                exit_code=end.exit_code,
                error=error,
                crashed=end.crashed,
                reason=end.reason,
                result_verdict=result_verdict,
                max_attempts=record.max_attempts,
            )
            if end.crashed:
                self._counter("service.workers_crashed")
                self._emit(
                    "worker_killed", job=record.job_id, reason=end.reason
                )
            if outcome.kind == "verdict":
                transition(
                    record,
                    VERDICT_STATES[outcome.verdict],
                    note=outcome.reason,
                    verdict=outcome.verdict,
                    exit_code=outcome.exit_code,
                    error=None,
                )
                self._counter("service.jobs_finished")
            elif outcome.kind == "retry":
                delay = self.config.retry.backoff_seconds(
                    record.job_id, record.attempts
                )
                transition(
                    record,
                    "retrying",
                    note=f"{outcome.reason}; backoff {delay:.2f}s",
                    not_before=time.time() + delay,
                    error=error,
                    exit_code=outcome.exit_code,
                )
                self._counter("service.jobs_retried")
                self._emit(
                    "job_retrying",
                    job=record.job_id,
                    attempt=record.attempts,
                    delay=round(delay, 3),
                    reason=outcome.reason,
                )
            else:
                transition(
                    record,
                    "failed",
                    note=outcome.reason,
                    error=error,
                    exit_code=outcome.exit_code,
                )
                self._counter("service.jobs_failed")
            self.journal.append(record)
            if record.terminal and record.submitted_unix:
                self._observe(
                    "service.turnaround_seconds",
                    max(0.0, time.time() - record.submitted_unix),
                )
            if record.terminal:
                self._emit(
                    "job_finished",
                    job=record.job_id,
                    state=record.state,
                    verdict=record.verdict,
                    exit_code=record.exit_code,
                    attempts=record.attempts,
                )
            if self.journal.appended >= self.config.compact_every:
                self.journal.compact(self.jobs)
                self.journal.appended = 0
                self.journal.open_log()

    # ------------------------------------------------------------------
    def _emit(self, event: str, **fields) -> None:
        if self.obs.enabled:
            self.obs.emit(event, **fields)

    def _counter(self, name: str) -> None:
        if self.obs.enabled:
            self.obs.metrics.counter(name).inc()

    def _observe(self, name: str, seconds: float) -> None:
        if self.obs.enabled:
            self.obs.histogram(name, TIME_BOUNDS).observe(seconds)
