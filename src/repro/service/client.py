"""Tiny stdlib HTTP client for the analysis service.

Used by ``repro submit`` / ``repro jobs`` and by the smoke/chaos suites;
deliberately nothing but :mod:`urllib.request` plus JSON.  Server-side
rejections (429 queue-full, 503 draining, 4xx input problems) surface as
:class:`ServiceClientError` carrying the decoded error document, so
callers branch on ``error.code`` instead of parsing messages.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.service.jobs import TERMINAL_STATES

DEFAULT_URL = "http://127.0.0.1:8437"


class ServiceClientError(RuntimeError):
    """An HTTP-level rejection from the service."""

    def __init__(self, status: int, document: Dict[str, Any]):
        error = document.get("error") or {}
        super().__init__(
            f"HTTP {status}: {error.get('code', '?')} "
            f"{error.get('message', '')}".rstrip()
        )
        self.status = status
        self.document = document
        self.code = error.get("code")
        self.retriable = bool(error.get("retriable", False))


def _request(
    url: str, method: str = "GET", body: Optional[dict] = None, timeout=10.0
):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as error:
        try:
            document = json.loads(error.read() or b"{}")
        except ValueError:
            document = {}
        raise ServiceClientError(error.code, document) from None


class ServiceClient:
    """One service endpoint, addressed by base URL."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 10.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def submit(self, **request) -> Dict[str, Any]:
        """POST /jobs; returns ``{"id": ..., "state": "queued"}``."""
        _, document = _request(
            f"{self.url}/jobs", "POST", request, self.timeout
        )
        return document

    def job(self, job_id: str) -> Dict[str, Any]:
        _, document = _request(
            f"{self.url}/jobs/{job_id}", timeout=self.timeout
        )
        return document

    def jobs(self) -> list:
        _, document = _request(f"{self.url}/jobs", timeout=self.timeout)
        return document["jobs"]

    def report(self, job_id: str) -> Dict[str, Any]:
        _, document = _request(
            f"{self.url}/jobs/{job_id}/report", timeout=self.timeout
        )
        return document

    def health(self) -> Dict[str, Any]:
        _, document = _request(f"{self.url}/healthz", timeout=self.timeout)
        return document

    def stats(self) -> Dict[str, Any]:
        """GET /statsz: live counters/gauges/histograms + health."""
        _, document = _request(f"{self.url}/statsz", timeout=self.timeout)
        return document

    def metrics_text(self) -> str:
        """GET /metrics: the raw Prometheus text exposition payload."""
        request = urllib.request.Request(f"{self.url}/metrics")
        with urllib.request.urlopen(
            request, timeout=self.timeout
        ) as response:
            return response.read().decode("utf-8")

    def ready(self) -> bool:
        try:
            _request(f"{self.url}/readyz", timeout=self.timeout)
            return True
        except ServiceClientError:
            return False

    def events(
        self,
        job_id: str,
        timeout: float = 30.0,
    ):
        """GET /jobs/<id>/events: yield ``(event, document)`` pairs from
        the SSE stream until the server closes it (the ``end`` frame).

        *timeout* is the per-read socket timeout, not a stream lifetime
        cap -- the server writes a keepalive comment at least every few
        seconds, so a healthy stream never trips it no matter how long
        the job runs.  Keepalive comment lines are consumed silently.
        """
        request = urllib.request.Request(f"{self.url}/jobs/{job_id}/events")
        with urllib.request.urlopen(request, timeout=timeout) as response:
            event: Optional[str] = None
            data_lines: list = []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if not line:  # blank line: frame boundary
                    if event is not None and data_lines:
                        yield event, json.loads("\n".join(data_lines))
                    event, data_lines = None, []
                    continue
                if line.startswith(":"):
                    continue  # keepalive comment
                if line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())

    def watch(
        self,
        job_id: str,
        timeout: float = 30.0,
    ):
        """Like :meth:`events` but reconnects through retriable hiccups
        until a terminal ``end`` frame arrives; yields every frame."""
        while True:
            ended = False
            for event, document in self.events(job_id, timeout=timeout):
                ended = ended or event == "end"
                yield event, document
            if ended:
                return

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_seconds: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until *job_id* reaches a terminal state; returns the
        final record document.  Raises TimeoutError otherwise."""
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document.get("state") in TERMINAL_STATES:
                return document
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {document.get('state')!r} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_seconds)
