"""Worker-pool supervision: spawn, heartbeat, deadline, reap.

The supervisor owns the *processes*; what their ends mean for the job
(retry vs fail vs verdict) is the retry policy's decision
(:mod:`repro.service.retry`) made by the daemon.  This module reports
facts: a worker exited with a code, went silent past the heartbeat
timeout, or outlived its hard deadline and was killed.

Deadlines are two-layered by design: the *soft* deadline travels inside
the job's :class:`~repro.resilience.AnalysisBudget` (the worker degrades
to an ``inconclusive`` verdict on its own), while the supervisor's
*hard* deadline -- soft deadline plus a grace factor -- catches workers
too wedged to honour the budget.  Heartbeat loss catches the rest: a
worker whose beat thread stopped is dead weight no matter what its
process state claims.

Heartbeats double as the progress channel: v4 workers atomically rewrite
the heartbeat file as a JSON progress document every beat, and
:func:`parse_heartbeat` turns it into per-job progress for the daemon.
Liveness never depends on the parse -- ``st_mtime`` freshness alone
decides it -- so an old bare-touch (empty) heartbeat from a downlevel
worker still drives liveness and simply reports no progress.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

#: Multiplier applied to a job's soft (budget) deadline to get the
#: supervisor's hard kill deadline.
HARD_DEADLINE_FACTOR = 3.0
#: Hard floor added on top so tiny soft deadlines keep a startup margin.
HARD_DEADLINE_SLACK = 20.0


def default_worker_command(spec_path: str) -> List[str]:
    return [sys.executable, "-m", "repro.service.worker", "--spec", spec_path]


def parse_heartbeat(path: Path) -> Optional[dict]:
    """The heartbeat file's progress document, or None.

    None covers every way a heartbeat can fail to carry progress -- the
    file is missing, empty (a downlevel worker's bare ``touch``),
    mid-replace, truncated, or not a JSON object -- because liveness is
    decided by ``st_mtime`` elsewhere and progress is strictly
    best-effort on top.  This parser must never raise.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return None
    if not raw.strip():
        return None  # bare-touch heartbeat: alive, no progress channel
    try:
        document = json.loads(raw)
    except ValueError:
        return None
    if not isinstance(document, dict):
        return None
    return document


def worker_environment() -> Dict[str, str]:
    """Child environment with ``repro`` importable even when the repo is
    used from a source tree rather than an installed package."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    if package_root not in (existing or "").split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


@dataclass
class WorkerHandle:
    """One live worker subprocess and the job attempt it runs."""

    job_id: str
    process: subprocess.Popen
    spec: dict
    heartbeat_path: Path
    started_at: float  # monotonic (hard-deadline clock domain)
    started_wall: float = 0.0  # wall clock (heartbeat st_mtime domain)
    hard_deadline: Optional[float] = None  # absolute monotonic time
    killed_reason: Optional[str] = None

    def alive(self) -> bool:
        return self.process.poll() is None

    def heartbeat_age(self, wall_now: Optional[float] = None) -> float:
        """Seconds since the worker last touched its heartbeat file.

        Heartbeat freshness comes from the file's ``st_mtime``, which is
        wall-clock: the comparison must stay in ``time.time()``'s domain
        (a monotonic *now* would make the age wildly negative and the
        timeout unreachable).
        """
        wall_now = time.time() if wall_now is None else wall_now
        try:
            return wall_now - self.heartbeat_path.stat().st_mtime
        except OSError:
            return wall_now - self.started_wall

    def progress(self) -> Optional[dict]:
        """The worker's latest heartbeat progress document (None for a
        bare-touch heartbeat or any unreadable/partial file)."""
        return parse_heartbeat(self.heartbeat_path)

    def terminate(self) -> None:
        if self.alive():
            try:
                self.process.terminate()
            except OSError:
                pass

    def kill(self, reason: str) -> None:
        self.killed_reason = reason
        if self.alive():
            try:
                self.process.kill()
            except OSError:
                pass


@dataclass
class WorkerEnd:
    """A reaped worker: the handle plus how it ended."""

    handle: WorkerHandle
    exit_code: Optional[int]
    crashed: bool
    reason: str


@dataclass
class Supervisor:
    """Bounded pool of analysis subprocesses with health monitoring."""

    workers: int = 2
    heartbeat_timeout: float = 15.0
    spawn_command: Callable[[str], List[str]] = field(
        default=default_worker_command
    )
    live: Dict[str, WorkerHandle] = field(default_factory=dict)

    @property
    def free_slots(self) -> int:
        return max(0, self.workers - len(self.live))

    # ------------------------------------------------------------------
    def spawn(self, spec: dict) -> WorkerHandle:
        """Write the spec file and launch one worker for it."""
        spec_path = Path(spec["spec_path"])
        spec_path.write_text(json.dumps(spec, sort_keys=True))
        process = subprocess.Popen(
            self.spawn_command(str(spec_path)),
            env=worker_environment(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        soft = (spec.get("budget") or {}).get("deadline_seconds")
        now = time.monotonic()
        handle = WorkerHandle(
            job_id=spec["job_id"],
            process=process,
            spec=spec,
            heartbeat_path=Path(spec["heartbeat"]),
            started_at=now,
            started_wall=time.time(),
            hard_deadline=(
                now + HARD_DEADLINE_FACTOR * soft + HARD_DEADLINE_SLACK
                if soft
                else None
            ),
        )
        self.live[spec["job_id"]] = handle
        return handle

    # ------------------------------------------------------------------
    def poll(self, now: Optional[float] = None) -> List[WorkerEnd]:
        """Reap exited workers and kill hung/overdue ones.

        Killed workers are *not* reported until their process has
        actually exited (usually the next poll), so an end is always a
        reaped process -- no zombie races.
        """
        now = time.monotonic() if now is None else now
        wall_now = time.time()
        ends: List[WorkerEnd] = []
        for job_id, handle in list(self.live.items()):
            code = handle.process.poll()
            if code is not None:
                del self.live[job_id]
                if handle.killed_reason is not None:
                    ends.append(
                        WorkerEnd(handle, None, True, handle.killed_reason)
                    )
                elif code < 0:
                    try:
                        name = signal.Signals(-code).name
                    except ValueError:
                        name = str(-code)
                    ends.append(
                        WorkerEnd(handle, None, True, f"killed by {name}")
                    )
                else:
                    ends.append(WorkerEnd(handle, code, False, "exited"))
                continue
            if handle.killed_reason is not None:
                continue  # kill signalled; waiting for the exit
            if (
                handle.hard_deadline is not None
                and now >= handle.hard_deadline
            ):
                handle.kill("hard deadline exceeded")
            elif handle.heartbeat_age(wall_now) > self.heartbeat_timeout:
                handle.kill(
                    f"heartbeat lost (> {self.heartbeat_timeout:.0f}s)"
                )
        return ends

    # ------------------------------------------------------------------
    def terminate_all(self) -> None:
        """Cooperative stop: SIGTERM every live worker (they checkpoint
        and exit 130 on their own)."""
        for handle in self.live.values():
            handle.terminate()

    def kill_all(self, reason: str = "shutdown") -> None:
        for handle in self.live.values():
            handle.kill(reason)

    def drain(self, grace_seconds: float) -> List[WorkerEnd]:
        """Terminate everyone, give them *grace_seconds* to checkpoint
        and exit, then hard-kill the stragglers.  Returns every end."""
        self.terminate_all()
        deadline = time.monotonic() + grace_seconds
        ends: List[WorkerEnd] = []
        while self.live and time.monotonic() < deadline:
            ends.extend(self.poll())
            if self.live:
                time.sleep(0.05)
        if self.live:
            self.kill_all("drain grace expired")
            killed_deadline = time.monotonic() + 5.0
            while self.live and time.monotonic() < killed_deadline:
                ends.extend(self.poll())
                if self.live:
                    time.sleep(0.05)
        return ends
