"""Analysis worker subprocess (``python -m repro.service.worker``).

One worker runs one job attempt: assemble the journaled source, build a
:class:`~repro.core.TaintTracker` with the job's budget and a
:class:`~repro.resilience.Checkpointer` keyed by job id, resume from the
job's checkpoint when a valid one exists, and write the verdict document
atomically before exiting with the taxonomy exit code.  The contract
with the supervisor:

* ``--spec`` names a JSON job spec (see :func:`run_worker`);
* the heartbeat file is rewritten every ``heartbeat_interval`` seconds
  from a daemon thread -- a stale heartbeat means the worker is hung
  (not merely slow: the thread beats even while numpy holds the GIL).
  Since trace schema v4 the beat is a JSON **progress document**
  (atomic tmp+rename, so the supervisor never reads a torn one)
  carrying the correlation context and the tracker's latest
  :class:`~repro.resilience.ProgressSnapshot`; supervisors still accept
  the old bare-touch (empty) heartbeat from downlevel workers -- the
  file's mtime alone drives liveness either way;
* when the spec names a ``trace`` path the worker records the full v4
  JSONL trace of the attempt, every event stamped with the correlation
  context (``job_id``, ``attempt``, ``run_id``) so the journaled job
  joins its trace stream one-to-one;
* SIGTERM/SIGINT are cooperative: the tracker checkpoints at the next
  safe boundary and the worker exits 130 with an ``interrupted`` error
  document, so a drained job resumes bit-identically later;
* the result file appears atomically (tmp + rename) -- the supervisor
  never observes a torn document;
* a checkpoint that is stale or corrupt is *ignored* (fresh start), not
  fatal: worst case the attempt redoes work it already did.

Exit code: the verdict's code (0/1/3) on completion, otherwise the typed
error's ``exit_code`` (130 for interrupts).  Fault injection, when the
spec asks for it, is seeded -- the chaos harness composes it with
process kills to soak the whole retry loop deterministically.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
import uuid
from contextlib import nullcontext
from pathlib import Path

from repro.core import TaintTracker
from repro.cpu import compiled_cpu
from repro.isa.assembler import AssemblyError, assemble
from repro.obs import Observer, TraceRecorder, observe
from repro.resilience import (
    AnalysisBudget,
    AnalysisInterrupted,
    CheckpointError,
    Checkpointer,
    FaultInjector,
    InputError,
    ProgressEstimator,
    ReproError,
    VERDICT_EXIT_CODES,
    inject_faults,
    read_checkpoint,
)
from repro.resilience.errors import EXIT_ANALYSIS

#: Default seconds between heartbeat touches.
HEARTBEAT_INTERVAL = 0.5

#: Schema tag of the heartbeat progress document.
HEARTBEAT_SCHEMA = 1


def _policy(name: str):
    from repro.core import default_policy, secret_policy

    if name == "secret":
        return secret_policy()
    return default_policy()


class _HeartbeatState:
    """The latest progress document, shared between the tracker's sink
    (analysis thread) and the beat thread under a lock."""

    def __init__(self, job_id: str, attempt: int, run_id: str):
        self._lock = threading.Lock()
        self._context = {
            "v": HEARTBEAT_SCHEMA,
            "job_id": job_id,
            "attempt": attempt,
            "run_id": run_id,
        }
        self._progress = None

    def set_progress(self, snapshot) -> None:
        with self._lock:
            self._progress = snapshot.to_document()

    def document(self) -> dict:
        with self._lock:
            document = dict(self._context)
            document["unix"] = time.time()
            document["progress"] = self._progress
            return document


def write_heartbeat(path: Path, state: _HeartbeatState) -> None:
    """Atomically replace the heartbeat file with the current progress
    document.  The rename both publishes the JSON and bumps ``st_mtime``
    -- one write serves liveness and progress at once."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(state.document(), sort_keys=True) + "\n")
    os.replace(tmp, path)


def _beat_forever(
    path: Path, interval: float, stop: threading.Event, state: _HeartbeatState
):
    while not stop.wait(interval):
        try:
            write_heartbeat(path, state)
        except OSError:
            return  # artifact dir vanished: the supervisor gave up on us


def _write_result(path, document: dict) -> None:
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n")
    os.replace(tmp, path)


def run_worker(spec: dict) -> int:
    """Execute one job attempt described by *spec*; returns the exit
    code (and writes the result document as a side effect)."""
    result_path = spec["result"]
    heartbeat_path = Path(spec["heartbeat"])
    attempt = int(spec.get("attempt", 0))
    run_id = uuid.uuid4().hex[:12]
    heartbeat_state = _HeartbeatState(spec["job_id"], attempt, run_id)
    write_heartbeat(heartbeat_path, heartbeat_state)
    stop_beating = threading.Event()
    beat = threading.Thread(
        target=_beat_forever,
        args=(
            heartbeat_path,
            float(spec.get("heartbeat_interval", HEARTBEAT_INTERVAL)),
            stop_beating,
            heartbeat_state,
        ),
        daemon=True,
    )
    beat.start()

    observer = None
    trace_path = spec.get("trace")
    if trace_path:
        observer = Observer(
            trace=TraceRecorder(
                trace_path,
                context={
                    "job_id": spec["job_id"],
                    "attempt": attempt,
                    "run_id": run_id,
                },
            )
        )
    observing = observe(observer) if observer is not None else nullcontext()

    try:
        with observing:
            try:
                program = assemble(spec["source"], name=spec["name"])
            except AssemblyError as error:
                raise InputError(
                    f"cannot assemble job source: {error}",
                    job=spec["job_id"],
                ) from error
            budget = AnalysisBudget(**dict(spec.get("budget") or {}))
            checkpointer = Checkpointer(
                spec["checkpoint"],
                every_paths=int(spec.get("checkpoint_every", 8)),
            )
            progress = ProgressEstimator(
                interval_seconds=float(
                    spec.get(
                        "progress_interval",
                        spec.get("heartbeat_interval", HEARTBEAT_INTERVAL),
                    )
                ),
                sink=heartbeat_state.set_progress,
            )
            tracker = TaintTracker(
                program,
                policy=_policy(spec.get("policy", "untrusted")),
                circuit=compiled_cpu(spec.get("engine", "dense")),
                max_cycles=int(spec.get("max_cycles", 1_000_000)),
                budget=budget,
                checkpointer=checkpointer,
                progress=progress,
            )

            resumed = False
            checkpoint = Path(spec["checkpoint"])
            if checkpoint.exists():
                try:
                    payload = read_checkpoint(
                        checkpoint, expected_digest=tracker.config_digest()
                    )
                    tracker.restore_checkpoint(payload)
                    resumed = True
                except CheckpointError as error:
                    print(
                        f"ignoring unusable checkpoint: {error.render()}",
                        file=sys.stderr,
                    )

            def _interrupt(signum, frame):
                tracker.request_interrupt(signal.Signals(signum).name)

            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    signal.signal(sig, _interrupt)
                except ValueError:
                    pass  # not the main thread (in-process tests)

            injection = spec.get("fault_injection")
            injecting = (
                inject_faults(FaultInjector(**injection))
                if injection
                else nullcontext()
            )
            with injecting:
                result = tracker.run()

            from repro.cli import _analysis_document

            document = _analysis_document(result)
            document["resumed"] = resumed
            document["job_id"] = spec["job_id"]
            document["attempt_unix"] = time.time()
            _write_result(result_path, document)
            return VERDICT_EXIT_CODES[result.verdict]
    except AnalysisInterrupted as error:
        _write_result(
            result_path,
            {"job_id": spec["job_id"], "error": error.to_document()},
        )
        return error.exit_code
    except ReproError as error:
        _write_result(
            result_path,
            {"job_id": spec["job_id"], "error": error.to_document()},
        )
        return error.exit_code
    except Exception as error:  # pragma: no cover - defensive
        _write_result(
            result_path,
            {
                "job_id": spec["job_id"],
                "error": {
                    "code": "WORKER_CRASH",
                    "retriable": True,
                    "exit_code": EXIT_ANALYSIS,
                    "message": f"{type(error).__name__}: {error}",
                },
            },
        )
        return EXIT_ANALYSIS
    finally:
        stop_beating.set()
        if observer is not None:
            observer.close()


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="repro-service-worker")
    parser.add_argument("--spec", required=True, help="job spec JSON file")
    args = parser.parse_args(argv)
    spec = json.loads(Path(args.spec).read_text())
    return run_worker(spec)


if __name__ == "__main__":
    raise SystemExit(main())
