"""Chaos harness: compose fault injection with process-kill injection.

The resilience layer already proves two things in isolation: seeded
:class:`~repro.resilience.FaultInjector` faults surface as typed,
retriable errors, and checkpoints resume bit-identically.  The chaos
harness closes the loop at the *service* level: a
:class:`ChaosMonkey` rides the daemon's tick hook and SIGKILLs live
workers on a seeded schedule (optionally only once a checkpoint exists,
so the retry genuinely exercises checkpoint resume rather than a cold
rerun), while job specs can carry ``fault_injection`` so the workers'
own substrate misbehaves too.  The invariant under all of it: every
accepted job reaches a terminal state, and a job whose workload is
deterministic reaches the *same* verdict document an undisturbed run
produces.
"""

from __future__ import annotations

import random
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple


@dataclass
class ChaosPlan:
    """A seeded worker-killing schedule."""

    seed: int = 0
    #: per-tick kill probability once a worker is eligible.
    rate: float = 1.0
    #: total kills across the soak (None = unlimited).
    max_kills: Optional[int] = 1
    #: only kill a worker whose job checkpoint file already exists, so
    #: the retry is a genuine checkpoint resume.
    require_checkpoint: bool = True
    #: at most one kill per job attempt per this many ticks (rate gate).
    kill_signal: int = signal.SIGKILL


class ChaosMonkey:
    """Tick hook that kills service workers per a :class:`ChaosPlan`."""

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: every kill as ``(job_id, attempt)`` in order.
        self.kills: List[Tuple[str, int]] = []
        #: attempts already killed (kill each attempt at most once).
        self._killed_attempts = set()

    # ------------------------------------------------------------------
    def exhausted(self) -> bool:
        return (
            self.plan.max_kills is not None
            and len(self.kills) >= self.plan.max_kills
        )

    def __call__(self, service) -> None:
        """The ``service.on_tick`` hook."""
        if self.exhausted():
            return
        for job_id, handle in list(service.supervisor.live.items()):
            if self.exhausted():
                return
            record = service.jobs.get(job_id)
            attempt = record.attempts if record is not None else 0
            if (job_id, attempt) in self._killed_attempts:
                continue
            if self.plan.require_checkpoint and not Path(
                handle.spec["checkpoint"]
            ).exists():
                continue
            if not handle.alive():
                continue
            if self._rng.random() >= self.plan.rate:
                continue
            try:
                handle.process.send_signal(self.plan.kill_signal)
            except OSError:
                continue
            # Mark so the supervisor classifies it as a crash even when
            # the signal is catchable.
            handle.killed_reason = (
                f"chaos {signal.Signals(self.plan.kill_signal).name}"
            )
            self._killed_attempts.add((job_id, attempt))
            self.kills.append((job_id, attempt))


@dataclass
class SoakReport:
    """What a :func:`soak` run observed."""

    submitted: int = 0
    kills: int = 0
    verdicts: dict = field(default_factory=dict)
    recovered_retries: int = 0
    wall_seconds: float = 0.0


def soak(
    service,
    submissions: List[dict],
    plan: Optional[ChaosPlan] = None,
    timeout: float = 600.0,
) -> SoakReport:
    """Drive *service* (already started, no run loop) through
    *submissions* under chaos until every job is terminal."""
    import time

    monkey = ChaosMonkey(plan or ChaosPlan())
    service.on_tick.append(monkey)
    started = time.monotonic()
    records = [service.submit(**submission) for submission in submissions]
    deadline = started + timeout
    try:
        while any(not r.terminal for r in records):
            if time.monotonic() > deadline:
                raise TimeoutError(
                    "soak timed out with states "
                    f"{[r.state for r in records]}"
                )
            service.tick()
            time.sleep(service.config.poll_interval)
    finally:
        service.on_tick.remove(monkey)
    report = SoakReport(
        submitted=len(records),
        kills=len(monkey.kills),
        wall_seconds=time.monotonic() - started,
    )
    for record in records:
        key = record.verdict or record.state
        report.verdicts[key] = report.verdicts.get(key, 0) + 1
        report.recovered_retries += sum(
            1 for entry in record.history if entry["state"] == "retrying"
        )
    return report
