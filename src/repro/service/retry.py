"""Retry classification and deterministic exponential backoff.

Classification is driven by the :class:`~repro.resilience.errors`
taxonomy, not by pattern-matching messages: a worker that exits with a
verdict code *and* wrote a result document carrying the matching verdict
terminates the job (an exit status alone is not a verdict -- an
interpreter that dies before analysis starts can exit 1, and recording
that as ``insecure`` would be a false safety verdict); one that ships a
typed error document is retried exactly when that error's ``retriable``
flag says so (the taxonomy's exit code is preserved on the job record
either way); and a worker that *crashes* -- nonzero unexpected exit,
death by signal, heartbeat loss, or a blown hard deadline -- is always
retriable, because the crash says nothing about the job itself.

Backoff is exponential with *deterministic* jitter: the jitter fraction
is a hash of ``(job_id, attempt)``, so two runs of the same failing
workload produce the identical retry schedule (the chaos suite depends
on this) while distinct jobs still decorrelate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.resilience.errors import (
    EXIT_INTERRUPTED,
    VERDICT_EXIT_CODES,
)

#: Exit codes that are analysis verdicts (the job is *finished*).
_VERDICT_CODES = {code: v for v, code in VERDICT_EXIT_CODES.items()}


@dataclass(frozen=True)
class Outcome:
    """What the supervisor should do with a finished worker."""

    kind: str  # "verdict" | "retry" | "fail"
    verdict: Optional[str] = None
    exit_code: Optional[int] = None
    reason: str = ""


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter, capped attempts."""

    max_attempts: int = 4
    base_seconds: float = 0.5
    cap_seconds: float = 30.0
    jitter: float = 0.25  # +/- fraction of the nominal delay

    # ------------------------------------------------------------------
    def backoff_seconds(self, job_id: str, attempt: int) -> float:
        """Delay before retry *attempt* (1-based) of *job_id*."""
        nominal = min(
            self.cap_seconds, self.base_seconds * (2 ** max(0, attempt - 1))
        )
        digest = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        # Deterministic jitter in [nominal*(1-j), nominal*(1+j)].
        return nominal * (1.0 - self.jitter + 2.0 * self.jitter * fraction)

    # ------------------------------------------------------------------
    def classify(
        self,
        *,
        attempts: int,
        exit_code: Optional[int],
        error: Optional[Dict[str, Any]] = None,
        crashed: bool = False,
        reason: str = "",
        result_verdict: Optional[str] = None,
        max_attempts: Optional[int] = None,
    ) -> Outcome:
        """Map a worker's end to verdict / retry / fail.

        *attempts* counts the attempt that just finished (1-based);
        *error* is the worker's typed error document when it wrote one;
        *crashed* marks ends with no trustworthy exit status (signal
        death, heartbeat loss, hard-deadline kill); *result_verdict* is
        the verdict the worker's result document carries, when one
        exists -- a verdict exit code with no corroborating document is
        an infrastructure failure, not a verdict; *max_attempts*, when
        given, overrides the policy default (the journaled per-job cap
        is authoritative).
        """
        cap = self.max_attempts if max_attempts is None else max_attempts
        if (
            not crashed
            and exit_code in _VERDICT_CODES
            and result_verdict == _VERDICT_CODES[exit_code]
        ):
            verdict = _VERDICT_CODES[exit_code]
            return Outcome(
                "verdict", verdict=verdict, exit_code=exit_code,
                reason=reason or f"verdict {verdict}",
            )
        if crashed:
            retriable, code = True, exit_code
            reason = reason or "worker crashed"
        elif error is not None:
            # The taxonomy decides; its exit code is preserved verbatim.
            retriable = bool(error.get("retriable", False))
            code = error.get("exit_code", exit_code)
            reason = reason or f"error[{error.get('code', '?')}]"
        elif exit_code == EXIT_INTERRUPTED:
            # Cooperative interrupt (drain SIGTERM): state checkpointed.
            retriable, code = True, exit_code
            reason = reason or "interrupted"
        else:
            # Unknown exit with no explaining document (this includes a
            # verdict-looking code whose result document is missing or
            # disagrees): treat like a crash -- something died before it
            # could explain itself.
            retriable, code = True, exit_code
            reason = reason or f"unexplained exit {exit_code}"
        if retriable and attempts < cap:
            return Outcome("retry", exit_code=code, reason=reason)
        if retriable:
            reason = f"{reason}; {attempts} attempt(s) exhausted"
        return Outcome("fail", exit_code=code, reason=reason)
