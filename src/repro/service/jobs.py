"""Job records and their state machine.

A *job* is one analysis request accepted by the service: an assembly
source plus policy/budget parameters, tracked from submission to a
terminal verdict.  The lifecycle is a small explicit state machine::

    queued ──> running ──> done          (verdict secure/insecure)
                 │  ▲  └──> inconclusive (budget exhausted, degraded)
                 │  │  └──> failed       (non-retriable error, or
                 ▼  │                     retry attempts exhausted)
              retrying ────> failed

``retrying`` holds jobs whose worker failed retriably (typed error with
``retriable=True``, crash, heartbeat loss, deadline kill, or a drain
checkpoint) until their backoff expires; the supervisor then moves them
back to ``running``, resuming from the job's checkpoint when one exists.
The daemon's crash-recovery replay moves ``running`` jobs to
``retrying`` too: a job that was in flight when the daemon died is
simply re-run from its last checkpoint.

Every state change goes through :func:`transition`, which validates the
edge and stamps the record's history, so an impossible transition is a
bug caught at the call site rather than a silently corrupted journal.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Every state a job record can be in, in lifecycle order.
JOB_STATES = (
    "queued",
    "running",
    "retrying",
    "done",
    "failed",
    "inconclusive",
)

#: States that end the lifecycle (the supervisor never touches these).
TERMINAL_STATES = frozenset({"done", "failed", "inconclusive"})

#: Legal state-machine edges (see the module docstring's diagram).
TRANSITIONS = {
    "queued": frozenset({"running", "failed"}),
    "running": frozenset({"done", "inconclusive", "failed", "retrying"}),
    "retrying": frozenset({"running", "failed"}),
    "done": frozenset(),
    "failed": frozenset(),
    "inconclusive": frozenset(),
}

#: Verdict -> terminal state ("secure" and "insecure" are both *done*:
#: the analysis completed and its exit code carries the verdict).
VERDICT_STATES = {
    "secure": "done",
    "insecure": "done",
    "inconclusive": "inconclusive",
}


class InvalidTransition(ValueError):
    """An illegal state-machine edge was requested (a supervisor bug)."""


def submission_digest(
    source: str, policy: str, max_cycles: int, budget: Dict[str, Any]
) -> str:
    """Content fingerprint of a submission: same source + parameters
    hash identically regardless of submission time or name."""
    digest = hashlib.sha256()
    digest.update(source.encode())
    digest.update(repr((policy, max_cycles, sorted(budget.items()))).encode())
    return digest.hexdigest()


def job_id_for(seq: int, digest: str) -> str:
    """Stable, human-scannable job id: journal sequence + content tag."""
    return f"j{seq:06d}-{digest[:10]}"


@dataclass
class JobRecord:
    """One journaled job.  Serialised as a plain dict (``to_dict``) so
    the journal stays readable by ``json`` alone."""

    job_id: str
    name: str
    source: str
    policy: str
    max_cycles: int
    budget: Dict[str, Any]
    digest: str
    seq: int = 0
    state: str = "queued"
    attempts: int = 0
    max_attempts: int = 4
    shed: bool = False
    submitted_unix: float = 0.0
    updated_unix: float = 0.0
    #: wall-clock (unix) time before which a retry must not launch --
    #: wall clock rather than monotonic so backoff survives a daemon
    #: restart.
    not_before: float = 0.0
    verdict: Optional[str] = None
    exit_code: Optional[int] = None
    error: Optional[Dict[str, Any]] = None
    artifacts: Dict[str, str] = field(default_factory=dict)
    fault_injection: Optional[Dict[str, Any]] = None
    history: List[Dict[str, Any]] = field(default_factory=list)
    #: simulator engine the worker runs (``dense`` | ``event``)
    engine: str = "dense"
    #: latest heartbeat progress document from the running worker (the
    #: daemon refreshes it every tick; engines older than trace v4 and
    #: bare-touch heartbeats leave it None)
    progress: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in document.items() if k in known})

    def summary(self) -> Dict[str, Any]:
        """The ``GET /jobs`` listing entry (no source body)."""
        return {
            "id": self.job_id,
            "name": self.name,
            "state": self.state,
            "attempts": self.attempts,
            "verdict": self.verdict,
            "exit_code": self.exit_code,
            "shed": self.shed,
            "submitted_unix": self.submitted_unix,
            "updated_unix": self.updated_unix,
            "engine": self.engine,
            "progress": self.progress,
        }


def new_job(
    *,
    seq: int,
    name: str,
    source: str,
    policy: str,
    max_cycles: int,
    budget: Dict[str, Any],
    max_attempts: int,
    shed: bool = False,
    fault_injection: Optional[Dict[str, Any]] = None,
    engine: str = "dense",
    now: Optional[float] = None,
) -> JobRecord:
    now = time.time() if now is None else now
    digest = submission_digest(source, policy, max_cycles, budget)
    return JobRecord(
        job_id=job_id_for(seq, digest),
        name=name,
        source=source,
        policy=policy,
        max_cycles=max_cycles,
        budget=dict(budget),
        digest=digest,
        seq=seq,
        shed=shed,
        max_attempts=max_attempts,
        submitted_unix=now,
        updated_unix=now,
        fault_injection=fault_injection,
        engine=engine,
    )


def transition(
    record: JobRecord,
    state: str,
    *,
    note: str = "",
    now: Optional[float] = None,
    **updates: Any,
) -> JobRecord:
    """Move *record* to *state*, validating the edge and stamping the
    history.  Extra keywords update record fields (verdict, error, ...).
    Mutates and returns *record*."""
    if state not in JOB_STATES:
        raise InvalidTransition(f"unknown job state {state!r}")
    if state not in TRANSITIONS[record.state]:
        raise InvalidTransition(
            f"job {record.job_id}: illegal transition "
            f"{record.state!r} -> {state!r}"
        )
    now = time.time() if now is None else now
    for key, value in updates.items():
        if key not in record.__dataclass_fields__:
            raise InvalidTransition(
                f"job {record.job_id}: unknown field {key!r}"
            )
        setattr(record, key, value)
    record.state = state
    record.updated_unix = now
    record.history.append(
        {"state": state, "unix": now, "note": note, "attempt": record.attempts}
    )
    return record
