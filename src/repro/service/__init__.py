"""``repro.service`` -- the supervised analysis daemon.

Analysis-as-a-service on nothing but the stdlib: a durable job journal
(:mod:`~repro.service.journal`), a typed job state machine
(:mod:`~repro.service.jobs`), taxonomy-driven retry with deterministic
backoff (:mod:`~repro.service.retry`), subprocess workers with
heartbeats and checkpoint-resumed attempts
(:mod:`~repro.service.worker`), pool supervision
(:mod:`~repro.service.supervisor`), the composed daemon lifecycle
(:mod:`~repro.service.daemon`), a REST front end over ``http.server``
(:mod:`~repro.service.server`), a urllib client
(:mod:`~repro.service.client`) and a chaos harness
(:mod:`~repro.service.chaos`).  See DESIGN.md section 11.
"""

from repro.service.chaos import ChaosMonkey, ChaosPlan, SoakReport, soak
from repro.service.client import (
    DEFAULT_URL,
    ServiceClient,
    ServiceClientError,
)
from repro.service.daemon import (
    AnalysisService,
    Draining,
    QueueFull,
    ServiceConfig,
)
from repro.service.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    InvalidTransition,
    JobRecord,
    new_job,
    transition,
)
from repro.service.journal import JOURNAL_MAGIC, JOURNAL_VERSION, JobJournal
from repro.service.retry import Outcome, RetryPolicy
from repro.service.supervisor import Supervisor, WorkerEnd, WorkerHandle

__all__ = [
    "AnalysisService",
    "ServiceConfig",
    "QueueFull",
    "Draining",
    "JobJournal",
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "JobRecord",
    "JOB_STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "InvalidTransition",
    "new_job",
    "transition",
    "RetryPolicy",
    "Outcome",
    "Supervisor",
    "WorkerHandle",
    "WorkerEnd",
    "ServiceClient",
    "ServiceClientError",
    "DEFAULT_URL",
    "ChaosMonkey",
    "ChaosPlan",
    "SoakReport",
    "soak",
]
