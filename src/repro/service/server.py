"""Minimal REST surface over :mod:`http.server`.

Endpoints (JSON in, JSON out)::

    POST /jobs              submit {"source": ..., "name", "policy",
                            "max_cycles", "budget", "engine"} ->
                            202 {"id": ...}
                            (or {"workload": "intAVG"} for a registry
                            name); 429 when the queue is full, 503 when
                            draining, 400/413 for bad input
    GET  /jobs              every job's summary, newest last
    GET  /jobs/<id>         the full job record (minus the source body)
    GET  /jobs/<id>/report  the verdict document once terminal
                            (202 + state while still in flight)
    GET  /jobs/<id>/events  live progress stream (``text/event-stream``):
                            replays the job's state transitions as
                            ``state`` frames, then streams ``progress``
                            frames as the worker's heartbeat documents
                            change, ``: keepalive`` comments while idle,
                            and one final ``end`` frame (the job
                            summary) when the job reaches a terminal
                            state -- then closes.  Each frame is
                            ``event: <type>`` + ``data: <one JSON
                            object>``.
    GET  /healthz           liveness: 200 while the daemon runs
    GET  /readyz            readiness: 503 while draining or saturated
    GET  /metrics           Prometheus text exposition (queue depth,
                            per-state job gauges, retry counters,
                            submit-fsync / turnaround histograms)
    GET  /statsz            the same telemetry as one JSON document

The handler threads only ever call the thread-safe
:class:`~repro.service.daemon.AnalysisService` facade; all job state
mutation happens under the service lock, and durability (the journal
fsync) is part of ``submit`` -- a 202 means the job survives ``kill
-9``.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: Submissions above this are rejected 413 before being parsed.
MAX_BODY_BYTES = 2 << 20

#: Seconds between ``: keepalive`` comments on an idle event stream
#: (keeps proxies and client read-timeouts from severing a quiet job).
SSE_KEEPALIVE_SECONDS = 5.0

#: Seconds between job-state polls while streaming events.
SSE_POLL_SECONDS = 0.1

#: How much of an oversized body the server drains so the client can
#: read the 413 instead of dying on EPIPE mid-upload (urllib writes the
#: whole request before reading the response).  Bodies beyond this are
#: abandoned and the connection closed.
MAX_DRAIN_BYTES = 64 << 20


class ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service):
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # ------------------------------------------------------------------
    def _send(self, status: int, document: dict) -> None:
        body = json.dumps(document, sort_keys=True).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging goes through the service observer instead

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, service.health())
            return
        if path == "/readyz":
            ready, document = service.readiness()
            self._send(200 if ready else 503, document)
            return
        if path == "/metrics":
            from repro.obs.exposition import CONTENT_TYPE

            body = service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path == "/statsz":
            self._send(200, service.stats())
            return
        if path == "/jobs":
            self._send(200, {"jobs": service.list_jobs()})
            return
        if path.startswith("/jobs/"):
            parts = path.split("/")[2:]
            record = service.get(parts[0]) if parts else None
            if record is None:
                self._send(404, {"error": {"code": "NO_SUCH_JOB"}})
                return
            if len(parts) == 1:
                document = record.to_dict()
                document.pop("source", None)  # bodies stay in the journal
                self._send(200, document)
                return
            if len(parts) == 2 and parts[1] == "events":
                self._stream_events(record.job_id)
                return
            if len(parts) == 2 and parts[1] == "report":
                report = service.report(record.job_id)
                if report is not None:
                    self._send(200, report)
                elif record.terminal:
                    self._send(
                        200,
                        {
                            "job_id": record.job_id,
                            "state": record.state,
                            "error": record.error,
                            "exit_code": record.exit_code,
                        },
                    )
                else:
                    self._send(
                        202,
                        {"job_id": record.job_id, "state": record.state},
                    )
                return
        self._send(404, {"error": {"code": "NO_SUCH_ROUTE"}})

    # ------------------------------------------------------------------
    def _sse(self, event: str, document: dict) -> None:
        frame = (
            f"event: {event}\n"
            f"data: {json.dumps(document, sort_keys=True)}\n\n"
        )
        self.wfile.write(frame.encode("utf-8"))
        self.wfile.flush()

    def _stream_events(self, job_id: str) -> None:
        """``GET /jobs/<id>/events``: long-lived SSE stream.

        Replays the job's transition history as ``state`` frames, then
        streams new transitions and changed ``progress`` documents until
        the job is terminal, closing with an ``end`` frame carrying the
        final summary.  The connection is marked close-on-finish (a live
        stream has no Content-Length to promise under HTTP/1.1
        keep-alive) and a disconnected client simply ends the thread.
        """
        service = self.server.service
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        sent_transitions = 0
        last_progress = None
        last_write = time.monotonic()
        try:
            while True:
                view = service.job_events_snapshot(job_id)
                if view is None:
                    return  # record vanished (never happens in practice)
                history = view["history"]
                for entry in history[sent_transitions:]:
                    self._sse("state", {"job_id": job_id, **entry})
                    last_write = time.monotonic()
                sent_transitions = len(history)
                progress = view["progress"]
                if progress and progress != last_progress:
                    self._sse("progress", {"job_id": job_id, **progress})
                    last_progress = progress
                    last_write = time.monotonic()
                if view["terminal"]:
                    self._sse("end", view["summary"])
                    return
                if (
                    time.monotonic() - last_write
                    > SSE_KEEPALIVE_SECONDS
                ):
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    last_write = time.monotonic()
                time.sleep(SSE_POLL_SECONDS)
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away; nothing to clean up

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        from repro.service.daemon import Draining, QueueFull

        service = self.server.service
        if self.path.rstrip("/") != "/jobs":
            self._send(404, {"error": {"code": "NO_SUCH_ROUTE"}})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            remaining = min(max(length, 0), MAX_DRAIN_BYTES)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 64 << 10))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            self._send(
                413, {"error": {"code": "BODY_TOO_LARGE", "max": MAX_BODY_BYTES}}
            )
            return
        try:
            request = json.loads(self.rfile.read(length) or b"{}")
        except ValueError as error:
            self._send(
                400, {"error": {"code": "BAD_JSON", "message": str(error)}}
            )
            return
        source, name = request.get("source"), request.get("name")
        workload = request.get("workload")
        if source is None and workload:
            try:
                from repro.cli import _resolve_workload

                source, name = _resolve_workload(workload)
            except SystemExit as error:
                self._send(
                    400,
                    {"error": {"code": "NO_SUCH_WORKLOAD", "message": str(error)}},
                )
                return
        if not source:
            self._send(
                400,
                {"error": {"code": "NO_SOURCE", "message": "submit a "
                           '"source" body or a registry "workload" name'}},
            )
            return
        try:
            record = service.submit(
                source=source,
                name=name or "submission",
                policy=request.get("policy", "untrusted"),
                max_cycles=int(request.get("max_cycles", 1_000_000)),
                budget=request.get("budget"),
                fault_injection=request.get("fault_injection"),
                engine=request.get("engine", "dense"),
            )
        except QueueFull as error:
            # 429: the backpressure verdict -- retriable by contract.
            self._send(
                429,
                {"error": {"code": "QUEUE_FULL", "retriable": True,
                           "message": str(error)}},
            )
            return
        except Draining as error:
            self._send(
                503,
                {"error": {"code": "DRAINING", "retriable": True,
                           "message": str(error)}},
            )
            return
        except ValueError as error:
            self._send(
                400, {"error": {"code": "BAD_REQUEST", "message": str(error)}}
            )
            return
        self._send(202, {"id": record.job_id, "state": record.state})
