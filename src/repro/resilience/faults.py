"""Deterministic fault injection for resilience testing.

A :class:`FaultInjector` perturbs the gate-level substrate at four sites:

* ``decode``     -- shadow decode returns "undecodable" for a fetch;
* ``gate_eval``  -- the per-cycle gate evaluation raises (an *untyped*
  ``RuntimeError``, modelling a bug or transient in the evaluator --
  the tracker must convert it to a typed
  :class:`~repro.resilience.errors.SimulationError`);
* ``snapshot``   -- a forked :class:`~repro.sim.soc.SoCState` snapshot is
  corrupted.  Corruption is modelled as *loss of knowledge*: the chosen
  DFF codes become tainted-``X``, which is conservative (over-taint is
  sound) so the analyzer survives with a possibly degraded verdict;
* ``clock_skew`` -- the SoC's cycle counter jumps forward, stressing
  every consumer of cycle arithmetic (budgets, fast-forward, stats).

Injection is seeded and therefore reproducible: two runs with the same
seed inject the identical fault sequence.  The hook is installed process-
wide (mirroring ``repro.obs.get_observer``); when no injector is
installed the hook sites cost a single ``None`` check.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import List, Optional, Sequence, Tuple

from repro.obs import get_observer

FAULT_KINDS = ("decode", "gate_eval", "snapshot", "clock_skew")


class FaultInjector:
    """Seeded, rate-based fault source.

    *rate* is the per-opportunity injection probability; *kinds* selects
    which sites fire; *max_faults* caps the total injections (None for
    unlimited); *skew_cycles* is the jump applied by ``clock_skew``.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.01,
        kinds: Sequence[str] = FAULT_KINDS,
        max_faults: Optional[int] = None,
        skew_cycles: int = 7,
    ):
        unknown = set(kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {sorted(unknown)}; "
                f"known kinds: {FAULT_KINDS}"
            )
        self.seed = seed
        self.rate = rate
        self.kinds = frozenset(kinds)
        self.max_faults = max_faults
        self.skew_cycles = skew_cycles
        self._rng = random.Random(seed)
        #: every injected fault, as ``(kind, cycle)`` in injection order
        self.injected: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    def _fire(self, kind: str, cycle: int) -> bool:
        if kind not in self.kinds:
            return False
        if (
            self.max_faults is not None
            and len(self.injected) >= self.max_faults
        ):
            return False
        if self._rng.random() >= self.rate:
            return False
        self.injected.append((kind, cycle))
        obs = get_observer()
        if obs.enabled:
            obs.emit("fault_injected", kind=kind, cycle=cycle)
            obs.metrics.counter("resilience.faults_injected").inc()
        return True

    # ------------------------------------------------------------------
    # Site hooks
    # ------------------------------------------------------------------
    def on_decode(self, address: int, cycle: int) -> bool:
        """True when this shadow decode should fail."""
        return self._fire("decode", cycle)

    def on_step(self, soc) -> None:
        """Called at the top of every :meth:`SoC.step`."""
        if self._fire("gate_eval", soc.cycle):
            raise RuntimeError(
                f"injected fault: gate evaluation failed at cycle "
                f"{soc.cycle}"
            )
        if self._fire("clock_skew", soc.cycle):
            soc.cycle += self.skew_cycles

    def on_snapshot(self, snapshot):
        """Possibly corrupt a freshly taken snapshot (in place)."""
        if not self._fire("snapshot", snapshot.cycle):
            return snapshot
        codes = snapshot.dff_codes
        if len(codes):
            index = self._rng.randrange(len(codes))
            # Bit-rot as loss of knowledge: value -> X, taint -> 1
            # (code 2*2+1 = 5 on the value/taint lattice).
            codes[index] = 5
        return snapshot


_injector: Optional[FaultInjector] = None


def get_injector() -> Optional[FaultInjector]:
    """The process-wide fault injector, or None (the fast path)."""
    return _injector


def install_injector(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install *injector* globally; returns the previous one."""
    global _injector
    previous = _injector
    _injector = injector
    return previous


@contextmanager
def inject_faults(injector: FaultInjector):
    """Install *injector* for the duration of a ``with`` block."""
    previous = install_injector(injector)
    try:
        yield injector
    finally:
        install_injector(previous)
