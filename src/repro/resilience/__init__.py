"""``repro.resilience`` -- budgets, checkpoints, faults, typed errors.

The resilience layer turns the analyzer from a batch job that either
finishes or dies into a service-grade component:

* :mod:`repro.resilience.errors`     -- the :class:`ReproError` taxonomy
  (code, phase, retriable flag) and the CLI exit-code table;
* :mod:`repro.resilience.budget`     -- :class:`AnalysisBudget` ceilings
  with *sound degradation*: exhaustion widens unexplored work to the
  fully-tainted top state and yields verdict ``inconclusive`` instead of
  discarding hours of exploration;
* :mod:`repro.resilience.checkpoint` -- versioned, digest-validated
  checkpoint/resume of the tracker's full exploration state;
* :mod:`repro.resilience.faults`     -- seeded fault injection into the
  gate-level substrate, proving the analyzer survives (or fails typed);
* :mod:`repro.resilience.progress`   -- :class:`ProgressEstimator`
  periodic exploration snapshots (frontier, cycles, budget consumption,
  bounded ETA) feeding trace ``progress`` events and the service's
  heartbeat/SSE progress pipeline.
"""

from repro.resilience.errors import (
    EXIT_ANALYSIS,
    EXIT_CHECKPOINT,
    EXIT_FUNDAMENTAL,
    EXIT_INCONCLUSIVE,
    EXIT_INPUT,
    EXIT_INSECURE,
    EXIT_INTERRUPTED,
    EXIT_SECURE,
    VERDICT_EXIT_CODES,
    AnalysisError,
    AnalysisInterrupted,
    CheckpointError,
    ForkError,
    InjectedFault,
    InputError,
    ReproError,
    SimulationError,
    taxonomy,
)
from repro.resilience.budget import AnalysisBudget, current_rss_mb
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpointer,
    read_checkpoint,
    read_checkpoint_header,
    read_container,
    read_container_header,
    write_checkpoint,
    write_container,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    get_injector,
    inject_faults,
    install_injector,
)
from repro.resilience.progress import (
    PROGRESS_SCHEMA,
    ProgressEstimator,
    ProgressSnapshot,
)

__all__ = [
    "EXIT_SECURE",
    "EXIT_INSECURE",
    "EXIT_FUNDAMENTAL",
    "EXIT_INCONCLUSIVE",
    "EXIT_INPUT",
    "EXIT_CHECKPOINT",
    "EXIT_ANALYSIS",
    "EXIT_INTERRUPTED",
    "VERDICT_EXIT_CODES",
    "ReproError",
    "InputError",
    "AnalysisError",
    "SimulationError",
    "ForkError",
    "CheckpointError",
    "AnalysisInterrupted",
    "InjectedFault",
    "taxonomy",
    "AnalysisBudget",
    "current_rss_mb",
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "read_container",
    "read_container_header",
    "write_container",
    "read_checkpoint",
    "read_checkpoint_header",
    "write_checkpoint",
    "FAULT_KINDS",
    "FaultInjector",
    "get_injector",
    "install_injector",
    "inject_faults",
    "PROGRESS_SCHEMA",
    "ProgressEstimator",
    "ProgressSnapshot",
]
