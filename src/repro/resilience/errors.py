"""Typed error taxonomy for the GLIFT toolflow.

Every failure the pipeline can surface to a caller derives from
:class:`ReproError`, which carries a stable machine-readable ``code``, the
pipeline ``phase`` it belongs to, a ``retriable`` flag (is re-running the
same invocation plausibly useful?) and the process exit code the CLI maps
it to.  The contract this module backs is simple: the analyzer either
returns an :class:`~repro.core.tracker.AnalysisResult` or raises a
:class:`ReproError` -- never a bare traceback.

Exit-code table (documented in DESIGN.md and enforced by ``repro.cli``):

====  =======================================================
code  meaning
====  =======================================================
0     analysis verdict ``secure``
1     analysis verdict ``insecure``
2     fundamental violation (repair cannot converge)
3     analysis verdict ``inconclusive`` (budget exhausted)
4     input error (missing/invalid source, bad arguments)
5     checkpoint error (corrupt, stale or incompatible file)
6     analysis/simulation error (typed internal failure)
130   interrupted (SIGINT/SIGTERM; checkpoint saved if asked)
====  =======================================================
"""

from __future__ import annotations

from typing import Any, Dict

EXIT_SECURE = 0
EXIT_INSECURE = 1
EXIT_FUNDAMENTAL = 2
EXIT_INCONCLUSIVE = 3
EXIT_INPUT = 4
EXIT_CHECKPOINT = 5
EXIT_ANALYSIS = 6
EXIT_INTERRUPTED = 130

#: Exit code for each analysis verdict (``repro analyze``).
VERDICT_EXIT_CODES = {
    "secure": EXIT_SECURE,
    "insecure": EXIT_INSECURE,
    "inconclusive": EXIT_INCONCLUSIVE,
}


class ReproError(Exception):
    """Base class of every typed toolflow error.

    Subclasses override the class attributes; per-instance overrides and
    arbitrary structured context go through the constructor keywords.
    """

    code: str = "REPRO_ERROR"
    phase: str = "unknown"  # io|explore|check|repair|checkpoint|simulate
    retriable: bool = False
    exit_code: int = EXIT_ANALYSIS

    def __init__(self, message: str, **context: Any):
        super().__init__(message)
        for attr in ("code", "phase", "retriable", "exit_code"):
            if attr in context:
                setattr(self, attr, context.pop(attr))
        self.context: Dict[str, Any] = context

    def to_document(self) -> Dict[str, Any]:
        """The ``--json`` error document (stable, machine-readable)."""
        return {
            "code": self.code,
            "phase": self.phase,
            "retriable": self.retriable,
            "exit_code": self.exit_code,
            "message": str(self),
            "context": dict(self.context),
        }

    def render(self) -> str:
        """One-line human rendering, ``error[CODE]: message``."""
        return f"error[{self.code}]: {self}"


class InputError(ReproError):
    """The user's input (source file, arguments) cannot be used.

    Not retriable: the input is deterministic -- a file that does not
    assemble now will not assemble on the next attempt either.  The
    service's retry classifier fails such jobs fast, preserving exit
    code 4.
    """

    code = "INPUT"
    phase = "io"
    exit_code = EXIT_INPUT


class AnalysisError(ReproError):
    """The exploration cannot proceed soundly (internal invariant).

    Not retriable: exploration is deterministic, so a broken invariant
    reproduces on every rerun of the same program/policy; retrying only
    burns cycles on the identical failure.
    """

    code = "ANALYSIS"
    phase = "explore"


class SimulationError(AnalysisError):
    """The gate-level substrate failed underneath the tracker.

    Retriable: a transient fault (including an injected one) may not
    recur, and the exploration state it destroyed is rebuilt from the
    last checkpoint on retry.
    """

    code = "SIMULATION"
    phase = "simulate"
    retriable = True


class ForkError(AnalysisError):
    """PC concretisation at a fork site failed unexpectedly.

    Not retriable (inherited): fork sites are a pure function of the
    exploration state, so the same snapshot concretises -- or fails to
    -- identically on every attempt.
    """

    code = "FORK"


class CheckpointError(ReproError):
    """A checkpoint file is corrupt, stale, or version-incompatible.

    Not retriable: the file's bytes do not change between attempts.
    The *job* may still be rerunnable from scratch, which is a caller
    decision (the service worker ignores unusable checkpoints and
    starts fresh rather than failing the attempt).
    """

    code = "CHECKPOINT"
    phase = "checkpoint"
    exit_code = EXIT_CHECKPOINT


class AnalysisInterrupted(ReproError):
    """Cooperative interrupt (SIGINT/SIGTERM) stopped the exploration.

    ``context["checkpoint"]`` names the saved checkpoint file when the run
    was started with one, so the caller can resume.

    Retriable: the interrupt says nothing about the job itself, and the
    checkpoint written on the way out makes the retry cheap -- the
    service treats a drained worker's 130 exactly like any other
    retriable end and resumes from that checkpoint.
    """

    code = "INTERRUPTED"
    phase = "explore"
    retriable = True
    exit_code = EXIT_INTERRUPTED

    @property
    def checkpoint_path(self):
        return self.context.get("checkpoint")


class InjectedFault(SimulationError):
    """A deliberately injected fault reached the resilience boundary.

    Retriable (inherited from :class:`SimulationError`): injected
    faults model transients, and the chaos suites rely on retries
    clearing them once the injector's budget is spent.
    """

    code = "FAULT_INJECTED"


def taxonomy() -> tuple:
    """The full error taxonomy as ``(class, code, phase, retriable,
    exit_code)`` rows, including the leaves that live outside this
    module (``TrackerError``, ``FundamentalViolation``).

    This is the table the analysis service's retry classifier keys on:
    a test pins it verbatim so a changed ``retriable`` flag or exit
    code is a reviewed decision, never silent drift.
    """
    from repro.core.tracker import TrackerError
    from repro.transform import FundamentalViolation

    classes = (
        ReproError,
        InputError,
        AnalysisError,
        SimulationError,
        ForkError,
        TrackerError,
        CheckpointError,
        AnalysisInterrupted,
        InjectedFault,
        FundamentalViolation,
    )
    return tuple(
        (cls, cls.code, cls.phase, cls.retriable, cls.exit_code)
        for cls in classes
    )
