"""Analysis budgets with sound degradation.

An :class:`AnalysisBudget` bounds an exploration along five axes: paths,
simulated cycles, stored conservative (merged) states, wall-clock
deadline and process RSS.  The tracker checks it *cooperatively* -- at
worklist pops and at instruction-fetch boundaries -- and on exhaustion it
does not raise: the remaining worklist is widened to the fully-tainted
``X`` top state and the analysis returns with verdict ``inconclusive``
(or ``insecure`` when definite violations were already found).  Per the
paper's Section 4 conservatism, over-tainting unexplored futures can only
*add* violations, so the degraded verdict never claims security it did
not prove.

The budget is deliberately stateless across runs except for the deadline
anchor: ``start()`` latches the wall-clock start once, so one budget
threaded through a repair loop's repeated re-verifications bounds the
*whole* ``secure_compile`` call, not each round separately.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.clock import CLOCK, Clock

#: How many instruction-fetch boundaries pass between RSS probes (the
#: getrusage syscall is the only non-trivial check on the hot path).
RSS_CHECK_INTERVAL = 64


def current_rss_mb() -> Optional[float]:
    """The process's peak resident set size in MiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


@dataclass
class AnalysisBudget:
    """Resource ceilings for one analysis (None disables an axis)."""

    max_paths: Optional[int] = None
    max_cycles: Optional[int] = None
    max_merged_states: Optional[int] = None
    deadline_seconds: Optional[float] = None
    max_rss_mb: Optional[float] = None
    clock: Clock = field(default=CLOCK, repr=False)

    _started_at: Optional[float] = field(default=None, repr=False)
    _fetch_checks: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Anchor the deadline (idempotent: the first call wins, so one
        budget spans every re-verification of a repair loop)."""
        if self._started_at is None:
            self._started_at = self.clock.wall()

    def reset(self) -> None:
        """Forget the deadline anchor (a genuinely new job)."""
        self._started_at = None
        self._fetch_checks = 0

    @property
    def bounded(self) -> bool:
        return any(
            limit is not None
            for limit in (
                self.max_paths,
                self.max_cycles,
                self.max_merged_states,
                self.deadline_seconds,
                self.max_rss_mb,
            )
        )

    def elapsed_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return self.clock.wall() - self._started_at

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def exhausted_reasons(self, stats, merged_states: int) -> List[str]:
        """Every budget axis currently exhausted (full check; called at
        worklist pops, i.e. once per explored path)."""
        reasons: List[str] = []
        if self.max_paths is not None and stats.paths >= self.max_paths:
            reasons.append("max_paths")
        if (
            self.max_cycles is not None
            and stats.cycles_simulated >= self.max_cycles
        ):
            reasons.append("max_cycles")
        if (
            self.max_merged_states is not None
            and merged_states >= self.max_merged_states
        ):
            reasons.append("max_merged_states")
        if (
            self.deadline_seconds is not None
            and self._started_at is not None
            and self.clock.wall() - self._started_at
            >= self.deadline_seconds
        ):
            reasons.append("deadline")
        if self.max_rss_mb is not None:
            rss = current_rss_mb()
            if rss is not None and rss >= self.max_rss_mb:
                reasons.append("max_rss")
        return reasons

    def mid_path_exhausted(self, stats) -> bool:
        """Cheap check at instruction-fetch boundaries: only the axes a
        single long path can blow through (time, cycles, memory)."""
        if (
            self.max_cycles is not None
            and stats.cycles_simulated >= self.max_cycles
        ):
            return True
        if (
            self.deadline_seconds is not None
            and self._started_at is not None
            and self.clock.wall() - self._started_at
            >= self.deadline_seconds
        ):
            return True
        if self.max_rss_mb is not None:
            self._fetch_checks += 1
            if self._fetch_checks % RSS_CHECK_INTERVAL == 0:
                rss = current_rss_mb()
                if rss is not None and rss >= self.max_rss_mb:
                    return True
        return False

    # ------------------------------------------------------------------
    def worker_view(self) -> "AnalysisBudget":
        """The slice of this budget a parallel worker enforces itself.

        Workers run speculative path segments in their own processes, so
        the axes a single runaway chain can blow through locally -- the
        wall-clock deadline (same anchor: ``time.monotonic`` is per-boot,
        and workers live on the same host) and the RSS ceiling (checked
        against the *worker's* RSS) -- travel with the work.  The global
        axes (paths, cycles, merged states) stay with the coordinator,
        which alone owns the exploration totals.  On exhaustion a worker
        pauses its chain at the next fetch boundary and ships the state
        back; the coordinator then degrades soundly exactly as the
        serial tracker does.
        """
        view = AnalysisBudget(
            deadline_seconds=self.deadline_seconds,
            max_rss_mb=self.max_rss_mb,
        )
        view._started_at = self._started_at
        return view

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-ready description of the configured ceilings."""
        return {
            "max_paths": self.max_paths,
            "max_cycles": self.max_cycles,
            "max_merged_states": self.max_merged_states,
            "deadline_seconds": self.deadline_seconds,
            "max_rss_mb": self.max_rss_mb,
        }
