"""Live exploration progress: periodic snapshots with a bounded ETA.

A :class:`ProgressEstimator` rides along with a
:class:`~repro.core.TaintTracker` and periodically distils the
exploration state -- paths explored, frontier size, cycles simulated,
merged states, live violation count, per-budget-axis consumption -- into
a :class:`ProgressSnapshot`.  The tracker drives it cooperatively from
the same two boundaries the budget uses (worklist pops and instruction
fetches), throttled twice over so an armed estimator costs well under
the benched 5%% overhead ceiling: a call counter gates the hot fetch
path (:data:`TICK_CHECK_INTERVAL` boundaries between wall-clock probes,
the :data:`~repro.resilience.budget.RSS_CHECK_INTERVAL` pattern) and a
wall-clock interval gates actual snapshots.

Each snapshot derives two forward-looking numbers:

* **rate** -- paths explored per second over a sliding window of recent
  samples, so a long analysis's early warm-up does not poison the
  estimate forever;
* **ETA** -- ``pending / rate``, clamped by the budget deadline's
  remaining seconds when one is set and capped at
  :data:`ETA_CAP_SECONDS` (an estimate beyond a day is noise, not
  information).  ``None`` whenever the rate is not yet established.

The overall ``fraction`` is a bounded 0..1 completion estimate: the max
of the frontier estimate (``done / (done + in-flight + pending)``) and
every budget axis's consumed fraction, clamped monotone non-decreasing
within a run -- which is exactly what the v4 trace lint and the service
SSE stream assert.

Snapshots fan out three ways, all optional: a ``progress`` trace event
through the tracker's observer (v4 schema), tracker gauges on the
metrics registry, and a *sink* callback -- the service worker's sink
serialises the latest snapshot into its heartbeat JSON document, which
is how per-job progress reaches the supervisor, the job record, and
ultimately ``GET /jobs/<id>/events`` and ``repro watch``.

Exploration determinism is untouched: the estimator only reads tracker
state, and nothing downstream of it feeds back into exploration order.
(Path-parallel mode bypasses the estimator: the coordinator owns the
worklist there, and the service always runs its workers serial.)
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.obs.clock import CLOCK, Clock

#: Schema tag for the snapshot's ``to_document`` JSON form (the worker
#: heartbeat document embeds it; bump on breaking shape changes).
PROGRESS_SCHEMA = 1

#: Default minimum seconds between snapshots.
DEFAULT_INTERVAL = 0.25

#: Instruction-fetch boundaries between wall-clock probes on the hot
#: path (the clock read is the only non-trivial cost of an idle tick).
TICK_CHECK_INTERVAL = 256

#: ETA estimates are clamped here (one day): beyond it they carry no
#: information and render as garbage in a TTY progress line.
ETA_CAP_SECONDS = 86_400.0

#: How many ``(wall, paths)`` samples the rate window keeps.
RATE_WINDOW = 32


@dataclass
class ProgressSnapshot:
    """One point-in-time distillation of exploration state."""

    unix: float
    paths: int
    pending: int
    cycles: int
    merged_states: int
    violations: int
    #: consumed fraction (0..1) per *bounded* budget axis
    budget: Dict[str, float]
    #: overall bounded completion estimate, monotone within a run
    fraction: float
    eta_seconds: Optional[float] = None
    rate_paths_per_s: Optional[float] = None

    def to_document(self) -> dict:
        """JSON-ready form (heartbeat documents, SSE frames)."""
        return {
            "schema": PROGRESS_SCHEMA,
            "unix": self.unix,
            "paths": self.paths,
            "pending": self.pending,
            "cycles": self.cycles,
            "merged_states": self.merged_states,
            "violations": self.violations,
            "budget": dict(self.budget),
            "fraction": self.fraction,
            "eta_seconds": self.eta_seconds,
            "rate_paths_per_s": self.rate_paths_per_s,
        }

    @classmethod
    def from_document(cls, document: dict) -> "ProgressSnapshot":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in document.items() if k in known})


class ProgressEstimator:
    """Periodic exploration-progress snapshots for one tracker run.

    Attach via ``TaintTracker(..., progress=estimator)``; the tracker
    calls :meth:`attach` itself and then drives :meth:`update` (worklist
    pops, interval-throttled) and :meth:`tick` (fetch boundaries,
    counter- then interval-throttled).  ``sink`` receives every
    :class:`ProgressSnapshot` taken.
    """

    def __init__(
        self,
        interval_seconds: float = DEFAULT_INTERVAL,
        sink: Optional[Callable[[ProgressSnapshot], None]] = None,
        clock: Clock = CLOCK,
    ):
        self.interval_seconds = max(0.0, float(interval_seconds))
        self.sink = sink
        self.clock = clock
        self.latest: Optional[ProgressSnapshot] = None
        self.snapshots_taken = 0
        self._tracker = None
        self._ticks = 0
        self._last_wall: Optional[float] = None
        self._samples: Deque[Tuple[float, int]] = deque(maxlen=RATE_WINDOW)
        #: monotone clamp for the published fraction
        self._fraction_mark = 0.0

    # ------------------------------------------------------------------
    def attach(self, tracker) -> None:
        """Bind to *tracker* (called from ``TaintTracker.__init__``)."""
        self._tracker = tracker

    # ------------------------------------------------------------------
    # Tracker-driven hooks
    # ------------------------------------------------------------------
    def tick(self, pending: int) -> None:
        """Hot-path hook (instruction-fetch boundaries): a counter gates
        the clock probe, the clock gates the snapshot."""
        self._ticks += 1
        if self._ticks % TICK_CHECK_INTERVAL:
            return
        self.update(pending)

    def update(
        self, pending: int, force: bool = False, done: bool = False
    ) -> None:
        """Cool-path hook (worklist pops, run completion): snapshot if
        the interval elapsed, or unconditionally when *force*.  ``done``
        marks the run-completion snapshot: exploration has ended, so no
        path is in flight and a drained frontier means 100%."""
        if self._tracker is None:
            return
        now = self.clock.wall()
        if (
            not force
            and self._last_wall is not None
            and now - self._last_wall < self.interval_seconds
        ):
            return
        self._snapshot(pending, now, done=done)

    # ------------------------------------------------------------------
    def _budget_fractions(self, stats, merged_states: int) -> Dict[str, float]:
        budget = self._tracker.budget
        fractions: Dict[str, float] = {}
        if budget.max_paths:
            fractions["paths"] = min(1.0, stats.paths / budget.max_paths)
        if budget.max_cycles:
            fractions["cycles"] = min(
                1.0, stats.cycles_simulated / budget.max_cycles
            )
        if budget.max_merged_states:
            fractions["merged_states"] = min(
                1.0, merged_states / budget.max_merged_states
            )
        if budget.deadline_seconds:
            fractions["deadline"] = min(
                1.0, budget.elapsed_seconds() / budget.deadline_seconds
            )
        # max_rss is deliberately absent: probing RSS is a syscall, and
        # consumed memory is not progress toward completion anyway.
        return fractions

    def _rate(self, now: float, paths: int) -> Optional[float]:
        self._samples.append((now, paths))
        first_wall, first_paths = self._samples[0]
        span = now - first_wall
        if span <= 0.0 or len(self._samples) < 2:
            return None
        delta = paths - first_paths
        if delta <= 0:
            return 0.0
        return delta / span

    def _snapshot(self, pending: int, now: float, done: bool = False) -> None:
        tracker = self._tracker
        stats = tracker.stats
        merged_states = tracker._merged_states
        violations = tracker.checker.violation_count()
        fractions = self._budget_fractions(stats, merged_states)

        # Frontier estimate: the popped item being explored is neither
        # done nor pending, so done = paths - 1 while a path is open
        # (none is after the run: a drained frontier then means 100%).
        in_flight = 0 if done else 1
        total = stats.paths + pending
        frontier = (
            max(0, stats.paths - in_flight) / total if total else 0.0
        )
        fraction = max([frontier] + list(fractions.values()))
        fraction = min(1.0, max(self._fraction_mark, fraction))
        self._fraction_mark = fraction

        rate = self._rate(now, stats.paths)
        eta: Optional[float] = None
        if rate is not None and rate > 0.0:
            eta = pending / rate
        budget = tracker.budget
        if budget.deadline_seconds is not None:
            remaining = max(
                0.0, budget.deadline_seconds - budget.elapsed_seconds()
            )
            eta = remaining if eta is None else min(eta, remaining)
        if eta is not None:
            eta = min(eta, ETA_CAP_SECONDS)

        snapshot = ProgressSnapshot(
            unix=time.time(),
            paths=stats.paths,
            pending=pending,
            cycles=stats.cycles_simulated,
            merged_states=merged_states,
            violations=violations,
            budget=fractions,
            fraction=round(fraction, 6),
            eta_seconds=round(eta, 3) if eta is not None else None,
            rate_paths_per_s=(
                round(rate, 6) if rate is not None else None
            ),
        )
        self.latest = snapshot
        self.snapshots_taken += 1
        self._last_wall = now

        obs = tracker.obs
        if obs.enabled:
            obs.emit(
                "progress",
                paths=snapshot.paths,
                pending=snapshot.pending,
                cycles=snapshot.cycles,
                merged_states=snapshot.merged_states,
                violations=snapshot.violations,
                fraction=snapshot.fraction,
                eta_seconds=snapshot.eta_seconds,
                rate_paths_per_s=snapshot.rate_paths_per_s,
                budget=snapshot.budget,
            )
            obs.gauge("tracker.progress_fraction").set(snapshot.fraction)
            obs.gauge("tracker.progress_pending").set(snapshot.pending)
        if self.sink is not None:
            self.sink(snapshot)
