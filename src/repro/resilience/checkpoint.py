"""Versioned checkpoint/resume for long-running analyses.

A checkpoint captures everything Algorithm 1 needs to continue exactly
where it stopped: the worklist of unexplored snapshots, the conservative
merge table, the execution tree, the effort statistics and the policy
checker's violation state.  Exploration is deterministic, so a resumed
run reaches the same verdict and violation set as an uninterrupted one.

File format (all little-endian, written atomically via rename)::

    REPRO-CKPT\\n                     magic
    {json header}\\n                  version, digest, progress metadata
    <pickle blob>                     the tracker's exported state

The header is readable without unpickling, so stale or incompatible
checkpoints are rejected with a clear :class:`CheckpointError` before any
state is touched.  The digest covers the program image, the policy and
the netlist shape: resuming against a different binary or policy is a
hard error, not a silent wrong answer.

The magic/header/payload container itself is generic: the module-level
:func:`write_container` / :func:`read_container_header` /
:func:`read_container` functions are parameterised by magic and version,
and the checkpoint functions are thin wrappers over them.  The timeline
flight recorder (``repro.obs.timeline``) reuses the same codec for its
``.timeline`` files, so both formats share one atomic-write path and one
corrupt/stale rejection story.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import time
from pathlib import Path
from typing import Optional

from repro.resilience.errors import CheckpointError

MAGIC = b"REPRO-CKPT\n"
CHECKPOINT_VERSION = 1


# ---------------------------------------------------------------------------
# Generic versioned container codec (shared with repro.obs.timeline)
# ---------------------------------------------------------------------------
def write_container(
    path,
    magic: bytes,
    version: int,
    payload: dict,
    meta: Optional[dict] = None,
    kind: str = "checkpoint",
    code_prefix: str = "CHECKPOINT",
) -> Path:
    """Atomically write one ``magic + json-header + pickle`` container."""
    path = Path(path)
    header = {"version": version, "saved_unix": time.time()}
    if meta:
        header.update(meta)
    buffer = io.BytesIO()
    buffer.write(magic)
    buffer.write(json.dumps(header, sort_keys=True).encode() + b"\n")
    pickle.dump(payload, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_bytes(buffer.getvalue())
        os.replace(tmp, path)
    except OSError as error:
        raise CheckpointError(
            f"cannot write {kind} {str(path)!r}: {error}",
            code=f"{code_prefix}_WRITE",
            path=str(path),
        ) from error
    return path


def read_container_header(
    path,
    magic: bytes,
    version: int,
    kind: str = "checkpoint",
    code_prefix: str = "CHECKPOINT",
) -> dict:
    """Validate magic/version and return the JSON header."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            found = handle.read(len(magic))
            if found != magic:
                raise CheckpointError(
                    f"{str(path)!r} is not a repro {kind} (bad magic)",
                    code=f"{code_prefix}_CORRUPT",
                    path=str(path),
                )
            header_line = handle.readline()
    except OSError as error:
        raise CheckpointError(
            f"cannot read {kind} {str(path)!r}: {error}",
            code=f"{code_prefix}_READ",
            path=str(path),
        ) from error
    try:
        header = json.loads(header_line)
    except ValueError as error:
        raise CheckpointError(
            f"{kind} {str(path)!r} has a corrupt header: {error}",
            code=f"{code_prefix}_CORRUPT",
            path=str(path),
        ) from error
    if header.get("version") != version:
        raise CheckpointError(
            f"{kind} {str(path)!r} has version "
            f"{header.get('version')!r}; this build reads version "
            f"{version}",
            code=f"{code_prefix}_VERSION",
            path=str(path),
        )
    return header


def read_container(
    path,
    magic: bytes,
    version: int,
    kind: str = "checkpoint",
    code_prefix: str = "CHECKPOINT",
) -> tuple:
    """Load ``(header, payload)``, validating magic/version first."""
    path = Path(path)
    header = read_container_header(
        path, magic, version, kind=kind, code_prefix=code_prefix
    )
    try:
        with path.open("rb") as handle:
            handle.read(len(magic))
            handle.readline()
            payload = pickle.load(handle)
    except CheckpointError:
        raise
    except Exception as error:
        raise CheckpointError(
            f"{kind} {str(path)!r} payload is corrupt: {error}",
            code=f"{code_prefix}_CORRUPT",
            path=str(path),
        ) from error
    return header, payload


def write_checkpoint(
    path, digest: str, payload: dict, meta: Optional[dict] = None
) -> Path:
    """Atomically write one checkpoint file."""
    header_meta = {"digest": digest}
    if meta:
        header_meta.update(meta)
    return write_container(
        path, MAGIC, CHECKPOINT_VERSION, payload, meta=header_meta
    )


def read_checkpoint_header(path) -> dict:
    """Validate magic/version and return the JSON header."""
    return read_container_header(path, MAGIC, CHECKPOINT_VERSION)


def read_checkpoint(path, expected_digest: Optional[str] = None) -> dict:
    """Load a checkpoint payload, validating header and digest first."""
    path = Path(path)
    header = read_container_header(path, MAGIC, CHECKPOINT_VERSION)
    if expected_digest is not None and header.get("digest") != expected_digest:
        raise CheckpointError(
            f"checkpoint {str(path)!r} is stale: it was taken for a "
            "different program/policy/netlist (digest "
            f"{header.get('digest')!r}, expected {expected_digest!r}). "
            "Re-run the analysis from scratch.",
            code="CHECKPOINT_STALE",
            path=str(path),
            found=header.get("digest"),
            expected=expected_digest,
        )
    _, payload = read_container(path, MAGIC, CHECKPOINT_VERSION)
    return payload


class Checkpointer:
    """Cadence + destination for a tracker's periodic checkpoints.

    ``every_paths=N`` saves after every N explored paths; 0 disables the
    cadence (checkpoints then happen only on interrupt).  The tracker
    calls :meth:`due` once per worklist pop -- a comparison, no I/O --
    and :meth:`save` does the actual serialisation.
    """

    def __init__(self, path, every_paths: int = 0):
        self.path = Path(path)
        self.every_paths = every_paths
        self._last_saved_paths = 0
        self.saves = 0

    def due(self, paths: int) -> bool:
        return (
            self.every_paths > 0
            and paths - self._last_saved_paths >= self.every_paths
        )

    def save(self, tracker, reason: str = "periodic") -> Path:
        payload = tracker.export_checkpoint()
        stats = tracker.stats
        write_checkpoint(
            self.path,
            tracker.config_digest(),
            payload,
            meta={
                "program": tracker.program.name,
                "policy": tracker.policy.name,
                "paths": stats.paths,
                "cycles": stats.cycles_simulated,
                "reason": reason,
            },
        )
        self._last_saved_paths = stats.paths
        self.saves += 1
        obs = tracker.obs
        if obs.enabled:
            obs.emit(
                "checkpoint_saved",
                path=str(self.path),
                paths=stats.paths,
                cycles=stats.cycles_simulated,
                reason=reason,
            )
            obs.metrics.counter("resilience.checkpoints_saved").inc()
        return self.path
