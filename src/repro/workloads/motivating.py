"""The Section 3 motivating examples (Figures 2-5) as runnable programs.

Figure 2 has no concrete program (it depicts the *unknown* application);
its point -- "we must assume an unknown application causes all possible
violations" -- is made by the *-logic baseline and the strict-conditions
policy mode instead.  Figures 3-5 are the offset-loop application in its
three variants, transliterated from the paper's C sketches.

The paper's loops copy 25 items between port-fed arrays; the tainted pair
uses ``P1`` (in) and ``P2`` (out), the untainted pair ``P3``/``P4``.
"""

from repro.workloads.harness import service_harness

_TAINTED_LOOP_CLEAN = r"""
    ; for (i = 0; i < 25; i++) { a = <P1>; c[i+off] = a + c[i]; <P2> = c[i+off]; }
    mov #3, r13            ; offset = 3 (constant -- Figure 3)
    clr r12                ; i
f3_loop1:
    mov &P1IN, r4          ; a = <P1>
    mov #c_array, r11
    add r12, r11
    add @r11, r4           ; a + c[i]
    mov r13, r10
    add r12, r10
    mov #c_array, r11
    add r10, r11
    mov r4, 0(r11)         ; c[i + offset] = ...
    mov r4, &P2OUT         ; <P2> = c[i + offset]
    inc r12
    cmp #25, r12
    jnz f3_loop1
"""

_UNTAINTED_LOOP = r"""
    ; for (i = 0; i < 25; i++) { b = <P3>; d[i] = b + d[i]; <P4> = d[i]; }
    clr r12
f3_loop2:
    mov &P3IN, r5          ; b = <P3>
    mov #d_array, r11
    add r12, r11
    add @r11, r5
    mov r5, 0(r11)         ; d[i] = b + d[i]
    mov r5, &P4OUT         ; <P4> = d[i]
    inc r12
    cmp #25, r12
    jnz f3_loop2
"""

_DATA = r"""
.data 0x0400
c_array:
    .space 64
.data 0x0200
d_array:
    .space 32
"""


def figure3_source() -> str:
    """Figure 3: constant offset; tainted/untainted halves never mix."""
    return (
        ".task sys trusted\n"
        "start:\n"
        "    mov #0x07FE, sp\n"
        "    call #tainted_code\n"
        "    br #untainted_half\n"
        ".task tainted_code untrusted\n"
        "tainted_code:\n"
        + _TAINTED_LOOP_CLEAN
        + "    ret\n"
        ".task untainted_half trusted\n"
        "untainted_half:\n"
        + _UNTAINTED_LOOP
        + "    halt\n"
        + _DATA
    )


def figure4_source() -> str:
    """Figure 4: ``offset = <P1>`` -- the tainted-offset violator."""
    tainted_loop = _TAINTED_LOOP_CLEAN.replace(
        "    mov #3, r13            ; offset = 3 (constant -- Figure 3)",
        "    mov &P1IN, r13         ; offset = <P1> (tainted -- Figure 4)",
    )
    return (
        ".task sys trusted\n"
        "start:\n"
        "    mov #0x07FE, sp\n"
        "    call #tainted_code\n"
        "    br #untainted_half\n"
        ".task tainted_code untrusted\n"
        "tainted_code:\n"
        + tainted_loop
        + "    ret\n"
        ".task untainted_half trusted\n"
        "untainted_half:\n"
        + _UNTAINTED_LOOP
        + "    halt\n"
        + _DATA
    )


def figure5_source() -> str:
    """Figure 5: the masked offset -- ``Offset = mask(offset)``."""
    tainted_loop = _TAINTED_LOOP_CLEAN.replace(
        "    mov #3, r13            ; offset = 3 (constant -- Figure 3)",
        "    mov &P1IN, r13         ; offset = <P1>\n"
        "    and #0x001F, r13       ; Offset = mask(offset): stay in c[]",
    )
    return (
        ".task sys trusted\n"
        "start:\n"
        "    mov #0x07FE, sp\n"
        "    call #tainted_code\n"
        "    br #untainted_half\n"
        ".task tainted_code untrusted\n"
        "tainted_code:\n"
        + tainted_loop
        + "    ret\n"
        ".task untainted_half trusted\n"
        "untainted_half:\n"
        + _UNTAINTED_LOOP
        + "    halt\n"
        + _DATA
    )
