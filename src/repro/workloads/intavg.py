"""``intAVG`` -- integer averaging with binning (embedded suite, violator).

Averages eight tainted samples with outlier rejection: samples above a
limit are discarded, which branches on tainted data (condition 1).  The
average then bumps a histogram bin -- ``avg_hist[avg >> 4]`` -- indexed by
the tainted average (condition 2).
"""

NAME = "intAVG"
SUITE = "embedded"
REPS = 30  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = True
DESCRIPTION = "outlier-rejecting average of eight samples with histogram"

KERNEL = r"""
    push r10
    push r11
    clr r6                 ; sum of accepted samples
    mov #8, r10
avg_loop:
    mov &P1IN, r4          ; sample (tainted)
    cmp #0x4000, r4        ; sample - limit: tainted flags
    jc avg_reject          ; no borrow: sample >= limit, reject
    add r4, r6
avg_reject:
    dec r10
    jnz avg_loop
    mov r6, r7             ; avg = sum >> 3 (arithmetic: the sum may have
    rra r7                 ; wrapped, so the "average" can look negative --
    rra r7                 ; faithful to what the C kernel's >> does)
    rra r7
    mov r7, &avg_value
    mov r7, r8             ; bin = avg >> 4
    rra r8
    rra r8
    rra r8
    rra r8
    add #1, avg_hist(r8)   ; histogram bump (tainted, unbounded index!)
    mov r7, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
avg_hist:
    .space 32
avg_value:
    .word 0
"""
