"""``div`` -- restoring division (embedded suite, violator).

Divides a tainted dividend by a tainted divisor with the classic 16-step
restoring loop: each step's "does the divisor fit" comparison branches on
tainted data (condition 1).  The quotient is then filed into a small
residue-indexed table -- ``div_hash[remainder]`` -- a modulo-bucketing
idiom whose store address derives from the tainted remainder
(condition 2, the Figure 4 pattern).
"""

NAME = "div"
SUITE = "embedded"
REPS = 14  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = True
DESCRIPTION = "16-step restoring division with remainder-indexed filing"

KERNEL = r"""
    push r10
    push r11
    mov &P1IN, r4          ; dividend (tainted)
    mov &P1IN, r5          ; divisor (tainted)
    bis #1, r5             ; keep the divisor non-zero
    clr r6                 ; quotient
    clr r7                 ; remainder
    mov #16, r10
div_loop:
    rla r6                 ; quotient <<= 1
    rla r7                 ; remainder <<= 1
    rla r4                 ; carry = dividend msb
    adc r7                 ; remainder |= carry
    cmp r5, r7             ; remainder - divisor: tainted flags
    jnc div_skip           ; borrow: divisor does not fit
    sub r5, r7
    bis #1, r6
div_skip:
    dec r10
    jnz div_loop
    mov r6, div_hash(r7)   ; file quotient by residue (tainted index!)
    mov r6, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
div_hash:
    .space 32
"""
