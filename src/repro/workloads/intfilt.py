"""``intFilt`` -- integer FIR filter (embedded suite, clean).

A 3-tap smoothing filter ``y[i] = x[i] + 2*x[i-1] + x[i-2]`` over eight
tainted samples.  Coefficients are powers of two (shift-add), loop bounds
are constants, and every buffer index is an untainted counter: no
information-flow violation is possible, so the analysis certifies the
unmodified binary.
"""

NAME = "intFilt"
SUITE = "embedded"
REPS = 10  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = False
DESCRIPTION = "3-tap power-of-two FIR over eight samples"

KERNEL = r"""
    push r10
    push r11
    mov #if_x, r11
    mov #8, r10
if_read:
    mov &P1IN, r4
    mov r4, 0(r11)
    inc r11
    dec r10
    jnz if_read
    mov #2, r12            ; i = 2
if_loop:
    mov #if_x, r11
    add r12, r11
    mov @r11, r4           ; x[i]
    mov -1(r11), r5        ; x[i-1]
    rla r5                 ; 2*x[i-1]
    add r5, r4
    mov -2(r11), r5        ; x[i-2]
    add r5, r4
    mov #if_y, r11
    add r12, r11
    mov r4, 0(r11)         ; y[i] (untainted index)
    inc r12
    cmp #8, r12
    jnz if_loop
    mov &if_y+7, r4
    mov r4, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
if_x:
    .space 8
if_y:
    .space 8
"""
