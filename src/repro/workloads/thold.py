"""``tHold`` -- threshold event detector (embedded suite, violator).

Scans eight tainted samples for threshold crossings.  The crossing test
branches on tainted data (condition 1); detected events log the
inter-arrival gap, and the gap arithmetic (``i - last_i`` on tainted
positions) produces a wide-unknown index into the gap log (condition 2).
"""

NAME = "tHold"
SUITE = "embedded"
REPS = 8  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = True
DESCRIPTION = "threshold detector logging inter-arrival gaps"

KERNEL = r"""
    push r10
    push r11
    clr r6                 ; event count
    clr r7                 ; index of previous event (tainted once set)
    clr r12                ; loop index i
th_loop:
    mov &P1IN, r4          ; sample (tainted)
    cmp #0x2000, r4        ; sample - threshold: tainted flags
    jnc th_quiet           ; borrow: below threshold
    ; event: log the gap since the previous event
    mov r12, r5
    sub r7, r5             ; gap = i - last_i (borrow widens unknowns)
    mov r12, th_gaps(r5)   ; log position by gap (tainted index!)
    mov r12, r7            ; last_i = i
    inc r6
th_quiet:
    inc r12
    cmp #8, r12
    jnz th_loop            ; untainted loop bound
    mov r6, &th_count
    mov r6, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
th_gaps:
    .space 16
th_count:
    .word 0
"""
