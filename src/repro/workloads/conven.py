"""``ConvEn`` -- rate-1/2 convolutional encoder (EEMBC-style, clean).

Encodes eight bits of a tainted input word through a constraint-length-3
shift register, producing two parity streams (generators 7 and 5).  Bit
extraction and parity are branchless (shifts, ANDs, XOR folds); the loop
runs a fixed eight iterations with untainted store indices.
"""

NAME = "ConvEn"
SUITE = "eembc"
REPS = 9  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = False
DESCRIPTION = "K=3 rate-1/2 convolutional encoder over eight bits"

KERNEL = r"""
    push r10
    push r11
    mov &P1IN, r4          ; input bits (tainted)
    clr r5                 ; shift register
    clr r6                 ; packed g0 stream
    clr r7                 ; packed g1 stream
    mov #8, r10
ce_loop:
    mov r4, r8
    and #1, r8             ; next input bit
    rra r4
    and #0x7FFF, r4        ; logical shift of the input word
    rla r5
    bis r8, r5             ; shift register <- bit
    and #7, r5             ; keep K=3 window
    ; g0 = parity(sr & 0b111): fold taps 2,1,0
    mov r5, r8
    mov r5, r9
    rra r9
    xor r9, r8
    rra r9
    xor r9, r8
    and #1, r8             ; parity of all three taps
    rla r6
    bis r8, r6
    ; g1 = parity(sr & 0b101): taps 2 and 0
    mov r5, r8
    mov r5, r9
    rra r9
    rra r9
    xor r9, r8
    and #1, r8
    rla r7
    bis r8, r7
    dec r10
    jnz ce_loop            ; fixed bit count
    mov r6, &ce_g0
    mov r7, &ce_g1
    mov r6, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
ce_g0:
    .word 0
ce_g1:
    .word 0
"""
