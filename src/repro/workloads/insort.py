"""``inSort`` -- insertion sort (embedded suite, violator).

Reads eight tainted samples and insertion-sorts them in place.  The inner
shift loop compares buffered elements against the tainted key (condition
1), and its index ``j`` -- merged across input-dependent iteration counts
and decremented through zero -- addresses the shift stores with wide
unknown bits that escape the partition base (condition 2).
"""

NAME = "inSort"
SUITE = "embedded"
REPS = 6  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = True
DESCRIPTION = "in-place insertion sort of eight tainted samples"

KERNEL = r"""
    push r10
    push r11
    mov #is_buf, r11       ; sample gather (untainted index)
    mov #8, r10
is_read:
    mov &P1IN, r4
    mov r4, 0(r11)
    inc r11
    dec r10
    jnz is_read
    mov #1, r12            ; i
is_outer:
    mov #is_buf, r11
    add r12, r11
    mov @r11, r4           ; key = a[i]
    mov r12, r5            ; j = i
is_inner:
    tst r5
    jz is_place
    mov #is_buf, r11
    add r5, r11
    mov -1(r11), r6        ; a[j-1]
    cmp r4, r6             ; a[j-1] - key: tainted flags
    jl is_place            ; already in order
    mov r6, 0(r11)         ; shift a[j-1] up (tainted index j)
    dec r5
    jmp is_inner
is_place:
    mov #is_buf, r11
    add r5, r11
    mov r4, 0(r11)         ; place key at a[j] (tainted index)
    inc r12
    cmp #8, r12
    jnz is_outer           ; untainted outer counter
    mov &is_buf, r4        ; smallest element
    mov r4, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
is_buf:
    .space 8
"""
