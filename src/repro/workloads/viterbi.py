"""``Viterbi`` -- two-state Viterbi decoder (EEMBC-style, violator).

Decodes six tainted soft symbols over a two-state trellis: each step picks
the surviving predecessor by comparing tainted path metrics (condition 1),
and the final confidence filing ``vit_conf[metric]`` indexes memory by the
accumulated tainted metric (condition 2).
"""

NAME = "Viterbi"
SUITE = "eembc"
REPS = 18  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = True
DESCRIPTION = "2-state Viterbi decode of six symbols with confidence filing"

KERNEL = r"""
    push r10
    push r11
    clr r6                 ; metric(state 0)
    mov #4, r7             ; metric(state 1): biased start
    clr r8                 ; decoded bits
    mov #6, r10
vit_loop:
    mov &P1IN, r4          ; soft symbol (tainted)
    and #0x000F, r4        ; bounded branch cost
    ; candidate metrics: stay in 0 costs symbol, hop to 0 costs 1
    mov r6, r5
    add r4, r5             ; m0 + cost(sym)
    mov r7, r9
    inc r9                 ; m1 + 1
    cmp r9, r5             ; (m0+cost) - (m1+1): tainted flags
    jl vit_keep0           ; staying is cheaper
    mov r9, r6             ; survivor: hop from state 1
    rla r8
    bis #1, r8             ; decoded bit 1
    jmp vit_next
vit_keep0:
    mov r5, r6             ; survivor: stay in state 0
    rla r8                 ; decoded bit 0
vit_next:
    ; state-1 metric drifts by the complementary cost
    mov #0x000F, r5
    sub r4, r5
    add r5, r7
    dec r10
    jnz vit_loop
    mov r8, &vit_out
    mov r8, vit_conf(r6)   ; file decode by final metric (tainted index!)
    mov r8, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
vit_conf:
    .space 32
vit_out:
    .word 0
"""
