"""``binSearch`` -- binary search over a sorted table (embedded, violator).

Searches a 16-entry sorted table for a tainted key.  Every probe compares
against the key, so the halving branches are input-dependent (condition 1
violation: the PC becomes tainted); the per-probe access-frequency update
``add #1, bs_hits(mid)`` indexes memory through the tainted ``mid``, whose
unknown bits spread wide through the ``hi = mid - 1`` borrow chain
(condition 2 violation -- Figure 4's pattern, repaired by masking).
"""

NAME = "binSearch"
SUITE = "embedded"
REPS = 24  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = True
DESCRIPTION = "binary search of a tainted key with probe-frequency counters"

KERNEL = r"""
    push r10
    push r11
    mov &P1IN, r12         ; key (tainted)
    clr r4                 ; lo
    mov #15, r5            ; hi
    mov #0xFFFF, r6        ; found index (none)
    mov #4, r10            ; fixed log2(16) probes
bs_loop:
    mov r4, r7
    add r5, r7
    rra r7                 ; mid = (lo + hi) / 2
    mov r7, r8
    add #bs_table, r8
    mov @r8, r9            ; probe = table[mid]
    add #1, bs_hits(r7)    ; probe-frequency counter (tainted index!)
    cmp r12, r9            ; probe - key: tainted flags
    jz bs_found
    jl bs_right            ; probe < key: search upper half
    mov r7, r5
    dec r5                 ; hi = mid - 1 (borrow widens the unknowns)
    jmp bs_next
bs_right:
    mov r7, r4
    inc r4                 ; lo = mid + 1
    jmp bs_next
bs_found:
    mov r7, r6
bs_next:
    dec r10
    jnz bs_loop
    mov r6, &bs_result
    mov r6, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
bs_table:
    .word 2, 5, 7, 11, 19, 23, 31, 40, 51, 64, 79, 96, 115, 136, 159, 184
bs_hits:
    .space 16
bs_result:
    .word 0
"""
