"""The benchmark suite (Table 1) and the paper's example programs.

Thirteen kernels -- nine embedded sensor benchmarks after [34] and four
EEMBC-style kernels -- hand-written in LP430 assembly with the same
algorithmic skeletons and, crucially, the same *information-flow shapes*
as the paper's: six have input-dependent control flow or input-derived
store addressing (the Table 2 violators), seven keep control flow and
addressing independent of the tainted input.

Each benchmark is an untrusted computational task served by trusted
restart code, reading its tainted input from ``P1IN`` and writing its
result to the tainted output ``P2OUT``, with data and stack in the tainted
RAM partition -- the system shape of Section 7's evaluation.
"""

from repro.workloads.harness import (
    measurement_harness,
    service_harness,
)
from repro.workloads.registry import (
    BENCHMARKS,
    BenchmarkInfo,
    benchmark,
    benchmark_names,
)
from repro.workloads import micro, motivating

__all__ = [
    "BENCHMARKS",
    "BenchmarkInfo",
    "benchmark",
    "benchmark_names",
    "service_harness",
    "measurement_harness",
    "micro",
    "motivating",
]
