"""``tea8`` -- eight-round TEA-style block cipher (embedded suite, clean).

Encrypts a two-word tainted block with a fixed eight-round Feistel ladder
(16-bit TEA variant: shifts, adds and XORs with compiled-in key words).
Round count and store addresses are constants, making this the classic
"crypto kernels are constant-time" clean benchmark.
"""

NAME = "tea8"
SUITE = "embedded"
REPS = 6  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = False
DESCRIPTION = "8-round 16-bit TEA-style Feistel encryption"

KERNEL = r"""
    push r10
    push r11
    mov &P1IN, r4          ; v0 (tainted)
    mov &P1IN, r5          ; v1 (tainted)
    clr r6                 ; sum
    mov #8, r10
tea_round:
    add #0x79B9, r6        ; sum += delta
    ; v0 += ((v1 << 4) + K0) ^ (v1 + sum) ^ ((v1 >> 5) + K1)
    mov r5, r7
    rla r7
    rla r7
    rla r7
    rla r7                 ; v1 << 4
    add #0x3412, r7        ; + K0
    mov r5, r8
    add r6, r8             ; v1 + sum
    xor r8, r7
    mov r5, r9
    rra r9
    rra r9
    rra r9
    rra r9
    rra r9
    and #0x07FF, r9        ; v1 >> 5 (logical)
    add #0x6B2C, r9        ; + K1
    xor r9, r7
    add r7, r4
    ; v1 += ((v0 << 4) + K2) ^ (v0 + sum) ^ ((v0 >> 5) + K3)
    mov r4, r7
    rla r7
    rla r7
    rla r7
    rla r7
    add #0x1CE5, r7        ; + K2
    mov r4, r8
    add r6, r8
    xor r8, r7
    mov r4, r9
    rra r9
    rra r9
    rra r9
    rra r9
    rra r9
    and #0x07FF, r9
    add #0x5F0D, r9        ; + K3
    xor r9, r7
    add r7, r5
    dec r10
    jnz tea_round          ; fixed round count
    mov r4, &tea_ct0
    mov r5, &tea_ct1
    mov r4, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
tea_ct0:
    .word 0
tea_ct1:
    .word 0
"""
