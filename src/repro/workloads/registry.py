"""The benchmark registry (Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads import (
    autocorr,
    binsearch,
    conven,
    divide,
    fft,
    insort,
    intavg,
    intfilt,
    mult,
    rle,
    tea8,
    thold,
    viterbi,
)
from repro.workloads.harness import measurement_harness, service_harness

_MODULES = [
    mult,
    binsearch,
    tea8,
    intfilt,
    thold,
    divide,
    insort,
    rle,
    intavg,
    autocorr,
    fft,
    conven,
    viterbi,
]


@dataclass(frozen=True)
class BenchmarkInfo:
    """One Table 1 benchmark."""

    name: str
    suite: str  # "embedded" ([34]) or "eembc" ([35])
    description: str
    expected_violator: bool
    kernel: str
    data: str
    #: activation batch size: the kernel body repeats this many times per
    #: task activation, sizing the task realistically for the Section 7.2
    #: time-slicing trade-offs (r15 is the batch counter; kernels use
    #: r4..r13, and r14 is the toolflow's reserved scratch).
    reps: int = 1

    @property
    def batched_kernel(self) -> str:
        if self.reps <= 1:
            return self.kernel
        return (
            f"    mov #{self.reps}, r15   ; activation batch\n"
            "bench_rep:\n"
            + self.kernel.rstrip()
            + "\n    dec r15\n"
            "    jnz bench_rep\n"
        )

    @property
    def service_source(self) -> str:
        """Restart-forever system binary (the analysis target)."""
        return service_harness(self.batched_kernel, self.data)

    @property
    def measurement_source(self) -> str:
        """Single-shot system binary (the cycle-measurement target)."""
        return measurement_harness(self.batched_kernel, self.data)

    def service_program(self) -> Program:
        return assemble(self.service_source, name=self.name)

    def measurement_program(self) -> Program:
        return assemble(self.measurement_source, name=self.name)


BENCHMARKS: Dict[str, BenchmarkInfo] = {
    module.NAME: BenchmarkInfo(
        name=module.NAME,
        suite=module.SUITE,
        description=module.DESCRIPTION,
        expected_violator=module.EXPECTED_VIOLATOR,
        kernel=module.KERNEL,
        data=module.DATA,
        reps=getattr(module, "REPS", 1),
    )
    for module in _MODULES
}


def benchmark(name: str) -> BenchmarkInfo:
    return BENCHMARKS[name]


def benchmark_names() -> List[str]:
    return list(BENCHMARKS)


#: The six benchmarks Table 2 reports as violating conditions 1 and 2.
TABLE2_VIOLATORS = (
    "binSearch",
    "div",
    "inSort",
    "intAVG",
    "tHold",
    "Viterbi",
)
