"""``rle`` -- branchless run-length flagging (embedded suite, clean).

Scans eight tainted samples and marks run boundaries.  The "differs from
the previous sample" test is computed *branchlessly* (XOR, then an OR-fold
any-bit-set reduction), so the tainted data steers no branch and no
address: the kernel stays certifiably clean while still doing real
run-length work (boundary flags plus a run count).
"""

NAME = "rle"
SUITE = "embedded"
REPS = 8  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = False
DESCRIPTION = "branchless run-boundary detection over eight samples"

KERNEL = r"""
    push r10
    push r11
    clr r5                 ; previous sample
    clr r6                 ; run count
    mov #rle_flags, r11
    mov #8, r10
rle_loop:
    mov &P1IN, r4          ; sample (tainted)
    mov r4, r7
    xor r5, r7             ; diff = sample ^ previous
    ; branchless any-bit-set: fold diff down to bit 0
    mov r7, r8
    swpb r8
    bis r8, r7             ; diff |= diff >> 8
    mov r7, r8
    rra r8
    rra r8
    rra r8
    rra r8
    bis r8, r7             ; diff |= diff >> 4
    mov r7, r8
    rra r8
    rra r8
    bis r8, r7             ; diff |= diff >> 2
    mov r7, r8
    rra r8
    bis r8, r7             ; diff |= diff >> 1
    and #1, r7             ; boundary flag
    mov r7, 0(r11)         ; store flag (untainted index)
    inc r11
    add r7, r6             ; run count += flag
    mov r4, r5
    dec r10
    jnz rle_loop
    mov r6, &rle_runs
    mov r6, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
rle_flags:
    .space 8
rle_runs:
    .word 0
"""
