"""The Figure 8 and Figure 9 micro-benchmarks (Section 5.3's verification).

These are near-verbatim translations of the paper's two code listings:
the unprotected/protected tainted-control loop (Figure 8) and the
unmasked/masked tainted-address store (Figure 9).
"""

# ---------------------------------------------------------------------------
# Figure 8: tainted control flow, without and with the watchdog reset.
# The left-hand listing marks everything after address 0 as tainted code;
# we realise that as an untrusted task entered from trusted code.
# ---------------------------------------------------------------------------
FIG8_UNPROTECTED = """\
.task sys trusted
    mov #0x07FE, sp
    br #tainted_code            ; address 0's jump into tainted code

.task tainted_code untrusted
tainted_code:
    mov &P1IN, r4               ; control will depend on this
    mov #100, r10
fig8_loop:
    tst r4
    jz fig8_skip                ; tainted branch: PC becomes tainted
    nop
fig8_skip:
    dec r10
    jnz fig8_loop
    br #0                       ; jump back -- but the PC stays tainted
"""

FIG8_PROTECTED = """\
.task sys trusted
    mov #0x07FE, sp
    mov #0x5a0b, &WDTCTL        ; enable watchdog (paper's listing value)
    br #tainted_code

.task tainted_code untrusted
tainted_code:
    mov &P1IN, r4
    mov #4, r10
fig8p_loop:
    tst r4
    jz fig8p_skip
    nop
fig8p_skip:
    dec r10
    jnz fig8p_loop
fig8p_pad:
    jmp fig8p_pad               ; nop padding until the watchdog reset
"""

# ---------------------------------------------------------------------------
# Figure 9: the tainted-address store, without and with masking.
# A close transliteration of the paper's two listings (word-addressed).
# ---------------------------------------------------------------------------
FIG9_UNMASKED = """\
.task handler untrusted
    mov #4096, &0x0250          ; mov #4096, &DMEM_250
    mov #0x0449, r15
    mov #1, 0(r15)              ; mov.b #1, 0(r15)
    mov #P1IN, r15
    mov @r15, r15               ; read untrusted input
    mov #0x0200, r14
    add r15, r14                ; tainted address computation
    mov #500, 0(r14)            ; store taints the whole data memory
    mov r15, &0x0200            ; mov r15, &DMEM_200
    halt
"""

FIG9_MASKED = """\
.task handler untrusted
    mov #4096, &0x0250
    mov #0x0449, r15
    mov #1, 0(r15)
    mov #P1IN, r15
    mov @r15, r15               ; read untrusted input
    mov #0x0200, r14
    add r15, r14
    and #0x03FF, r14            ; the paper's inserted mask
    bis #0x0400, r14            ; pin the partition base
    mov #500, 0(r14)            ; store confined to 0x0400..0x07FF
    mov r15, &0x0500            ; result stays in the tainted partition
    halt
"""
