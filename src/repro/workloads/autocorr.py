"""``autocorr`` -- fixed-lag autocorrelation (EEMBC-style, clean).

Computes autocorrelation at lags 0..2 over six tainted samples.  The
inner product uses the branchless shift-add multiplier (6-bit), nested in
fixed-bound loops with untainted indices throughout -- heavy tainted
*dataflow*, zero tainted *control or addressing*.
"""

NAME = "autocorr"
SUITE = "eembc"
REPS = 2  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = False
DESCRIPTION = "lags 0..2 autocorrelation of six samples (branchless MAC)"

KERNEL = r"""
    push r10
    push r11
    mov #ac_x, r11
    mov #6, r10
ac_read:
    mov &P1IN, r4
    and #0x003F, r4        ; 6-bit samples keep products in range
    mov r4, 0(r11)
    inc r11
    dec r10
    jnz ac_read
    clr r13                ; lag = 0
ac_lag:
    clr r6                 ; accumulator
    clr r12                ; i = 0
ac_mac:
    mov #ac_x, r11
    add r12, r11
    mov @r11, r4           ; x[i]
    add r13, r11
    mov @r11, r5           ; x[i+lag]
    ; branchless 6-step multiply r4 * r5 -> r9
    clr r9
    mov #6, r10
ac_mstep:
    mov r5, r7
    and #1, r7
    clr r8
    sub r7, r8
    and r4, r8
    add r8, r9
    rla r4
    rra r5
    dec r10
    jnz ac_mstep
    add r9, r6             ; acc += product
    inc r12
    mov #6, r4
    sub r13, r4            ; count = 6 - lag
    cmp r4, r12
    jnz ac_mac             ; untainted bound
    mov #ac_r, r11
    add r13, r11
    mov r6, 0(r11)         ; r[lag] (untainted index)
    inc r13
    cmp #3, r13
    jnz ac_lag
    mov &ac_r, r4
    mov r4, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0400
ac_x:
    .space 6
ac_r:
    .space 3
"""
