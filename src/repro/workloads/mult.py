"""``mult`` -- branchless shift-add multiplication (embedded suite, clean).

Multiplies two tainted 8-bit inputs with a fixed eight-iteration
shift-add loop.  The conditional "add multiplicand if this multiplier bit
is set" is computed *branchlessly* (a 0/0xFFFF mask built with ``sub``),
so control flow never depends on the tainted input and every store uses an
untainted pointer: the benchmark verifies secure unmodified -- but an
"always-on" scheme still pays to mask its per-iteration trace stores and
to bound it with the watchdog, which is where Table 3's largest
no-analysis overhead comes from.
"""

NAME = "mult"
SUITE = "embedded"
REPS = 12  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = False
DESCRIPTION = "branchless 8x8 shift-add multiply with partial-product trace"

KERNEL = r"""
    push r10
    push r11
    mov &P1IN, r4          ; multiplicand (tainted)
    mov &P1IN, r5          ; multiplier (tainted)
    and #0x00FF, r4
    and #0x00FF, r5
    clr r6                 ; product
    mov #mult_trace, r11   ; trace pointer (untainted)
    mov #8, r10
mult_loop:
    mov r5, r7
    and #1, r7             ; current multiplier bit
    clr r8
    sub r7, r8             ; r8 = bit ? 0xFFFF : 0x0000 (branchless mask)
    mov r4, r9
    and r8, r9             ; r9 = bit ? multiplicand : 0
    add r9, r6
    mov r6, 0(r11)         ; trace partial product (untainted address)
    inc r11
    rla r4                 ; multiplicand <<= 1
    rra r5                 ; multiplier >>= 1 (msb clear: acts logical)
    dec r10
    jnz mult_loop          ; untainted loop counter
    mov r6, &P2OUT
    pop r11
    pop r10
"""

DATA = r"""
.data 0x0500
mult_trace:
    .space 8
"""
