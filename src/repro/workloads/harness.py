"""System harnesses wrapping a kernel into a full LP430 system binary.

Two shapes:

* :func:`service_harness` -- the evaluation shape: trusted system code
  that (re)starts the untrusted benchmark forever ("system code is an
  untainted task consisting of the instructions needed to restart the
  benchmark after each execution").  This is what the analysis runs on.
* :func:`measurement_harness` -- a single-shot variant ending in ``halt``,
  used by the cycle-accurate overhead measurements.

Convention: the benchmark's stack lives at the top of the tainted RAM
partition (``0x07FE``) so the untrusted task's spills stay inside its own
partition; the kernel body is entered by ``call #bench`` and returns with
``ret`` (the watchdog transformation rewrites exactly this pattern).
"""

from __future__ import annotations

from repro import memmap

_SERVICE = """\
.task sys trusted
start:
    mov #0x{stack:04X}, sp
    call #bench
    jmp start

.task bench untrusted
bench:
{body}
    ret
{data}
"""

_MEASURE = """\
.task sys trusted
start:
    mov #0x{stack:04X}, sp
    call #bench
    halt

.task bench untrusted
bench:
{body}
    ret
{data}
"""

STACK_TOP_IN_PARTITION = memmap.TAINTED_RAM_END - 2  # 0x07FE


def service_harness(body: str, data: str = "") -> str:
    """The restart-forever system binary used for analysis."""
    return _SERVICE.format(
        stack=STACK_TOP_IN_PARTITION, body=body.rstrip(), data=data
    )


def measurement_harness(body: str, data: str = "") -> str:
    """The run-once system binary used for cycle measurements."""
    return _MEASURE.format(
        stack=STACK_TOP_IN_PARTITION, body=body.rstrip(), data=data
    )
