"""``FFT`` -- eight-point butterfly transform (EEMBC-style, clean).

Three fixed stages of add/subtract butterflies over eight tainted samples
(a Walsh-Hadamard-structured decimation network: the real FFT's data flow
with unit twiddles, keeping the arithmetic integer-exact).  All butterfly
indices are compile-time constants, so taint flows only through values --
the archetypal clean streaming kernel.
"""

NAME = "FFT"
SUITE = "eembc"
REPS = 12  # activation batch size: sizes the task for realistic
# slice amortisation (Section 7.2 time-slicing)
EXPECTED_VIOLATOR = False
DESCRIPTION = "8-point fixed-index butterfly transform"

_BUTTERFLY = """
    mov &fft_buf+{a}, r4
    mov &fft_buf+{b}, r5
    mov r4, r6
    add r5, r6             ; a + b
    sub r5, r4             ; a - b
    mov r6, &fft_buf+{a}
    mov r4, &fft_buf+{b}
"""


def _stage(pairs):
    return "".join(
        _BUTTERFLY.format(a=a, b=b) for a, b in pairs
    )


KERNEL = (
    r"""
    push r10
    push r11
    mov #fft_buf, r11
    mov #8, r10
fft_read:
    mov &P1IN, r4
    mov r4, 0(r11)
    inc r11
    dec r10
    jnz fft_read
"""
    + "    ; stage 1 (stride 4)"
    + _stage([(0, 4), (1, 5), (2, 6), (3, 7)])
    + "    ; stage 2 (stride 2)"
    + _stage([(0, 2), (1, 3), (4, 6), (5, 7)])
    + "    ; stage 3 (stride 1)"
    + _stage([(0, 1), (2, 3), (4, 5), (6, 7)])
    + r"""
    mov &fft_buf, r4       ; DC bin
    mov r4, &P2OUT
    pop r11
    pop r10
"""
)

DATA = r"""
.data 0x0400
fft_buf:
    .space 8
"""
