"""MiniRTOS source generation (Section 7.3's FreeRTOS stand-in).

The system schedules two computational tasks round-robin:

* ``div_task`` -- trusted: a constant-time (branchless) restoring divider
  serving the untainted ports P3 (in) / P4 (out);
* ``bs_task`` -- untrusted: the binSearch kernel serving the tainted
  ports P1 (in) / P2 (out), including its tainted-index probe counters.

The scheduler lives at address 0 -- which is also the reset vector, so a
watchdog-invoked power-on reset "performs scheduling as usual", exactly
the paper's FreeRTOS modification.  The round-robin index lives in kernel
RAM and survives the reset (footnote 5: POR does not clear memory).

The generated source uses the toolflow's ``call``/``ret`` convention for
the untrusted task, so :func:`repro.transform.secure_compile` can apply
the watchdog bounding and store masking automatically.
"""

from __future__ import annotations

KERNEL_STACK = 0x0F80  # trusted kernel/div stack (untainted RAM)
TASK_STACK = 0x07FE  # untrusted task stack (top of tainted partition)
RTOS_CUR = 0x0200  # scheduler round-robin index (kernel RAM)


def rtos_source(rounds_hint: str = "") -> str:
    """The (unprotected) MiniRTOS system binary source."""
    return f"""\
; MiniRTOS -- round-robin scheduler with a trusted and an untrusted task.
{rounds_hint}
.task rtos trusted
scheduler:
    mov #0x{KERNEL_STACK:04X}, sp
    ; round-robin: advance the task index (survives watchdog resets)
    mov &rtos_cur, r4
    inc r4
    and #1, r4
    mov r4, &rtos_cur
    tst r4
    jnz sched_untrusted
    call #div_task
    jmp scheduler
sched_untrusted:
    mov #0x{TASK_STACK:04X}, sp   ; the untrusted task gets its own stack
    call #bs_task
    jmp scheduler

.task div_task trusted
div_task:
    ; constant-time restoring division over a batch of untainted reads
    push r10
    push r11
    mov #8, r11            ; batch of eight divisions per activation
div_batch:
    mov &P3IN, r4          ; dividend
    mov &P3IN, r5          ; divisor
    bis #1, r5
    clr r6                 ; quotient
    clr r7                 ; remainder
    mov #16, r10
div_step:
    rla r6
    rla r7
    rla r4
    adc r7
    ; branchless conditional subtract: fits = (remainder >= divisor)
    cmp r5, r7             ; C = no-borrow = fits
    clr r8
    adc r8                 ; r8 = fits (0/1)
    bis r8, r6             ; quotient bit
    clr r9
    sub r8, r9             ; r9 = fits ? 0xFFFF : 0
    mov r5, r12
    and r9, r12            ; divisor if fits else 0
    sub r12, r7            ; conditional restore-free subtract
    dec r10
    jnz div_step
    mov r6, &P4OUT         ; trusted result on the untainted port
    dec r11
    jnz div_batch
    pop r11
    pop r10
    ret

.task bs_task untrusted
bs_task:
    push r10
    push r11
    mov &P1IN, r12         ; key (tainted)
    clr r4                 ; lo
    mov #15, r5            ; hi
    mov #0xFFFF, r6
    mov #4, r10
rbs_loop:
    mov r4, r7
    add r5, r7
    rra r7                 ; mid
    mov r7, r8
    add #rbs_table, r8
    mov @r8, r9
    add #1, rbs_hits(r7)   ; probe counter (tainted index)
    cmp r12, r9
    jz rbs_found
    jl rbs_right
    mov r7, r5
    dec r5
    jmp rbs_next
rbs_right:
    mov r7, r4
    inc r4
    jmp rbs_next
rbs_found:
    mov r7, r6
rbs_next:
    dec r10
    jnz rbs_loop
    mov r6, &P2OUT         ; untrusted result on the tainted port
    pop r11
    pop r10
    ret

.data 0x{RTOS_CUR:04X}
rtos_cur:
    .word 1                ; initialised .bss: first round runs div_task

.data 0x0400
rbs_table:
    .word 2, 5, 7, 11, 19, 23, 31, 40, 51, 64, 79, 96, 115, 136, 159, 184
rbs_hits:
    .space 16
"""


def rtos_completion_stop(run) -> bool:
    """Measurement stop: both tasks have produced a result (Section 7.3:
    'runtime is measured from when the first task is scheduled to when
    both tasks have completed')."""
    return run.writes_to("P2OUT") >= 1 and run.writes_to("P4OUT") >= 1
