"""MiniRTOS: the Section 7.3 system-level use case substrate.

A tiny round-robin scheduler in LP430 assembly standing in for the
paper's FreeRTOS port: trusted kernel code schedules a trusted task
(``div``) and an untrusted one (``binSearch``), with the reset vector
(address 0) doubling as the scheduler entry so the watchdog's power-on
reset re-enters scheduling -- "on a watchdog-invoked reset, scheduling is
performed as usual".
"""

from repro.rtos.scheduler import (
    rtos_source,
    rtos_completion_stop,
)

__all__ = ["rtos_source", "rtos_completion_stop"]
