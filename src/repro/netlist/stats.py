"""Netlist statistics -- the synthesis-report view of a design."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.netlist.cells import CELL_LIBRARY
from repro.netlist.levelize import levelize
from repro.netlist.netlist import Netlist


@dataclass
class NetlistStats:
    """Summary numbers for a gate-level design."""

    name: str
    num_nets: int
    num_gates: int
    num_dffs: int
    logic_depth: int
    area: float
    cells: Dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            f"netlist {self.name}:",
            f"  nets        {self.num_nets}",
            f"  gates       {self.num_gates}",
            f"  flip-flops  {self.num_dffs}",
            f"  logic depth {self.logic_depth}",
            f"  area (NAND2-eq) {self.area:.1f}",
            "  cells:",
        ]
        for cell_type in sorted(self.cells):
            lines.append(f"    {cell_type:<6} {self.cells[cell_type]}")
        return "\n".join(lines)


def netlist_stats(netlist: Netlist) -> NetlistStats:
    cells = Counter(gate.cell_type for gate in netlist.gates)
    area = sum(
        CELL_LIBRARY[cell].area * count for cell, count in cells.items()
    )
    area += CELL_LIBRARY["DFF"].area * len(netlist.dffs)
    levels = levelize(netlist)
    return NetlistStats(
        name=netlist.name,
        num_nets=netlist.num_nets,
        num_gates=len(netlist.gates),
        num_dffs=len(netlist.dffs),
        logic_depth=max(0, len(levels) - 1),
        area=area,
        cells=dict(cells),
    )
