"""Structural-Verilog writer and parser.

The paper's tool consumes the netlist a synthesis flow emits.  To keep that
interface honest, :func:`write_verilog` serialises a :class:`Netlist` to a
small structural-Verilog subset and :func:`parse_verilog` reads the same
subset back; the round trip is exact (tested property-style on the real CPU
netlist).

Subset conventions:

* One module; ports declared in the header as vectors (``input [15:0] irq``).
* Every internal net is declared with a ``wire`` statement.
* Instances use **positional** connections with the output pin first::

      NAND2 g42 (n17, n3, n4);
      DFF   pc_0 (n9, n21);      // Q, D
      TIE1  t1 (n2);

* Identifiers that are not plain Verilog identifiers are escaped with the
  standard ``\\name `` syntax (backslash, name, mandatory trailing space).
"""

from __future__ import annotations

import re
from typing import Dict, List, TextIO, Tuple

from repro.netlist.cells import CELL_LIBRARY
from repro.netlist.netlist import Netlist, NetlistError

_PLAIN_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _escape(name: str) -> str:
    if _PLAIN_IDENT.match(name):
        return name
    return "\\" + name + " "


def write_verilog(netlist: Netlist, stream: TextIO) -> None:
    """Serialise *netlist* as structural Verilog."""
    port_decls = []
    for port in netlist.inputs:
        port_decls.append(
            f"input [{port.width - 1}:0] {_escape(port.name)}"
        )
    for port in netlist.outputs:
        port_decls.append(
            f"output [{port.width - 1}:0] {_escape(port.name)}"
        )
    stream.write(f"module {_escape(netlist.name)} (\n")
    stream.write(",\n".join("  " + decl for decl in port_decls))
    stream.write("\n);\n")

    # Net id -> textual reference.  Port bits are referenced through their
    # port vector; everything else gets a declared wire.  An output port
    # bit that aliases an already-referenced net (e.g. a debug port wired
    # straight onto a register also feeding another port) is driven by an
    # explicit BUF, since Verilog ports cannot share a net by name.
    reference: Dict[int, str] = {}
    aliases: List[Tuple[str, str]] = []  # (port bit ref, source ref)
    for port in netlist.inputs:
        for index, net in enumerate(port.nets):
            reference.setdefault(net, f"{_escape(port.name)}[{index}]")
    for port in netlist.outputs:
        for index, net in enumerate(port.nets):
            bit_ref = f"{_escape(port.name)}[{index}]"
            if net in reference:
                aliases.append((bit_ref, reference[net]))
            else:
                reference[net] = bit_ref
    wires: List[Tuple[int, str]] = []
    for net_id in range(netlist.num_nets):
        if net_id not in reference:
            text = _escape(netlist.net_names[net_id])
            reference[net_id] = text
            wires.append((net_id, text))
    for _, text in wires:
        stream.write(f"  wire {text};\n")

    for index, gate in enumerate(netlist.gates):
        pins = ", ".join(
            [reference[gate.output]] + [reference[n] for n in gate.inputs]
        )
        name = _escape(gate.name or f"g{index}")
        stream.write(f"  {gate.cell_type} {name} ({pins});\n")
    for index, dff in enumerate(netlist.dffs):
        name = _escape(dff.name or f"dff{index}")
        stream.write(
            f"  DFF {name} ({reference[dff.q]}, {reference[dff.d]});\n"
        )
    for index, (bit_ref, source_ref) in enumerate(aliases):
        stream.write(f"  BUF alias_{index} ({bit_ref}, {source_ref});\n")
    stream.write("endmodule\n")


_TOKEN = re.compile(
    r"""
    \\(?P<escaped>[^\s]+)\s          # escaped identifier
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<number>\d+)
    | (?P<punct>[\[\]():;,])
    """,
    re.VERBOSE,
)


class VerilogParseError(NetlistError):
    """Raised on malformed input to :func:`parse_verilog`."""


class _Tokens:
    def __init__(self, text: str):
        text = re.sub(r"//[^\n]*", "", text)
        text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
        self.tokens: List[Tuple[str, str]] = []
        position = 0
        while position < len(text):
            if text[position].isspace():
                position += 1
                continue
            match = _TOKEN.match(text, position)
            if not match:
                raise VerilogParseError(
                    f"unexpected character {text[position]!r} at {position}"
                )
            position = match.end()
            kind = match.lastgroup
            value = match.group(kind)
            self.tokens.append((kind, value))
        self.index = 0

    def peek(self) -> Tuple[str, str]:
        if self.index >= len(self.tokens):
            return ("eof", "")
        return self.tokens[self.index]

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        self.index += 1
        return token

    def expect(self, kind: str, value: str = None) -> str:
        got_kind, got_value = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            raise VerilogParseError(
                f"expected {value or kind}, got {got_value!r}"
            )
        return got_value

    def expect_ident(self) -> str:
        kind, value = self.next()
        if kind not in ("ident", "escaped"):
            raise VerilogParseError(f"expected identifier, got {value!r}")
        return value


def parse_verilog(text: str) -> Netlist:
    """Parse the structural subset produced by :func:`write_verilog`."""
    tokens = _Tokens(text)
    tokens.expect("ident", "module")
    netlist = Netlist(name=tokens.expect_ident())
    tokens.expect("punct", "(")

    # name -> (direction, width), in declaration order
    ports: List[Tuple[str, str, int]] = []
    while True:
        kind, value = tokens.peek()
        if kind == "punct" and value == ")":
            tokens.next()
            break
        if kind == "punct" and value == ",":
            tokens.next()
            continue
        direction = tokens.expect_ident()
        if direction not in ("input", "output"):
            raise VerilogParseError(f"bad port direction {direction!r}")
        tokens.expect("punct", "[")
        high = int(tokens.expect("number"))
        tokens.expect("punct", ":")
        low = int(tokens.expect("number"))
        tokens.expect("punct", "]")
        name = tokens.expect_ident()
        ports.append((name, direction, high - low + 1))
    tokens.expect("punct", ";")

    net_ids: Dict[str, int] = {}

    def net_for(text_ref: str) -> int:
        if text_ref not in net_ids:
            net_ids[text_ref] = netlist.add_net(text_ref)
        return net_ids[text_ref]

    for name, direction, width in ports:
        nets = [net_for(f"{name}[{i}]") for i in range(width)]
        if direction == "input":
            netlist.add_input(name, nets)
        else:
            netlist.add_output(name, nets)

    def parse_ref() -> int:
        base = tokens.expect_ident()
        kind, value = tokens.peek()
        if kind == "punct" and value == "[":
            tokens.next()
            index = tokens.expect("number")
            tokens.expect("punct", "]")
            return net_for(f"{base}[{index}]")
        return net_for(base)

    while True:
        kind, value = tokens.next()
        if kind == "eof":
            raise VerilogParseError("missing endmodule")
        if kind in ("ident", "escaped") and value == "endmodule":
            break
        if value == "wire":
            parse_ref()
            tokens.expect("punct", ";")
            continue
        cell_type = value
        if cell_type not in CELL_LIBRARY:
            raise VerilogParseError(f"unknown cell {cell_type!r}")
        instance = tokens.expect_ident()
        tokens.expect("punct", "(")
        pins: List[int] = []
        while True:
            kind, value = tokens.peek()
            if kind == "punct" and value == ")":
                tokens.next()
                break
            if kind == "punct" and value == ",":
                tokens.next()
                continue
            pins.append(parse_ref())
        tokens.expect("punct", ";")
        if cell_type == "DFF":
            if len(pins) != 2:
                raise VerilogParseError("DFF needs exactly (Q, D)")
            netlist.add_dff(q=pins[0], d=pins[1], name=instance)
        else:
            netlist.add_gate(cell_type, pins[1:], pins[0], instance)

    netlist.validate()
    return netlist
