"""Topological levelisation of a netlist's combinational core.

The compiled simulator evaluates gates level by level: a gate's level is one
more than the maximum level of its input drivers, with input ports, DFF
outputs and tie cells at level 0.  A gate that cannot be levelised sits on a
combinational cycle, which is a design error this module diagnoses.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.netlist.cells import CONSTANT_CELLS
from repro.netlist.netlist import Gate, Netlist


class CombinationalCycleError(Exception):
    """Raised when the netlist contains a combinational feedback loop."""

    def __init__(self, gates: List[Gate]):
        self.gates = gates
        names = ", ".join(g.name or g.cell_type for g in gates[:8])
        more = "..." if len(gates) > 8 else ""
        super().__init__(
            f"combinational cycle through {len(gates)} gates: {names}{more}"
        )


def levelize(netlist: Netlist) -> List[List[Gate]]:
    """Return gates grouped into evaluation levels (level 1 first).

    Tie cells are placed in level 0's group (index 0) so the simulator can
    initialise constants before anything else.
    """
    level_of_net: Dict[int, int] = {}
    for port in netlist.inputs:
        for net in port.nets:
            level_of_net[net] = 0
    for dff in netlist.dffs:
        level_of_net[dff.q] = 0

    constants: List[Gate] = []
    pending: List[Gate] = []
    consumers: Dict[int, List[Gate]] = defaultdict(list)
    missing_inputs: Dict[int, int] = {}

    for index, gate in enumerate(netlist.gates):
        if gate.cell_type in CONSTANT_CELLS:
            constants.append(gate)
            level_of_net[gate.output] = 0
            continue
        pending.append(gate)
        missing_inputs[id(gate)] = 0

    # Count unresolved inputs, then Kahn's algorithm.
    ready: deque = deque()
    for gate in pending:
        unresolved = sum(1 for net in gate.inputs if net not in level_of_net)
        missing_inputs[id(gate)] = unresolved
        for net in gate.inputs:
            if net not in level_of_net:
                consumers[net].append(gate)
        if unresolved == 0:
            ready.append(gate)

    levels: Dict[int, List[Gate]] = defaultdict(list)
    placed = 0
    while ready:
        gate = ready.popleft()
        level = 1 + max(
            (level_of_net[net] for net in gate.inputs), default=0
        )
        levels[level].append(gate)
        placed += 1
        if gate.output not in level_of_net:
            level_of_net[gate.output] = level
            for consumer in consumers[gate.output]:
                missing_inputs[id(consumer)] -= 1
                if missing_inputs[id(consumer)] == 0:
                    ready.append(consumer)

    if placed != len(pending):
        stuck = [g for g in pending if missing_inputs[id(g)] > 0]
        raise CombinationalCycleError(stuck)

    ordered = [constants]
    for level in sorted(levels):
        ordered.append(levels[level])
    return ordered


class FanoutIndex:
    """Net -> consumer lookup in CSR form, for event-driven evaluation.

    ``indptr`` has ``num_nets + 1`` entries; ``consumers[indptr[n]:
    indptr[n + 1]]`` are the ids (caller-chosen, e.g. global gate
    numbers in evaluation order) of every consumer reading net *n*.  A
    gate reading the same net through two input pins appears twice --
    harmless for dirty marking (setting a flag twice) and cheaper than
    deduplicating at build time.
    """

    __slots__ = ("indptr", "consumers")

    def __init__(self, indptr: np.ndarray, consumers: np.ndarray):
        self.indptr = indptr
        self.consumers = consumers

    def gather(self, nets: np.ndarray) -> np.ndarray:
        """All consumer ids of the given nets (concatenated, may repeat).

        Vectorised multi-row CSR gather: cost is proportional to the
        total fanout of *nets*, not to the circuit size.
        """
        starts = self.indptr[nets]
        counts = self.indptr[nets + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_CONSUMERS
        before = np.cumsum(counts) - counts
        flat = (
            np.repeat(starts - before, counts)
            + np.arange(total, dtype=np.int64)
        )
        return self.consumers[flat]


_EMPTY_CONSUMERS = np.empty(0, dtype=np.int64)


def build_fanout_index(
    num_nets: int,
    edges: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> FanoutIndex:
    """Build a :class:`FanoutIndex` from (net column, consumer id) pairs.

    *edges* is a sequence of equal-length array pairs ``(nets, ids)``:
    consumer ``ids[k]`` reads net ``nets[k]``.  The compiled simulator
    feeds one pair per (level, cell-type, pin position) input column
    with global gate numbers as ids.
    """
    if edges:
        all_nets = np.concatenate([nets for nets, _ in edges])
        all_ids = np.concatenate([ids for _, ids in edges])
    else:
        all_nets = np.empty(0, dtype=np.int64)
        all_ids = np.empty(0, dtype=np.int64)
    counts = np.bincount(all_nets, minlength=num_nets)
    indptr = np.zeros(num_nets + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(all_nets, kind="stable")
    return FanoutIndex(indptr, all_ids[order].astype(np.int64))
