"""Gate-level netlist intermediate representation.

The paper's toolflow consumes "the processor's gate-level netlist".  This
package provides that substrate:

* :mod:`repro.netlist.cells`    -- the standard-cell library (combinational
  gates from :mod:`repro.logic.glift` plus ``DFF`` and tie cells).
* :mod:`repro.netlist.netlist`  -- the flat netlist graph (nets, gates,
  flip-flops, ports) with structural validation.
* :mod:`repro.netlist.levelize` -- topological levelisation used by the
  compiled simulator; detects combinational cycles.
* :mod:`repro.netlist.builder`  -- a small word-level construction DSL (a
  "mini-HDL") used to build the LP430 processor out of library gates.
* :mod:`repro.netlist.verilog`  -- structural-Verilog writer and parser for
  the same subset, so netlists can round-trip through text like a synthesis
  flow's output would.
* :mod:`repro.netlist.stats`    -- cell counts, unit-area and depth reports.
"""

from repro.netlist.cells import CELL_LIBRARY, CellSpec
from repro.netlist.netlist import DFF, Gate, Netlist, NetlistError
from repro.netlist.builder import CircuitBuilder, Sig
from repro.netlist.levelize import CombinationalCycleError, levelize
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.netlist.stats import netlist_stats

__all__ = [
    "CELL_LIBRARY",
    "CellSpec",
    "Netlist",
    "NetlistError",
    "Gate",
    "DFF",
    "CircuitBuilder",
    "Sig",
    "levelize",
    "CombinationalCycleError",
    "parse_verilog",
    "write_verilog",
    "netlist_stats",
]
