"""The standard-cell library.

Every combinational cell's logical function lives in
:data:`repro.logic.glift.GATE_FUNCTIONS`; this module wraps them with
metadata (arity, unit area) and adds the non-combinational cells:

* ``DFF``  -- positive-edge D flip-flop (the only sequential primitive; the
  builder synthesises enables and resets from muxes/gates so the GLIFT
  semantics of those paths come from ordinary gate rules).
* ``TIE0`` / ``TIE1`` -- constant drivers.

Unit areas are rough NAND2-equivalents, used only for reporting netlist
statistics comparable to a synthesis report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.logic.glift import GATE_FUNCTIONS


@dataclass(frozen=True)
class CellSpec:
    """Metadata for one library cell."""

    name: str
    arity: int
    area: float
    sequential: bool = False


def _arity(cell_type: str) -> int:
    if cell_type in ("BUF", "NOT"):
        return 1
    if cell_type == "MUX2":
        return 3
    return int(cell_type[-1])


_AREAS = {
    "BUF": 0.75,
    "NOT": 0.5,
    "AND2": 1.25,
    "AND3": 1.75,
    "AND4": 2.25,
    "OR2": 1.25,
    "OR3": 1.75,
    "OR4": 2.25,
    "NAND2": 1.0,
    "NAND3": 1.5,
    "NOR2": 1.0,
    "NOR3": 1.5,
    "XOR2": 2.25,
    "XOR3": 4.0,
    "XNOR2": 2.25,
    "MUX2": 2.25,
}

CELL_LIBRARY: Dict[str, CellSpec] = {
    name: CellSpec(name=name, arity=_arity(name), area=_AREAS[name])
    for name in GATE_FUNCTIONS
}
CELL_LIBRARY["TIE0"] = CellSpec(name="TIE0", arity=0, area=0.25)
CELL_LIBRARY["TIE1"] = CellSpec(name="TIE1", arity=0, area=0.25)
CELL_LIBRARY["DFF"] = CellSpec(name="DFF", arity=1, area=4.5, sequential=True)

COMBINATIONAL_CELLS = frozenset(GATE_FUNCTIONS)
CONSTANT_CELLS = frozenset({"TIE0", "TIE1"})
