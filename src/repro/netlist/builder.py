"""A word-level construction DSL for gate-level netlists ("mini-HDL").

The gate-level LP430 processor (:mod:`repro.cpu`) is assembled with this
builder, which plays the role the synthesis flow played for the paper's
openMSP430 netlist: every word-level operator below is *elaborated into
library gates* at call time, so the result is a plain :class:`Netlist` of
NAND/NOR/XOR/MUX/DFF cells with no behavioural shortcuts for the analysis to
miss.

Conventions:

* A :class:`Sig` is an LSB-first tuple of net ids; width = ``len(sig)``.
* Registers are created with :meth:`CircuitBuilder.reg` (allocating their Q
  nets so they can be used in feedback) and later given their next-state
  logic with :meth:`CircuitBuilder.drive`.  Enables and resets are
  synthesised from ordinary muxes and gates, so their GLIFT behaviour --
  including the paper's "tainted reset does not de-taint" rule (Figure 7) --
  emerges from the per-gate semantics rather than special cases.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.netlist.netlist import Netlist, NetlistError


class Sig(tuple):
    """An LSB-first tuple of net ids representing a word-level signal."""

    @property
    def width(self) -> int:
        return len(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Sig({len(self)} bits)"


class Reg:
    """A register created by :meth:`CircuitBuilder.reg`, awaiting its driver."""

    def __init__(self, name: str, q: Sig):
        self.name = name
        self.q = q
        self.driven = False

    @property
    def width(self) -> int:
        return self.q.width


class CircuitBuilder:
    """Builds a :class:`Netlist` from word-level operations."""

    def __init__(self, name: str = "top"):
        self.netlist = Netlist(name=name)
        self._scope: List[str] = []
        self._tie0: Optional[int] = None
        self._tie1: Optional[int] = None
        self._registers: List[Reg] = []
        self._counter: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Prefix nets created inside the block with ``name/``."""
        self._scope.append(name)
        try:
            yield
        finally:
            self._scope.pop()

    def _qualified(self, name: str) -> str:
        if self._scope:
            return "/".join(self._scope) + "/" + name
        return name

    def _fresh(self, stem: str) -> str:
        index = self._counter.get(stem, 0)
        self._counter[stem] = index + 1
        return self._qualified(f"{stem}${index}")

    # ------------------------------------------------------------------
    # Ports, constants, registers
    # ------------------------------------------------------------------
    def input(self, name: str, width: int) -> Sig:
        nets = Sig(
            self.netlist.add_net(f"{name}[{i}]") for i in range(width)
        )
        self.netlist.add_input(name, nets)
        return nets

    def output(self, name: str, sig: Sig) -> None:
        self.netlist.add_output(name, sig)

    def bit0(self) -> int:
        if self._tie0 is None:
            net = self.netlist.add_net("tie0")
            self.netlist.add_gate("TIE0", (), net, "tie0")
            self._tie0 = net
        return self._tie0

    def bit1(self) -> int:
        if self._tie1 is None:
            net = self.netlist.add_net("tie1")
            self.netlist.add_gate("TIE1", (), net, "tie1")
            self._tie1 = net
        return self._tie1

    def const(self, value: int, width: int) -> Sig:
        return Sig(
            self.bit1() if value >> i & 1 else self.bit0()
            for i in range(width)
        )

    def reg(self, name: str, width: int) -> Reg:
        qualified = self._qualified(name)
        q = Sig(
            self.netlist.add_net(f"{qualified}[{i}]") for i in range(width)
        )
        register = Reg(qualified, q)
        self._registers.append(register)
        return register

    def drive(
        self,
        register: Reg,
        d: Sig,
        en: Optional[int] = None,
        rst: Optional[int] = None,
    ) -> Sig:
        """Define a register's next state: ``q' = rst ? 0 : (en ? d : q)``.

        The reset is synthesised as ``d_eff = d_or_hold AND NOT rst`` so a
        *tainted* reset clears the value but leaves the taint set -- the
        Figure 7 semantics -- purely from gate-level GLIFT rules.
        """
        if register.driven:
            raise NetlistError(f"register {register.name} driven twice")
        if d.width != register.width:
            raise NetlistError(
                f"register {register.name}: width mismatch "
                f"{d.width} != {register.width}"
            )
        register.driven = True
        effective = d
        if en is not None:
            effective = self.mux(en, register.q, effective)
        if rst is not None:
            rst_n = self.not_bit(rst)
            effective = self.mask(effective, rst_n)
        for index in range(register.width):
            self.netlist.add_dff(
                q=register.q[index],
                d=effective[index],
                name=f"{register.name}[{index}]",
            )
        return effective

    # ------------------------------------------------------------------
    # Primitive gate emission
    # ------------------------------------------------------------------
    def _emit(self, cell_type: str, inputs: Sequence[int]) -> int:
        out = self.netlist.add_net(self._fresh(cell_type.lower()))
        self.netlist.add_gate(cell_type, inputs, out, self._fresh("g"))
        return out

    def not_bit(self, a: int) -> int:
        return self._emit("NOT", (a,))

    def and_bit(self, *bits: int) -> int:
        return self._reduce_bits("AND", bits)

    def or_bit(self, *bits: int) -> int:
        return self._reduce_bits("OR", bits)

    def nor_bit(self, *bits: int) -> int:
        return self.not_bit(self.or_bit(*bits))

    def nand_bit(self, *bits: int) -> int:
        return self.not_bit(self.and_bit(*bits))

    def xor_bit(self, a: int, b: int) -> int:
        return self._emit("XOR2", (a, b))

    def xnor_bit(self, a: int, b: int) -> int:
        return self._emit("XNOR2", (a, b))

    def mux_bit(self, sel: int, a: int, b: int) -> int:
        """``a`` when ``sel == 0``, ``b`` when ``sel == 1``."""
        return self._emit("MUX2", (sel, a, b))

    def _reduce_bits(self, kind: str, bits: Sequence[int]) -> int:
        if not bits:
            raise NetlistError(f"{kind} reduction over no bits")
        work = list(bits)
        while len(work) > 1:
            grouped: List[int] = []
            index = 0
            while index < len(work):
                chunk = work[index : index + (4 if kind == "AND" else 4)]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                else:
                    grouped.append(self._emit(f"{kind}{len(chunk)}", chunk))
                index += len(chunk)
            work = grouped
        return work[0]

    # ------------------------------------------------------------------
    # Word-level bitwise operators
    # ------------------------------------------------------------------
    @staticmethod
    def _check_widths(a: Sig, b: Sig) -> None:
        if a.width != b.width:
            raise NetlistError(f"width mismatch {a.width} != {b.width}")

    def not_(self, a: Sig) -> Sig:
        return Sig(self.not_bit(bit) for bit in a)

    def and_(self, a: Sig, b: Sig) -> Sig:
        self._check_widths(a, b)
        return Sig(self._emit("AND2", pair) for pair in zip(a, b))

    def or_(self, a: Sig, b: Sig) -> Sig:
        self._check_widths(a, b)
        return Sig(self._emit("OR2", pair) for pair in zip(a, b))

    def xor_(self, a: Sig, b: Sig) -> Sig:
        self._check_widths(a, b)
        return Sig(self._emit("XOR2", pair) for pair in zip(a, b))

    def mask(self, a: Sig, enable_bit: int) -> Sig:
        """AND every bit of *a* with *enable_bit*."""
        return Sig(self._emit("AND2", (bit, enable_bit)) for bit in a)

    def mux(self, sel: int, a: Sig, b: Sig) -> Sig:
        """Word mux: *a* when ``sel == 0``, *b* when ``sel == 1``."""
        self._check_widths(a, b)
        return Sig(
            self._emit("MUX2", (sel, bit_a, bit_b))
            for bit_a, bit_b in zip(a, b)
        )

    def muxn(self, sel: Sig, options: Sequence[Sig]) -> Sig:
        """Mux tree over ``2**sel.width`` options (LSB-first select)."""
        if len(options) != 1 << sel.width:
            raise NetlistError(
                f"muxn: {len(options)} options for {sel.width} select bits"
            )
        layer = list(options)
        for select_bit in sel:
            layer = [
                self.mux(select_bit, layer[i], layer[i + 1])
                for i in range(0, len(layer), 2)
            ]
        return layer[0]

    def onehot_mux(
        self, selects: Sequence[int], options: Sequence[Sig]
    ) -> Sig:
        """OR of AND-masked options; selects are assumed one-hot."""
        if len(selects) != len(options):
            raise NetlistError("onehot_mux: select/option count mismatch")
        masked = [
            self.mask(option, select)
            for select, option in zip(selects, options)
        ]
        out = masked[0]
        for term in masked[1:]:
            out = self.or_(out, term)
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def add(
        self, a: Sig, b: Sig, cin: Optional[int] = None
    ) -> Tuple[Sig, int]:
        """Ripple-carry addition; returns ``(sum, carry_out)``."""
        self._check_widths(a, b)
        carry = cin if cin is not None else self.bit0()
        out_bits: List[int] = []
        for bit_a, bit_b in zip(a, b):
            axb = self.xor_bit(bit_a, bit_b)
            out_bits.append(self.xor_bit(axb, carry))
            carry = self.or_bit(
                self.and_bit(bit_a, bit_b), self.and_bit(axb, carry)
            )
        return Sig(out_bits), carry

    def addsub(
        self, a: Sig, b: Sig, subtract: int, cin: Optional[int] = None
    ) -> Tuple[Sig, int, int]:
        """``a + (b ^ subtract) + cin`` returning ``(sum, cout, overflow)``.

        With ``subtract = 1`` and ``cin = 1`` this computes ``a - b`` with
        MSP430 carry semantics (carry = not borrow).  The default carry-in
        is ``subtract`` itself, which yields add/sub directly.
        """
        self._check_widths(a, b)
        b_eff = Sig(self.xor_bit(bit, subtract) for bit in b)
        carry = cin if cin is not None else subtract
        out_bits: List[int] = []
        carry_into_msb = carry
        for index, (bit_a, bit_b) in enumerate(zip(a, b_eff)):
            if index == a.width - 1:
                carry_into_msb = carry
            axb = self.xor_bit(bit_a, bit_b)
            out_bits.append(self.xor_bit(axb, carry))
            carry = self.or_bit(
                self.and_bit(bit_a, bit_b), self.and_bit(axb, carry)
            )
        overflow = self.xor_bit(carry_into_msb, carry)
        return Sig(out_bits), carry, overflow

    def inc(self, a: Sig) -> Sig:
        """``a + 1`` with a lean half-adder chain (used for PC increment)."""
        carry = self.bit1()
        out_bits: List[int] = []
        for bit in a:
            out_bits.append(self.xor_bit(bit, carry))
            carry = self.and_bit(bit, carry)
        return Sig(out_bits)

    # ------------------------------------------------------------------
    # Reductions and comparisons
    # ------------------------------------------------------------------
    def or_reduce(self, a: Sig) -> int:
        return self.or_bit(*a)

    def and_reduce(self, a: Sig) -> int:
        return self.and_bit(*a)

    def is_zero(self, a: Sig) -> int:
        return self.not_bit(self.or_bit(*a))

    def eq(self, a: Sig, b: Sig) -> int:
        self._check_widths(a, b)
        return self.and_bit(
            *(self.xnor_bit(x, y) for x, y in zip(a, b))
        )

    def eq_const(self, a: Sig, value: int) -> int:
        bits = [
            bit if value >> i & 1 else self.not_bit(bit)
            for i, bit in enumerate(a)
        ]
        return self.and_bit(*bits)

    def decode(self, sel: Sig) -> List[int]:
        """Full decoder: ``2**sel.width`` one-hot outputs."""
        return [
            self.eq_const(sel, value) for value in range(1 << sel.width)
        ]

    # ------------------------------------------------------------------
    # Wiring-only helpers (no gates)
    # ------------------------------------------------------------------
    @staticmethod
    def slice_(a: Sig, low: int, width: int) -> Sig:
        return Sig(a[low : low + width])

    @staticmethod
    def cat(*sigs: Sig) -> Sig:
        out: List[int] = []
        for sig in sigs:
            out.extend(sig)
        return Sig(out)

    @staticmethod
    def repeat(bit: int, count: int) -> Sig:
        return Sig(bit for _ in range(count))

    def zext(self, a: Sig, width: int) -> Sig:
        if a.width > width:
            raise NetlistError("zext to narrower width")
        return Sig(list(a) + [self.bit0()] * (width - a.width))

    def sext(self, a: Sig, width: int) -> Sig:
        if a.width > width:
            raise NetlistError("sext to narrower width")
        return Sig(list(a) + [a[-1]] * (width - a.width))

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self) -> Netlist:
        for register in self._registers:
            if not register.driven:
                raise NetlistError(f"register {register.name} never driven")
        self.netlist.validate()
        return self.netlist
