"""Flat gate-level netlist graph.

A :class:`Netlist` is a set of integer-identified *nets* connected by
*gates* (combinational cells), *flip-flops* and *ports*.  Every net must
have exactly one driver: a gate output, a DFF ``Q`` pin, an input port, or a
tie cell.  The structure is deliberately simple -- the same shape a
structural-Verilog netlist out of a synthesis tool has -- because the
paper's analysis operates on exactly that artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.netlist.cells import CELL_LIBRARY, CONSTANT_CELLS


class NetlistError(Exception):
    """Raised for structurally invalid netlists."""


@dataclass(frozen=True)
class Gate:
    """One combinational cell instance."""

    cell_type: str
    inputs: Tuple[int, ...]
    output: int
    name: str = ""


@dataclass(frozen=True)
class DFF:
    """One flip-flop: at each clock edge ``q`` takes the value of ``d``."""

    q: int
    d: int
    name: str = ""


@dataclass
class Port:
    """A named, multi-bit port (LSB-first net list)."""

    name: str
    nets: Tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.nets)


@dataclass
class Netlist:
    """A flat gate-level design."""

    name: str = "top"
    net_names: List[str] = field(default_factory=list)
    gates: List[Gate] = field(default_factory=list)
    dffs: List[DFF] = field(default_factory=list)
    inputs: List[Port] = field(default_factory=list)
    outputs: List[Port] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_net(self, name: Optional[str] = None) -> int:
        net_id = len(self.net_names)
        self.net_names.append(name if name is not None else f"n{net_id}")
        return net_id

    def add_nets(self, count: int, prefix: str = "n") -> List[int]:
        return [self.add_net(f"{prefix}{i}") for i in range(count)]

    def add_gate(
        self,
        cell_type: str,
        inputs: Sequence[int],
        output: int,
        name: str = "",
    ) -> Gate:
        spec = CELL_LIBRARY.get(cell_type)
        if spec is None:
            raise NetlistError(f"unknown cell type {cell_type!r}")
        if spec.sequential:
            raise NetlistError("use add_dff for sequential cells")
        if len(inputs) != spec.arity:
            raise NetlistError(
                f"{cell_type} expects {spec.arity} inputs, got {len(inputs)}"
            )
        gate = Gate(cell_type, tuple(inputs), output, name)
        self.gates.append(gate)
        return gate

    def add_dff(self, q: int, d: int, name: str = "") -> DFF:
        dff = DFF(q=q, d=d, name=name)
        self.dffs.append(dff)
        return dff

    def add_input(self, name: str, nets: Sequence[int]) -> Port:
        port = Port(name, tuple(nets))
        self.inputs.append(port)
        return port

    def add_output(self, name: str, nets: Sequence[int]) -> Port:
        port = Port(name, tuple(nets))
        self.outputs.append(port)
        return port

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    def input_port(self, name: str) -> Port:
        return self._find_port(self.inputs, name)

    def output_port(self, name: str) -> Port:
        return self._find_port(self.outputs, name)

    @staticmethod
    def _find_port(ports: Iterable[Port], name: str) -> Port:
        for port in ports:
            if port.name == name:
                return port
        raise KeyError(name)

    def drivers(self) -> Dict[int, str]:
        """Map each net to a description of its driver (for validation)."""
        driver: Dict[int, str] = {}

        def claim(net: int, description: str) -> None:
            if net in driver:
                raise NetlistError(
                    f"net {net} ({self.net_names[net]}) driven by both "
                    f"{driver[net]} and {description}"
                )
            driver[net] = description

        for port in self.inputs:
            for net in port.nets:
                claim(net, f"input {port.name}")
        for dff in self.dffs:
            claim(dff.q, f"dff {dff.name or dff.q}")
        for gate in self.gates:
            claim(gate.output, f"{gate.cell_type} {gate.name or gate.output}")
        return driver

    def validate(self) -> None:
        """Check structural sanity: single drivers, no floating nets."""
        driver = self.drivers()
        for gate in self.gates:
            for net in gate.inputs:
                if net not in driver:
                    raise NetlistError(
                        f"{gate.cell_type} {gate.name!r} input net "
                        f"{net} ({self.net_names[net]}) is undriven"
                    )
        for dff in self.dffs:
            if dff.d not in driver:
                raise NetlistError(
                    f"dff {dff.name!r} D input net {dff.d} is undriven"
                )
        for port in self.outputs:
            for net in port.nets:
                if net not in driver:
                    raise NetlistError(
                        f"output {port.name} net {net} is undriven"
                    )

    def constant_nets(self) -> Dict[int, int]:
        """Nets driven by tie cells, mapped to their constant value."""
        constants: Dict[int, int] = {}
        for gate in self.gates:
            if gate.cell_type in CONSTANT_CELLS:
                constants[gate.output] = 1 if gate.cell_type == "TIE1" else 0
        return constants

    def state_nets(self) -> List[int]:
        """All DFF outputs -- the processor's state elements."""
        return [dff.q for dff in self.dffs]
