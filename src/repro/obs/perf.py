"""Hot-path attribution for the compiled gate-level simulator.

The ROADMAP's dominant open item is making the simulator 1-2 orders of
magnitude faster (compiled per-rank kernels, event-driven evaluation of
quiescent cones).  Building either blind would be guesswork: the
aggregate ``cycles_per_second`` in ``BENCH_simulator_gate_level.json``
says nothing about *which* ranks or cell types burn the time, nor how
much of the circuit is quiescent and therefore skippable.

:class:`PerfAttribution` is the evidence layer.  Armed via
:func:`install_perf` (or the :func:`record_perf` context manager), the
evaluation loops in :mod:`repro.sim.compiled` switch to an instrumented
twin that accumulates

* **per-rank / per-cell-type evaluation time** -- every (level, cell
  type) group gets a ``perf_counter`` pair per pass, so the report can
  say "rank 7's XOR2 group is 14% of eval time";
* **pass and clock-edge totals** -- the difference between a pass's
  wall time and the sum of its group times is the interpreter's own
  dispatch overhead, reported separately instead of vanishing;
* **cone activity** -- on sampled full passes (every
  ``sample_every``-th), the recorder diffs the whole code array against
  the previous sample and folds the change mask into per-output-port
  fan-in cones: how often each cone's *boundary inputs* (flip-flop Qs,
  ports, constants) changed at all (activity), how often they did not
  (the quiescence map), and what fraction of the cone's internal nets
  toggled (toggle rate).  A cone that is quiescent 95% of the time is
  exactly what an event-driven backend can skip.

Everything is exported as one typed JSON document
(:meth:`PerfAttribution.to_document`, ``schema`` 2) which
``repro perf`` renders as a self-contained HTML treemap
(:mod:`repro.obs.perfview`).  The instrumentation is opt-in and benched:
``benchmarks/bench_perf_attribution.py`` holds the overhead under 15%.

Both evaluation engines feed the same recorder.  The dense engine's
slots carry seconds only -- its eval counts are reconstructed as
``gates x passes`` at report time.  The event engine (DESIGN.md section
13) registers **counted** slots (``[seconds, evals]``) because the
whole point of that engine is that most gates do *not* run: the report
shows the actual evaluations, and the ``gates x passes`` reconstruction
becomes the baseline against which ``skipped`` is derived.  Gates the
event engine skips are attributed neither time nor evals.

When a taint-provenance recorder is armed at the same time, provenance
wins (its recording evaluation path is the one running) and the
attribution recorder sees nothing; arm one at a time.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Document schema version for :meth:`PerfAttribution.to_document`.
#: Schema 2 adds ``engine``, per-cell ``skipped`` counts and the
#: top-level ``skipped_evals`` total (event-engine quiescence evidence).
PERF_SCHEMA = 2


class _ConeStats:
    """Sampled activity statistics for one output-port fan-in cone."""

    __slots__ = (
        "port", "members", "inputs", "samples", "active",
        "toggle_sum", "depth",
    )

    def __init__(self, port: str, members: np.ndarray, inputs: np.ndarray,
                 depth: int):
        self.port = port
        self.members = members    # nets produced inside the cone
        self.inputs = inputs      # boundary nets: DFF Qs, ports, consts
        self.depth = depth        # deepest rank the cone reaches
        self.samples = 0
        self.active = 0           # samples where any boundary input changed
        self.toggle_sum = 0.0     # sum of per-sample member-change fractions


class PerfAttribution:
    """Accumulating/sampling attribution recorder for the simulator.

    One instance per measured run.  The compiled circuit calls
    :meth:`ensure_bound` once, :meth:`group_slots` per evaluation plan,
    and the slot lists directly from its instrumented inner loop; the
    cone sampling happens in :meth:`sample` after full passes.
    """

    def __init__(self, sample_every: int = 16):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        #: id(levels) -> (slots, meta, kind, [passes], counted); the
        #: levels list itself is kept alive by the meta entry so ids
        #: cannot be recycled.
        self._plans: Dict[int, tuple] = {}
        #: which evaluation engine fed the recorder (from ensure_bound)
        self.engine: Optional[str] = None
        self._bound = None
        self._cones: List[_ConeStats] = []
        self._prev_codes: Optional[np.ndarray] = None
        self._full_passes = 0
        self._interface_passes = 0
        self._samples = 0
        self._changed_sum = 0.0
        self.clock_seconds = 0.0
        self.clock_edges = 0
        #: wall seconds per pass kind, including dispatch overhead
        self.pass_seconds: Dict[str, float] = {"full": 0.0, "interface": 0.0}

    # ------------------------------------------------------------------
    # Binding (cone discovery)
    # ------------------------------------------------------------------
    def ensure_bound(self, circuit) -> None:
        """Build the per-output-port fan-in cones once per circuit."""
        if self._bound is circuit:
            return
        self._bound = circuit
        self.engine = getattr(circuit, "engine", "dense")
        self._cones = []
        self._prev_codes = None
        netlist = circuit.netlist
        producers: Dict[int, object] = {}
        for gate in netlist.gates:
            producers[gate.output] = gate
        rank_of: Dict[int, int] = {}
        from repro.netlist.levelize import levelize

        for depth, level in enumerate(levelize(netlist)[1:]):
            for gate in level:
                rank_of[gate.output] = depth
        for port in netlist.outputs:
            members: List[int] = []
            boundary: List[int] = []
            seen = set()
            stack = list(port.nets)
            depth = 0
            while stack:
                net = stack.pop()
                if net in seen:
                    continue
                seen.add(net)
                gate = producers.get(net)
                if gate is None:
                    boundary.append(net)
                    continue
                members.append(net)
                depth = max(depth, rank_of.get(net, 0))
                stack.extend(gate.inputs)
            self._cones.append(
                _ConeStats(
                    port.name,
                    np.array(sorted(members), dtype=np.int64),
                    np.array(sorted(boundary), dtype=np.int64),
                    depth,
                )
            )

    # ------------------------------------------------------------------
    # Accumulation API (called from repro.sim.compiled)
    # ------------------------------------------------------------------
    def group_slots(
        self,
        levels,
        kind: str,
        counted: bool = False,
        meta: Optional[list] = None,
    ) -> list:
        """Mutable per-group accumulators, created on first sight.

        The returned value is ``slots[level_index][group_index]``; the
        instrumented loop adds straight into the lists, so the per-group
        cost is two ``perf_counter`` calls and one float add.

        Dense slots are ``[seconds]``.  With ``counted=True`` (the event
        engine) each slot is ``[seconds, evals]`` and the caller also
        accumulates the actual evaluation count.  *meta* overrides the
        ``(cell type, gates per pass)`` rows derived from *levels* -- the
        event engine passes its own so a cone-plan pass can be keyed by
        the plan object while keeping the global (level, group) shape of
        its sweep; when given, it also defines the slots' shape.
        """
        key = id(levels)
        plan = self._plans.get(key)
        if plan is None or plan[1][0] is not levels:
            if meta is None:
                meta = [
                    [
                        (group.cell_type, len(group.outputs))
                        for group in groups
                    ]
                    for groups in levels
                ]
            slots = [
                [[0.0, 0] if counted else [0.0] for _ in level_meta]
                for level_meta in meta
            ]
            # The strong ref to *levels* keeps its id stable.
            plan = self._plans[key] = (
                slots, (levels, meta), kind, [0], counted,
            )
        # Called exactly once per timed pass: the pass count times each
        # group's gate count reconstructs the eval counts at report
        # time (dense), or the skipped baseline (counted), so the hot
        # loop does not pay a per-group counter add.
        plan[3][0] += 1
        return plan[0]

    def note_pass(self, kind: str, seconds: float) -> None:
        self.pass_seconds[kind] = (
            self.pass_seconds.get(kind, 0.0) + seconds
        )
        if kind == "full":
            self._full_passes += 1
        else:
            self._interface_passes += 1

    def note_clock_edge(self, seconds: float) -> None:
        self.clock_seconds += seconds
        self.clock_edges += 1

    def sample(self, codes: np.ndarray) -> None:
        """Fold one full pass's post-eval codes into the cone stats.

        Called after every full pass; only every ``sample_every``-th
        call pays for the diff.  The first sampled pass seeds the
        reference snapshot and is not counted.
        """
        if self._full_passes % self.sample_every:
            return
        previous = self._prev_codes
        self._prev_codes = codes.copy()
        if previous is None or len(previous) != len(codes):
            return
        changed = codes != previous
        self._samples += 1
        self._changed_sum += float(changed.mean())
        for cone in self._cones:
            cone.samples += 1
            if len(cone.inputs) and bool(changed[cone.inputs].any()):
                cone.active += 1
            # Pass-through cones (a port wired straight to flip-flop
            # Qs) have no internal nets; their toggle basis is the
            # boundary itself.
            basis = cone.members if len(cone.members) else cone.inputs
            if len(basis):
                cone.toggle_sum += float(changed[basis].mean())

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def eval_seconds(self) -> float:
        """Total wall seconds in evaluation passes (incl. dispatch)."""
        return sum(self.pass_seconds.values())

    @property
    def attributed_eval_seconds(self) -> float:
        """Seconds attributed to specific (rank, cell type) groups."""
        total = 0.0
        for plan in self._plans.values():
            for level in plan[0]:
                for slot in level:
                    total += slot[0]
        return total

    def to_document(self) -> dict:
        """The typed attribution document (``schema`` 2)."""
        ranks: List[dict] = []
        cell_types: Dict[str, Dict[str, float]] = {}
        skipped_total = 0
        for slots, meta, kind, passes, counted in sorted(
            self._plans.values(), key=lambda plan: (plan[2], id(plan[1][0]))
        ):
            plan_passes = passes[0]
            for rank, (level_slots, level_meta) in enumerate(
                zip(slots, meta[1])
            ):
                cells = {}
                rank_seconds = 0.0
                rank_evals = 0
                rank_skipped = 0
                gates_per_pass = 0
                for slot, (cell_type, gates) in zip(
                    level_slots, level_meta
                ):
                    seconds = slot[0]
                    dense_evals = gates * plan_passes
                    if counted:
                        evals = slot[1]
                        skipped = max(0, dense_evals - evals)
                    else:
                        evals = dense_evals
                        skipped = 0
                    cells[cell_type] = {
                        "seconds": seconds,
                        "evals": evals,
                        "gates": gates,
                        "skipped": skipped,
                    }
                    rank_seconds += seconds
                    rank_evals += evals
                    rank_skipped += skipped
                    gates_per_pass += gates
                    aggregate = cell_types.setdefault(
                        cell_type,
                        {"seconds": 0.0, "evals": 0, "skipped": 0},
                    )
                    aggregate["seconds"] += seconds
                    aggregate["evals"] += evals
                    aggregate["skipped"] += skipped
                skipped_total += rank_skipped
                ranks.append(
                    {
                        "kind": kind,
                        "rank": rank,
                        "seconds": rank_seconds,
                        "evals": rank_evals,
                        "skipped": rank_skipped,
                        "gates_per_pass": gates_per_pass,
                        "cells": cells,
                    }
                )
        cones = [
            {
                "port": cone.port,
                "member_nets": int(len(cone.members)),
                "input_nets": int(len(cone.inputs)),
                "depth": cone.depth,
                "samples": cone.samples,
                "active_fraction": (
                    cone.active / cone.samples if cone.samples else None
                ),
                "quiescent_fraction": (
                    1.0 - cone.active / cone.samples
                    if cone.samples
                    else None
                ),
                "toggle_rate": (
                    cone.toggle_sum / cone.samples if cone.samples else None
                ),
            }
            for cone in self._cones
        ]
        attributed = self.attributed_eval_seconds
        return {
            "schema": PERF_SCHEMA,
            "engine": self.engine,
            "skipped_evals": skipped_total,
            "sample_every": self.sample_every,
            "passes": {
                "full": self._full_passes,
                "interface": self._interface_passes,
            },
            "eval_seconds": self.eval_seconds,
            "attributed_group_seconds": attributed,
            "dispatch_seconds": max(0.0, self.eval_seconds - attributed),
            "clock_seconds": self.clock_seconds,
            "clock_edges": self.clock_edges,
            "ranks": ranks,
            "cell_types": {
                name: stats for name, stats in sorted(cell_types.items())
            },
            "activity": {
                "samples": self._samples,
                "mean_changed_fraction": (
                    self._changed_sum / self._samples
                    if self._samples
                    else None
                ),
            },
            "cones": sorted(
                cones, key=lambda cone: cone["port"]
            ),
        }


# ---------------------------------------------------------------------------
# Process-wide installation (mirrors the provenance-recorder idiom)
# ---------------------------------------------------------------------------
_current_perf: Optional[PerfAttribution] = None


def get_perf() -> Optional[PerfAttribution]:
    """The armed attribution recorder, or None (the common fast path)."""
    return _current_perf


def install_perf(
    recorder: Optional[PerfAttribution],
) -> Optional[PerfAttribution]:
    """Install *recorder* process-wide; returns the previous one."""
    global _current_perf
    previous = _current_perf
    _current_perf = recorder
    return previous


@contextmanager
def record_perf(recorder: PerfAttribution):
    """Arm *recorder* for the duration of a ``with`` block."""
    previous = install_perf(recorder)
    try:
        yield recorder
    finally:
        install_perf(previous)


class PerfHarness:
    """Wall-clock decomposition of a gate-level run for ``repro perf``.

    The attribution recorder accounts for time *inside* the compiled
    circuit (rank evals, dispatch, clock edges).  The harness measures
    the rest from outside -- per-step totals and the halt-probe -- so
    the final document can show that the sum of its measured components
    covers the run's wall time (the acceptance bar is within 10%).
    """

    def __init__(self, runner, recorder: PerfAttribution):
        self.runner = runner
        self.recorder = recorder
        self.step_seconds = 0.0
        self.halt_seconds = 0.0
        self.wall_seconds = 0.0
        self.cycles = 0

    def run(self, max_cycles: int, stop_at_halt: bool = True) -> int:
        runner = self.runner
        start_cycle = runner.soc.cycle
        with record_perf(self.recorder):
            wall_start = perf_counter()
            while runner.soc.cycle - start_cycle < max_cycles:
                if stop_at_halt:
                    probe_start = perf_counter()
                    halted = runner.at_halt()
                    self.halt_seconds += perf_counter() - probe_start
                    if halted:
                        break
                step_start = perf_counter()
                runner.step()
                self.step_seconds += perf_counter() - step_start
            self.wall_seconds = perf_counter() - wall_start
        self.cycles = runner.soc.cycle - start_cycle
        return self.cycles

    def to_document(self, workload: str) -> dict:
        """The full ``repro perf`` document: attribution + harness."""
        document = self.recorder.to_document()
        sim_seconds = (
            self.recorder.eval_seconds + self.recorder.clock_seconds
        )
        # Python-side SoC work (port decode, memory model, ROM fetch)
        # is the measured step total minus the circuit-internal time.
        soc_seconds = max(0.0, self.step_seconds - sim_seconds)
        attributed = sim_seconds + soc_seconds + self.halt_seconds
        document.update(
            {
                "workload": workload,
                "cycles": self.cycles,
                "wall_seconds": self.wall_seconds,
                "step_seconds": self.step_seconds,
                "halt_probe_seconds": self.halt_seconds,
                "soc_python_seconds": soc_seconds,
                "attributed_seconds": attributed,
                "attributed_fraction": (
                    attributed / self.wall_seconds
                    if self.wall_seconds
                    else None
                ),
                "cycles_per_second": (
                    self.cycles / self.wall_seconds
                    if self.wall_seconds
                    else None
                ),
            }
        )
        return document
