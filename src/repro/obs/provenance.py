"""Per-bit taint provenance: *why* is this net tainted?

An opt-in :class:`ProvenanceRecorder` rides along with the gate-level
simulation and records, for every net that *becomes* tainted, the edge
that caused it:

* ``gate``  -- a combinational gate's output picked up taint from a
  tainted fan-in (one edge per tainted fan-in);
* ``dff``   -- a flip-flop latched a tainted D input;
* ``ram``   -- taint moved between the data memory and the CPU's memory
  interface (RAM words are modelled as pseudo-nets above the netlist's
  net-id space, so store->load flows stay connected);
* ``input`` -- taint was *introduced* at a labelled source: a tainted
  input port (``P1IN``), tainted program memory (``rom``), or an
  initially-tainted RAM partition.

Edges live in a fixed-capacity ring of numpy arrays (a few MB for a
million edges) with string labels interned once, so memory stays bounded
no matter how long the analysis runs; when the ring wraps, the oldest
edges are overwritten and :attr:`ProvenanceRecorder.truncated` is set --
the analysis keeps its verdict, only explanations may bottom out early
(flagged ``provenance_truncated``, never an error).

On top of the store, :func:`explain_violation` computes a backward slice
from a checker violation's sink (the store/port/PC nets at the violation
cycle) through gates and cycles to the originally-labelled tainted
inputs, returning a :class:`FlowSlice` that renders as text, exports as
a Graphviz DOT flow graph, and feeds the HTML report.

The recorder is installed process-wide (mirroring
``repro.obs.get_observer`` and ``repro.resilience.faults.get_injector``)
so the compiled-circuit hot paths pay a single ``None`` check when
nobody asked for provenance::

    recorder = ProvenanceRecorder()
    result = TaintTracker(program, policy, provenance=recorder).run()
    print(explain_violation(result, 0).render())

Caveat: the tracker explores many paths by restoring snapshots, so the
edge stream interleaves sibling paths and cycle numbers are not globally
monotonic.  Backward queries pick the *most recently recorded* cause at
or before the sink cycle -- across paths this can conflate siblings, but
only ever by showing an additional feasible flow (the same conservative
direction as the analysis itself).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Edge kinds (stored as int8 in the ring).
KIND_GATE = 0
KIND_DFF = 1
KIND_RAM = 2
KIND_INPUT = 3

KIND_NAMES = ("gate", "dff", "ram", "input")

#: Per-event cap on cross-product edges (e.g. tainted-address smears).
CROSS_EDGE_CAP = 256

#: Per-store cap on RAM pseudo-net fanout for smeared writes; beyond it
#: the remaining matched words keep their taint but lose the link (their
#: slices bottom out at the ``ram[0x....]`` leaf).
RAM_WRITE_CAP = 16


class ProvenanceRecorder:
    """Bounded per-bit taint-cause store for one analysis.

    *capacity* bounds the edge ring (rows of ``(cycle, dst, src, kind)``,
    25 bytes each).  Binding to a circuit (automatic on first simulated
    cycle) fixes the net-id space and enables name resolution.
    """

    def __init__(self, capacity: int = 1 << 20):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._at = np.zeros(capacity, dtype=np.int64)
        self._dst = np.zeros(capacity, dtype=np.int64)
        self._src = np.zeros(capacity, dtype=np.int64)
        self._kind = np.zeros(capacity, dtype=np.int8)
        #: total edges ever recorded (>= capacity once the ring wrapped)
        self.recorded = 0
        #: True once the ring wrapped (oldest edges overwritten) or a
        #: smeared store exceeded RAM_WRITE_CAP: slices may bottom out
        #: before reaching a labelled input
        self.truncated = False
        self.cycle = 0
        #: edges recorded during the current cycle (step-event telemetry)
        self.edges_this_cycle = 0
        self._labels: List[str] = []
        self._label_ids: Dict[str, int] = {}
        self._num_nets = 0
        self._net_names: Tuple[str, ...] = ()
        self._port_names: Dict[int, str] = {}
        self._index: Optional[Dict[int, List[Tuple[int, int]]]] = None

    # ------------------------------------------------------------------
    # Binding and naming
    # ------------------------------------------------------------------
    def ensure_bound(self, circuit) -> None:
        """Adopt *circuit*'s net-id space (idempotent, first step only)."""
        if self._num_nets:
            return
        port_names: Dict[int, str] = {}
        netlist = circuit.netlist
        for port in list(netlist.outputs) + list(netlist.inputs):
            for bit, net in enumerate(port.nets):
                # Outputs win over the driving gate's internal name;
                # keep the first (output) name when a net serves both.
                port_names.setdefault(int(net), f"{port.name}[{bit}]")
        self.bind_raw(
            circuit.num_nets,
            tuple(netlist.net_names),
            port_names,
        )

    def bind_raw(
        self,
        num_nets: int,
        net_names: Sequence[str] = (),
        port_names: Optional[Dict[int, str]] = None,
    ) -> None:
        """Testing/back-door bind without a compiled circuit."""
        self._num_nets = num_nets
        self._net_names = tuple(net_names)
        self._port_names = port_names if port_names is not None else {}

    def label_id(self, label: str) -> int:
        """Interned node id (< 0) for a labelled taint source."""
        index = self._label_ids.get(label)
        if index is None:
            index = len(self._labels)
            self._labels.append(label)
            self._label_ids[label] = index
        return -1 - index

    def ram_node(self, word: int) -> int:
        """Pseudo-net id for data-memory word *word*."""
        return self._num_nets + word

    def node_name(self, node: int) -> str:
        if node < 0:
            return self._labels[-1 - node]
        if self._num_nets and node >= self._num_nets:
            return f"ram[0x{node - self._num_nets:04x}]"
        port_name = self._port_names.get(node)
        if port_name is not None:
            return port_name
        if node < len(self._net_names) and self._net_names[node]:
            return self._net_names[node]
        return f"net{node}"

    def is_source_node(self, node: int) -> bool:
        """Labelled inputs and RAM pseudo-nets are policy-labelled
        origins; plain nets are intermediate circuit state."""
        return node < 0 or (bool(self._num_nets) and node >= self._num_nets)

    # ------------------------------------------------------------------
    # Recording (hot path: called from the compiled simulator)
    # ------------------------------------------------------------------
    def begin_cycle(self, cycle: int) -> None:
        self.cycle = cycle
        self.edges_this_cycle = 0

    def _append(self, dsts, srcs, kind: int) -> None:
        """Ring-append equal-length dst/src id vectors."""
        count = len(dsts)
        if count == 0:
            return
        self._index = None
        capacity = self.capacity
        if count >= capacity:
            # Degenerate burst larger than the whole ring: keep the tail.
            dsts = dsts[-capacity:]
            srcs = srcs[-capacity:]
            count = capacity
        start = self.recorded % capacity
        end = start + count
        if end <= capacity:
            rows = slice(start, end)
            self._at[rows] = self.cycle
            self._dst[rows] = dsts
            self._src[rows] = srcs
            self._kind[rows] = kind
        else:
            head = capacity - start
            self._at[start:] = self.cycle
            self._dst[start:] = dsts[:head]
            self._src[start:] = srcs[:head]
            self._kind[start:] = kind
            tail = end - capacity
            self._at[:tail] = self.cycle
            self._dst[:tail] = dsts[head:]
            self._src[:tail] = srcs[head:]
            self._kind[:tail] = kind
        self.recorded += count
        self.edges_this_cycle += count
        if self.recorded > capacity:
            self.truncated = True

    def record_gate(self, dsts, srcs) -> None:
        """Newly-tainted gate outputs <- their tainted fan-in nets."""
        self._append(dsts, srcs, KIND_GATE)

    def record_latch(self, q_nets, d_nets) -> None:
        """Newly-tainted flip-flop Qs <- their (tainted) D nets."""
        self._append(q_nets, d_nets, KIND_DFF)

    def record_input(self, nets, tmask: int, label: str) -> None:
        """Taint introduced on *nets* (bits set in *tmask*) by *label*."""
        dsts = [net for bit, net in enumerate(nets) if (tmask >> bit) & 1]
        if not dsts:
            return
        src = self.label_id(label)
        self._append(
            np.asarray(dsts, dtype=np.int64),
            np.full(len(dsts), src, dtype=np.int64),
            KIND_INPUT,
        )

    def record_ram_read(self, nets, tmask: int, word: int) -> None:
        """Tainted load data <- the RAM word's pseudo-net."""
        dsts = [net for bit, net in enumerate(nets) if (tmask >> bit) & 1]
        if not dsts:
            return
        self._append(
            np.asarray(dsts, dtype=np.int64),
            np.full(len(dsts), self.ram_node(word), dtype=np.int64),
            KIND_RAM,
        )

    def record_ram_write(self, words, src_nets) -> None:
        """Possibly-written RAM pseudo-nets <- tainted store-data/address
        nets.  Smeared stores are capped at :data:`RAM_WRITE_CAP` words;
        words beyond the cap keep their taint but lose the link."""
        if len(src_nets) == 0 or len(words) == 0:
            return
        if len(words) > RAM_WRITE_CAP:
            words = words[:RAM_WRITE_CAP]
            self.truncated = True
        srcs = np.asarray(src_nets, dtype=np.int64)
        for word in words:
            self._append(
                np.full(len(srcs), self.ram_node(int(word)), dtype=np.int64),
                srcs,
                KIND_RAM,
            )

    def record_cross(self, dsts, srcs, kind: int = KIND_GATE) -> None:
        """Every dst <- every src, capped at :data:`CROSS_EDGE_CAP` pairs
        (used for address-steered smears where which source bit caused
        which destination bit is not bit-resolvable)."""
        if len(dsts) == 0 or len(srcs) == 0:
            return
        if len(dsts) * len(srcs) > CROSS_EDGE_CAP:
            srcs = srcs[: max(1, CROSS_EDGE_CAP // max(1, len(dsts)))]
        dst_grid = np.repeat(np.asarray(dsts, dtype=np.int64), len(srcs))
        src_grid = np.tile(np.asarray(srcs, dtype=np.int64), len(dsts))
        self._append(dst_grid, src_grid, kind)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def _rows_chronological(self) -> np.ndarray:
        """Valid ring rows, oldest first."""
        if self.recorded <= self.capacity:
            return np.arange(self.recorded)
        start = self.recorded % self.capacity
        return np.concatenate(
            [np.arange(start, self.capacity), np.arange(start)]
        )

    def _dst_index(self) -> Dict[int, List[Tuple[int, int]]]:
        """dst node -> ``(stream position, ring row)`` pairs, oldest
        first (lazily built, invalidated on append)."""
        if self._index is None:
            index: Dict[int, List[Tuple[int, int]]] = {}
            for position, row in enumerate(self._rows_chronological()):
                index.setdefault(int(self._dst[row]), []).append(
                    (position, int(row))
                )
            self._index = index
        return self._index

    def causes_of(
        self,
        node: int,
        cycle: int,
        before_position: Optional[int] = None,
    ) -> List[Tuple[int, int]]:
        """``(stream position, ring row)`` pairs of the most recent taint
        event for *node*, with all fan-in edges of that one event.

        With *before_position* the event must precede that stream
        position -- a cause is always recorded before its effect, and
        honouring that keeps backward slices acyclic even though the
        tracker re-simulates the same cycle numbers on many restored
        paths.  Without it, the latest event at or before *cycle* is
        used (the entry query from a violation's sink).
        """
        entries = self._dst_index().get(node)
        if not entries:
            return []
        best = -1
        for index in range(len(entries) - 1, -1, -1):
            position, row = entries[index]
            if before_position is not None:
                if position < before_position:
                    best = index
                    break
            elif self._at[row] <= cycle:
                best = index
                break
        if best < 0:
            return []
        at = int(self._at[entries[best][1]])
        picked = [entries[best]]
        index = best - 1
        while index >= 0 and int(self._at[entries[index][1]]) == at:
            picked.append(entries[index])
            index -= 1
        return picked

    def slice_to(
        self,
        sink_nets: Sequence[int],
        cycle: int,
        max_nodes: int = 4096,
        max_edges: int = 100_000,
    ) -> "FlowSlice":
        """Backward slice from *sink_nets* at *cycle* to taint origins.

        Chases *every* taint event of a visited node that precedes the
        stream position it was reached through (a cause is recorded
        before its effect, so the walk is causally sound and
        terminates).  Chasing only the most recent event is not enough:
        the tracker re-simulates the same cycles on restored paths, so a
        register's latest re-taint event can recirculate through hold
        muxes without ever touching the original labelled-input edge.
        """
        edges: List[FlowEdge] = []
        leaves: List[FlowLeaf] = []
        parents: Dict[int, Optional[FlowEdge]] = {}
        #: tightest (highest) stream-position bound processed per node;
        #: a node is re-expanded when rediscovered with a higher bound
        bounds: Dict[int, int] = {}
        sliced = False
        frontier: List[Tuple[int, int, int]] = []
        sinks = []
        for net in sink_nets:
            if net in parents:
                continue
            parents[net] = None
            sinks.append(int(net))
            # Entry query: the sink's latest event at or before the
            # violation cycle anchors the position bound.
            entry = self.causes_of(int(net), cycle)
            if entry:
                anchor = max(position for position, _ in entry) + 1
                frontier.append((int(net), cycle, anchor))
            else:
                frontier.append((int(net), cycle, 0))
        seen_leaf_labels = set()

        def note_leaf(node: int, at: int, labelled: bool, name: str) -> None:
            if name not in seen_leaf_labels:
                seen_leaf_labels.add(name)
                leaves.append(
                    FlowLeaf(node=node, name=name, cycle=at, labelled=labelled)
                )

        while frontier:
            if len(parents) > max_nodes or len(edges) > max_edges:
                sliced = True
                break
            node, at, before = frontier.pop(0)
            if bounds.get(node, -1) >= before:
                continue
            bounds[node] = before
            entries = [
                (position, row)
                for position, row in self._dst_index().get(node, ())
                if position < before
                and (node not in sinks or self._at[row] <= cycle)
            ]
            if not entries:
                if self.is_source_node(node) or node in sinks:
                    note_leaf(
                        node, at, self.is_source_node(node),
                        self.node_name(node),
                    )
                else:
                    # Tainted before recording started (or evicted from
                    # the ring): an honest dead end, not an origin.
                    note_leaf(
                        node, at, False,
                        self.node_name(node) + " (unrecorded)",
                    )
                continue
            for position, row in entries:
                src = int(self._src[row])
                edge = FlowEdge(
                    src=src,
                    dst=node,
                    cycle=int(self._at[row]),
                    kind=KIND_NAMES[int(self._kind[row])],
                    src_name=self.node_name(src),
                    dst_name=self.node_name(node),
                )
                edges.append(edge)
                if src not in parents:
                    parents[src] = edge
                if src < 0:
                    note_leaf(src, edge.cycle, True, self.node_name(src))
                elif self.is_source_node(src):
                    # RAM pseudo-nets are both origins (initially-tainted
                    # partitions) and conduits (store->load): surface the
                    # origin and keep chasing the stores feeding it.
                    note_leaf(src, edge.cycle, True, self.node_name(src))
                    frontier.append((src, edge.cycle, position))
                else:
                    frontier.append((src, edge.cycle, position))
        chain = self._chain_for(parents, leaves)
        return FlowSlice(
            sink_nets=[int(net) for net in sink_nets],
            sink_names=[self.node_name(int(n)) for n in sink_nets],
            cycle=cycle,
            edges=edges,
            leaves=leaves,
            chain=chain,
            truncated=self.truncated or sliced,
        )

    def _chain_for(
        self,
        parents: Dict[int, Optional[FlowEdge]],
        leaves: List["FlowLeaf"],
    ) -> List["FlowEdge"]:
        """One sink->origin path, preferring a policy-labelled leaf.

        Interned label nodes (``P1IN``, ``rom[...]``) outrank RAM
        pseudo-nets: a store->load flow *through* memory should chain
        back to the input that tainted the store, not stop at the word.
        """
        ordered = sorted(
            leaves, key=lambda leaf: (not leaf.labelled, leaf.node >= 0)
        )
        for leaf in ordered:
            # parents[n] is the edge with n as *source*, pointing toward
            # the sink -- so the walk already runs origin -> sink.
            chain: List[FlowEdge] = []
            edge = parents.get(leaf.node)
            while edge is not None:
                chain.append(edge)
                edge = parents.get(edge.dst)
            if chain:
                return chain
        return []

    # ------------------------------------------------------------------
    # Telemetry / export
    # ------------------------------------------------------------------
    def cycle_activity(self, buckets: int = 64) -> List[dict]:
        """Taint-propagation activity bucketed over the recorded cycle
        range (feeds the HTML heatmap)."""
        count = min(self.recorded, self.capacity)
        if count == 0:
            return []
        at = self._at[:count] if self.recorded <= self.capacity else self._at
        low = int(at.min())
        high = int(at.max()) + 1
        buckets = max(1, min(buckets, high - low))
        width = max(1, -(-(high - low) // buckets))
        histogram, _ = np.histogram(
            at, bins=buckets, range=(low, low + buckets * width)
        )
        return [
            {
                "from_cycle": low + index * width,
                "to_cycle": low + (index + 1) * width - 1,
                "edges": int(value),
            }
            for index, value in enumerate(histogram)
        ]

    def snapshot(self) -> dict:
        """JSON-ready summary (no edge dump)."""
        return {
            "edges_recorded": self.recorded,
            "edges_retained": min(self.recorded, self.capacity),
            "capacity": self.capacity,
            "truncated": self.truncated,
            "labels": list(self._labels),
        }

    def export_state(self) -> dict:
        """Everything a checkpoint needs to restore this recorder."""
        retained = min(self.recorded, self.capacity)
        order = self._rows_chronological()
        return {
            "capacity": self.capacity,
            "at": self._at[order].copy(),
            "dst": self._dst[order].copy(),
            "src": self._src[order].copy(),
            "kind": self._kind[order].copy(),
            "recorded": self.recorded,
            "truncated": self.truncated,
            "labels": list(self._labels),
            "num_nets": self._num_nets,
            "retained": retained,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a checkpointed edge store (chronological layout)."""
        retained = int(state["retained"])
        capacity = self.capacity
        if retained > capacity:
            # Restoring into a smaller ring keeps the newest edges.
            offset = retained - capacity
            retained = capacity
        else:
            offset = 0
        self._at[:retained] = state["at"][offset:]
        self._dst[:retained] = state["dst"][offset:]
        self._src[:retained] = state["src"][offset:]
        self._kind[:retained] = state["kind"][offset:]
        # Re-anchor the ring so position `retained % capacity` is next.
        self.recorded = int(state["recorded"])
        if self.recorded > retained:
            # Lay the retained window so the ring cursor lines up.
            shift = self.recorded % capacity
            for array in (self._at, self._dst, self._src, self._kind):
                array[:] = np.roll(array, shift - retained)
        self.truncated = bool(state["truncated"]) or offset > 0
        self._labels = list(state["labels"])
        self._label_ids = {
            label: index for index, label in enumerate(self._labels)
        }
        if not self._num_nets:
            self._num_nets = int(state["num_nets"])
        self._index = None


@dataclass
class FlowEdge:
    """One taint-flow hop (dst became tainted because of src)."""

    src: int
    dst: int
    cycle: int
    kind: str
    src_name: str
    dst_name: str

    def render(self) -> str:
        return (
            f"{self.src_name} --{self.kind}@{self.cycle}--> {self.dst_name}"
        )


@dataclass
class FlowLeaf:
    """A slice endpoint; ``labelled`` means a policy-labelled origin."""

    node: int
    name: str
    cycle: int
    labelled: bool


@dataclass
class FlowSlice:
    """The backward slice explaining one violation's taint."""

    sink_nets: List[int]
    sink_names: List[str]
    cycle: int
    edges: List[FlowEdge]
    leaves: List[FlowLeaf]
    #: one linear sink->origin path (root first, origin last)
    chain: List[FlowEdge]
    truncated: bool = False
    #: filled by explain_violation
    violation: Optional[object] = None

    @property
    def origins(self) -> List[str]:
        """Names of the labelled taint sources reached by the slice."""
        return sorted({leaf.name for leaf in self.leaves if leaf.labelled})

    def summary(self) -> str:
        origins = self.origins
        source = ", ".join(origins) if origins else "<unrecorded taint>"
        sink = self.chain[-1].dst_name if self.chain else (
            self.sink_names[0] if self.sink_names else "<sink>"
        )
        text = (
            f"taint from {source} reaches {sink} at cycle {self.cycle} "
            f"({len(self.edges)} edge(s), {len(self.chain)} hop chain)"
        )
        if self.truncated:
            text += " [provenance_truncated]"
        return text

    def render(self) -> str:
        lines = [self.summary()]
        if self.chain:
            lines.append("  chain (origin -> sink):")
            first = self.chain[0]
            lines.append(f"    {first.src_name}")
            for edge in self.chain:
                lines.append(
                    f"      --{edge.kind}@{edge.cycle}--> {edge.dst_name}"
                )
        dead_ends = [leaf.name for leaf in self.leaves if not leaf.labelled]
        if dead_ends:
            lines.append(
                "  unrecorded-taint dead end(s): "
                + ", ".join(sorted(set(dead_ends))[:4])
            )
        return "\n".join(lines)

    def to_document(self) -> dict:
        """JSON-ready form for ``--json`` outputs and the HTML report."""
        return {
            "cycle": self.cycle,
            "sinks": list(self.sink_names),
            "origins": self.origins,
            "edges": len(self.edges),
            "truncated": self.truncated,
            "chain": [
                {
                    "src": edge.src_name,
                    "dst": edge.dst_name,
                    "kind": edge.kind,
                    "cycle": edge.cycle,
                }
                for edge in self.chain
            ],
        }

    def to_dot(self, title: str = "taint flow") -> str:
        """The sliced subgraph as a Graphviz DOT digraph."""

        def quote(name: str) -> str:
            return '"' + name.replace('"', r"\"") + '"'

        node_kind: Dict[str, str] = {}
        for edge in self.edges:
            node_kind.setdefault(edge.src_name, "net")
            node_kind.setdefault(edge.dst_name, "net")
            if edge.src < 0:
                node_kind[edge.src_name] = "label"
            elif edge.kind == "ram" and edge.src == edge.src:
                if edge.src_name.startswith("ram["):
                    node_kind[edge.src_name] = "ram"
            if edge.dst_name.startswith("ram["):
                node_kind[edge.dst_name] = "ram"
        for name in self.sink_names:
            node_kind.setdefault(name, "net")
            node_kind[name] = "sink"
        shapes = {
            "label": "box",
            "ram": "cylinder",
            "net": "ellipse",
            "sink": "doubleoctagon",
        }
        lines = [
            "digraph taint_flow {",
            f"  label={quote(title)};",
            "  rankdir=LR;",
            "  node [fontname=monospace fontsize=10];",
        ]
        for name, kind in sorted(node_kind.items()):
            style = f"shape={shapes[kind]}"
            if kind == "label":
                style += " style=filled fillcolor=lightcoral"
            elif kind == "sink":
                style += " style=filled fillcolor=gold"
            lines.append(f"  {quote(name)} [{style}];")
        seen = set()
        for edge in self.edges:
            key = (edge.src_name, edge.dst_name, edge.kind)
            if key in seen:
                continue
            seen.add(key)
            lines.append(
                f"  {quote(edge.src_name)} -> {quote(edge.dst_name)} "
                f'[label="{edge.kind}@{edge.cycle}"];'
            )
        lines.append("}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Violation -> sink mapping and the explain() entry point
# ---------------------------------------------------------------------------
#: Which circuit ports hold the tainted payload for each violation kind.
SINK_PORTS: Dict[str, Tuple[str, ...]] = {
    "tainted_write_untainted_memory": ("dmem_wdata", "dmem_addr"),
    "tainted_write_untainted_port": ("dmem_wdata", "dmem_addr"),
    "trusted_read_tainted_memory": ("dmem_rdata",),
    "trusted_read_tainted_port": ("dmem_rdata",),
    "tainted_control_flow": ("dbg_pc",),
    "tainted_state_in_trusted_code": ("dbg_pc",),
    "watchdog_tainted": ("dmem_wdata", "dmem_addr"),
}


def sink_nets_for(circuit, kind: str) -> List[int]:
    """Net ids of the violation kind's sink ports on *circuit*."""
    nets: List[int] = []
    for port in SINK_PORTS.get(kind, ("dmem_wdata",)):
        try:
            nets.extend(circuit.output_nets(port))
        except KeyError:
            nets.extend(circuit.input_nets(port))
    return nets


def explain_violation(
    result,
    violation,
    recorder: Optional[ProvenanceRecorder] = None,
    circuit=None,
    max_nodes: int = 4096,
) -> FlowSlice:
    """Backward-slice one violation to its labelled taint origins.

    *violation* is a :class:`repro.core.violations.Violation` or an index
    into ``result.violations``.  The recorder defaults to
    ``result.provenance`` (armed via ``TaintTracker(provenance=...)``).
    """
    if isinstance(violation, int):
        try:
            violation = result.violations[violation]
        except IndexError:
            raise IndexError(
                f"violation index {violation} out of range; the analysis "
                f"found {len(result.violations)} violation(s)"
            ) from None
    recorder = recorder if recorder is not None else result.provenance
    if recorder is None:
        raise ValueError(
            "no provenance was recorded for this analysis; re-run with "
            "TaintTracker(provenance=ProvenanceRecorder()) or the CLI's "
            "--provenance flag"
        )
    if circuit is None:
        circuit = getattr(result, "circuit", None)
    if circuit is None:
        raise ValueError(
            "explain_violation needs the compiled circuit the analysis "
            "ran on (pass circuit=...)"
        )
    recorder.ensure_bound(circuit)
    flow = recorder.slice_to(
        sink_nets_for(circuit, violation.kind),
        violation.cycle,
        max_nodes=max_nodes,
    )
    if not flow.edges:
        # The primary sink ports saw no recorded taint event (e.g. a
        # strict-mode state violation): fall back to the full DFF state.
        flow = recorder.slice_to(
            [int(net) for net in circuit.dff_nets()],
            violation.cycle,
            max_nodes=max_nodes,
        )
        flow.sink_names = [f"<processor state at cycle {violation.cycle}>"]
    flow.violation = violation
    return flow


# ---------------------------------------------------------------------------
# Process-wide hook (mirrors repro.obs.get_observer)
# ---------------------------------------------------------------------------
_recorder: Optional[ProvenanceRecorder] = None


def get_recorder() -> Optional[ProvenanceRecorder]:
    """The installed provenance recorder, or None (the fast path)."""
    return _recorder


def install_recorder(
    recorder: Optional[ProvenanceRecorder],
) -> Optional[ProvenanceRecorder]:
    """Install *recorder* process-wide; returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


@contextmanager
def record_provenance(recorder: ProvenanceRecorder):
    """Install *recorder* for the duration of a ``with`` block."""
    previous = install_recorder(recorder)
    try:
        yield recorder
    finally:
        install_recorder(previous)
