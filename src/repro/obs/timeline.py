"""Cycle-level flight recorder and time-travel query API.

The paper's core argument is that gate-level taint tracking makes
security *auditable* -- yet a verdict plus a backward slice only shows
the end of the story.  The timeline layer records the story itself: one
frame per simulated cycle capturing every net's ternary value and taint
bit, so any cycle can be reconstructed after the fact and taint can be
watched spreading forward in time.

Three pieces:

* :class:`TimelineRecorder` -- the flight recorder.  Hooked into
  ``SoC.step`` through the same process-wide single-``None``-check
  pattern as the provenance recorder (:func:`get_timeline` /
  :func:`install_timeline` / :func:`record_timeline`), it diffs the
  post-step net codes against the previous frame and stores only the
  changed net indices (interned -- the CPU touches the same nets cycle
  after cycle) plus their new codes.  Every ``keyframe_interval`` frames
  a full keyframe is stored so reconstruction is O(delta-window), and
  ``max_frames`` bounds the store (overflow sets ``truncated``, never an
  error).  The recorder checkpoints and resumes (``export_state`` /
  ``restore_state``) including the last-seen codes, so a timeline
  recorded across a checkpoint/resume boundary is bit-identical to an
  uninterrupted one.

* :class:`Timeline` -- the scrub/query API over a finished recording:
  ``seek(frame)`` reconstructs the full code array, ``net_history``
  walks one net through a frame window, ``first_tainted`` finds the
  frame where a net first picked up taint, ``taint_frontier`` lists the
  nets that became tainted at a frame.  It composes with
  ``repro.obs.provenance``: a violation's FlowSlice names nets whose
  per-cycle state the timeline can replay.

* ``.timeline`` files -- :func:`save_timeline` / :func:`load_timeline`
  persist a recording through the same versioned magic+header+payload
  container codec as ``repro.resilience.checkpoint``
  (``REPRO-TLIN\\n``), with violation markers resolved against the
  recorded frames.

Frames are captured at the *end* of ``SoC.step``, after the clock edge:
the flip-flops hold the next cycle's state while the combinational nets
still hold this cycle's settled values -- exactly what the policy
checker saw, so a violation cycle's frame shows the tainted sink ports.
The tracker explores by restoring snapshots, so frame *cycles* are not
globally monotonic (same caveat as provenance); frame *indices* are the
true timeline of the simulation, and lockstep tests assert a re-run
reproduces every frame bit-identically.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

TIMELINE_MAGIC = b"REPRO-TLIN\n"
TIMELINE_VERSION = 1

#: Frame kinds in the on-disk payload.
FRAME_KEY = 0
FRAME_DELTA = 1


@dataclass
class TimelineMarker:
    """One violation resolved to a recorded frame."""

    frame: int
    cycle: int
    kind: str
    condition: int
    address: int
    task: str
    index: int  # position in the analysis' violation list


class TimelineRecorder:
    """Bounded per-cycle state-delta recorder for one analysis.

    *keyframe_interval* spaces full-state keyframes (reconstruction cost
    is at most that many delta applications); *max_frames* bounds the
    store -- recording stops there and :attr:`truncated` is set, the
    analysis itself is never perturbed.
    """

    def __init__(
        self, keyframe_interval: int = 64, max_frames: int = 1 << 20
    ):
        if keyframe_interval <= 0:
            raise ValueError(
                f"keyframe_interval must be positive, got {keyframe_interval}"
            )
        if max_frames <= 0:
            raise ValueError(
                f"max_frames must be positive, got {max_frames}"
            )
        self.keyframe_interval = keyframe_interval
        self.max_frames = max_frames
        #: (kind, cycle, data) per frame; keyframe data is the full code
        #: array, delta data is ``(changed_indices, new_codes)``
        self._frames: List[tuple] = []
        self._last_codes: Optional[np.ndarray] = None
        self.truncated = False
        self.keyframes = 0
        #: frames dropped after the bound was hit
        self.dropped = 0
        #: interned changed-index arrays (the CPU touches the same net
        #: sets cycle after cycle, so deltas share index vectors)
        self._interned: Dict[bytes, np.ndarray] = {}
        self._num_nets = 0
        self._net_names: Tuple[str, ...] = ()
        self._port_nets: Dict[str, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Binding (mirrors ProvenanceRecorder.ensure_bound)
    # ------------------------------------------------------------------
    def ensure_bound(self, circuit) -> None:
        """Adopt *circuit*'s net-id space (idempotent, first step only)."""
        if self._num_nets:
            return
        netlist = circuit.netlist
        port_nets: Dict[str, Tuple[int, ...]] = {}
        for port in list(netlist.outputs) + list(netlist.inputs):
            port_nets.setdefault(
                port.name, tuple(int(n) for n in port.nets)
            )
        self.bind_raw(
            circuit.num_nets, tuple(netlist.net_names), port_nets
        )

    def bind_raw(
        self,
        num_nets: int,
        net_names: Sequence[str] = (),
        port_nets: Optional[Dict[str, Tuple[int, ...]]] = None,
    ) -> None:
        """Testing/back-door bind without a compiled circuit."""
        self._num_nets = num_nets
        self._net_names = tuple(net_names)
        self._port_nets = dict(port_nets or {})

    @property
    def num_frames(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------------
    # Recording (hot path: called once per SoC.step)
    # ------------------------------------------------------------------
    def _intern(self, indices: np.ndarray) -> np.ndarray:
        key = indices.tobytes()
        kept = self._interned.get(key)
        if kept is None:
            kept = indices
            self._interned[key] = kept
        return kept

    def on_step(self, cycle: int, codes: np.ndarray) -> None:
        """Record the post-step code array as one frame."""
        if len(self._frames) >= self.max_frames:
            self.truncated = True
            self.dropped += 1
            self._last_codes = None  # force a keyframe if the bound grows
            return
        last = self._last_codes
        if last is None or len(self._frames) % self.keyframe_interval == 0:
            self._frames.append((FRAME_KEY, cycle, codes.copy()))
            self.keyframes += 1
        else:
            changed = np.nonzero(codes != last)[0].astype(np.int32)
            self._frames.append(
                (FRAME_DELTA, cycle, (self._intern(changed), codes[changed]))
            )
        self._last_codes = codes.copy()

    # ------------------------------------------------------------------
    # Telemetry / checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready summary (no frame dump)."""
        return {
            "frames": len(self._frames),
            "keyframes": self.keyframes,
            "max_frames": self.max_frames,
            "keyframe_interval": self.keyframe_interval,
            "truncated": self.truncated,
            "nets": self._num_nets,
        }

    def export_state(self) -> dict:
        """Everything a checkpoint needs to continue this recording."""
        return {
            "keyframe_interval": self.keyframe_interval,
            "max_frames": self.max_frames,
            "frames": list(self._frames),
            "last_codes": (
                self._last_codes.copy()
                if self._last_codes is not None
                else None
            ),
            "truncated": self.truncated,
            "keyframes": self.keyframes,
            "dropped": self.dropped,
            "num_nets": self._num_nets,
            "net_names": self._net_names,
            "port_nets": self._port_nets,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a checkpointed recording and continue appending."""
        self.keyframe_interval = int(state["keyframe_interval"])
        self.max_frames = int(state["max_frames"])
        self._frames = list(state["frames"])
        last = state.get("last_codes")
        self._last_codes = last.copy() if last is not None else None
        self.truncated = bool(state["truncated"])
        self.keyframes = int(state["keyframes"])
        self.dropped = int(state.get("dropped", 0))
        if not self._num_nets:
            self._num_nets = int(state["num_nets"])
            self._net_names = tuple(state.get("net_names", ()))
            self._port_nets = dict(state.get("port_nets", {}))
        # Re-intern the restored delta index arrays.
        self._interned = {}
        for kind, _, data in self._frames:
            if kind == FRAME_DELTA:
                self._interned.setdefault(data[0].tobytes(), data[0])

    def to_timeline(self, violations: Sequence = ()) -> "Timeline":
        """Freeze the recording into a queryable :class:`Timeline`."""
        return Timeline(
            frames=list(self._frames),
            num_nets=self._num_nets,
            net_names=self._net_names,
            port_nets=dict(self._port_nets),
            markers=resolve_markers(self._frames, violations),
            truncated=self.truncated,
            keyframe_interval=self.keyframe_interval,
        )


def resolve_markers(
    frames: Sequence[tuple], violations: Sequence
) -> List[TimelineMarker]:
    """Map each violation to the *latest* frame recorded at its cycle.

    The tracker re-simulates cycle numbers across restored paths; the
    latest frame is the most conservative (most merged) visit -- the
    same conflation direction as the provenance backward slice.
    """
    markers: List[TimelineMarker] = []
    by_cycle: Dict[int, int] = {}
    for index, (_, cycle, _) in enumerate(frames):
        by_cycle[int(cycle)] = index
    for index, violation in enumerate(violations):
        frame = by_cycle.get(int(violation.cycle))
        if frame is None:
            continue
        markers.append(
            TimelineMarker(
                frame=frame,
                cycle=int(violation.cycle),
                kind=str(violation.kind),
                condition=int(violation.condition),
                address=int(violation.address),
                task=str(violation.task or ""),
                index=index,
            )
        )
    return markers


class Timeline:
    """Scrub/query API over one recorded timeline.

    ``seek`` and friends take a *frame index* (the step sequence of the
    simulation -- the only globally monotonic clock the tracker has);
    ``cycle_of``/``frames_at_cycle``/``seek_cycle`` translate to and
    from SoC cycle numbers.
    """

    def __init__(
        self,
        frames: List[tuple],
        num_nets: int,
        net_names: Tuple[str, ...] = (),
        port_nets: Optional[Dict[str, Tuple[int, ...]]] = None,
        markers: Optional[List[TimelineMarker]] = None,
        truncated: bool = False,
        keyframe_interval: int = 64,
        meta: Optional[dict] = None,
    ):
        self._frames = frames
        self.num_nets = num_nets
        self.net_names = tuple(net_names)
        self.port_nets = dict(port_nets or {})
        self.markers = list(markers or [])
        self.truncated = truncated
        self.keyframe_interval = keyframe_interval
        self.meta = dict(meta or {})
        self._cycles = np.array(
            [cycle for _, cycle, _ in frames], dtype=np.int64
        )
        self._keyframe_indices = [
            index
            for index, (kind, _, _) in enumerate(frames)
            if kind == FRAME_KEY
        ]
        #: one-frame seek cache: scrubbing is usually sequential
        self._cache_frame = -1
        self._cache_codes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return len(self._frames)

    def cycle_of(self, frame: int) -> int:
        return int(self._cycles[self._check(frame)])

    @property
    def cycles(self) -> np.ndarray:
        """Per-frame SoC cycle numbers (read-only view)."""
        return self._cycles

    def _check(self, frame: int) -> int:
        frame = int(frame)
        if frame < 0:
            frame += len(self._frames)
        if not 0 <= frame < len(self._frames):
            raise IndexError(
                f"frame {frame} out of range; the timeline has "
                f"{len(self._frames)} frame(s)"
            )
        return frame

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def seek(self, frame: int) -> np.ndarray:
        """The full per-net code array at *frame* (a fresh copy).

        Cost is O(delta-window): the nearest keyframe at or before
        *frame* plus at most ``keyframe_interval - 1`` delta
        applications (one fewer when scrubbing forward frame by frame,
        served from the one-frame cache).
        """
        frame = self._check(frame)
        if frame == self._cache_frame and self._cache_codes is not None:
            return self._cache_codes.copy()
        start = frame
        codes: Optional[np.ndarray] = None
        if (
            self._cache_codes is not None
            and self._cache_frame < frame
            and self._frames[frame][0] != FRAME_KEY
        ):
            # Roll forward from the cached frame when that is nearer
            # than the previous keyframe.
            nearest_key = frame
            while self._frames[nearest_key][0] != FRAME_KEY:
                nearest_key -= 1
            if self._cache_frame >= nearest_key:
                codes = self._cache_codes.copy()
                start = self._cache_frame + 1
        if codes is None:
            while self._frames[start][0] != FRAME_KEY:
                start -= 1
            codes = self._frames[start][2].copy()
            start += 1
        for index in range(start, frame + 1):
            _, _, (changed, values) = self._frames[index]
            codes[changed] = values
        self._cache_frame = frame
        self._cache_codes = codes.copy()
        return codes

    def seek_cycle(self, cycle: int) -> np.ndarray:
        """The code array at the *latest* frame recorded for *cycle*."""
        return self.seek(self.latest_frame_at_cycle(cycle))

    def frames_at_cycle(self, cycle: int) -> List[int]:
        """Every frame index recorded with SoC cycle *cycle* (the
        tracker revisits cycle numbers across restored paths)."""
        return [int(i) for i in np.nonzero(self._cycles == cycle)[0]]

    def latest_frame_at_cycle(self, cycle: int) -> int:
        frames = self.frames_at_cycle(cycle)
        if not frames:
            raise IndexError(
                f"no frame recorded at cycle {cycle} "
                f"(timeline covers {self.num_frames} frame(s))"
            )
        return frames[-1]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def net_history(
        self, net: int, lo: int = 0, hi: Optional[int] = None
    ) -> List[Tuple[int, int, int, int]]:
        """``(frame, cycle, value, taint)`` for one net over a window.

        *lo*/*hi* are an inclusive frame range (*hi* defaults to the
        last frame).  Cost is one seek plus the window's deltas.
        """
        if not 0 <= int(net) < self.num_nets:
            raise IndexError(
                f"net {net} out of range (num_nets={self.num_nets})"
            )
        net = int(net)
        lo = self._check(lo)
        hi = self._check(hi if hi is not None else self.num_frames - 1)
        if hi < lo:
            return []
        codes = self.seek(lo)
        code = int(codes[net])
        history = [(lo, self.cycle_of(lo), code >> 1, code & 1)]
        for frame in range(lo + 1, hi + 1):
            kind, cycle, data = self._frames[frame]
            if kind == FRAME_KEY:
                code = int(data[net])
            else:
                changed, values = data
                hit = np.nonzero(changed == net)[0]
                if len(hit):
                    code = int(values[hit[0]])
            history.append((frame, int(cycle), code >> 1, code & 1))
        return history

    def first_tainted(self, net: int) -> Optional[Tuple[int, int]]:
        """``(frame, cycle)`` where *net* first became tainted, or None."""
        if not 0 <= int(net) < self.num_nets:
            raise IndexError(
                f"net {net} out of range (num_nets={self.num_nets})"
            )
        net = int(net)
        code = None
        for frame, (kind, cycle, data) in enumerate(self._frames):
            if kind == FRAME_KEY:
                code = int(data[net])
            else:
                changed, values = data
                hit = np.nonzero(changed == net)[0]
                if len(hit):
                    code = int(values[hit[0]])
            if code is not None and code & 1:
                return frame, int(cycle)
        return None

    def tainted_nets(self, frame: int) -> np.ndarray:
        """Net ids tainted at *frame*."""
        return np.nonzero(self.seek(frame) & 1)[0]

    def taint_frontier(self, frame: int) -> np.ndarray:
        """Net ids that *became* tainted at *frame* (vs the previous
        frame; at frame 0, every initially-tainted net)."""
        frame = self._check(frame)
        now = self.seek(frame) & 1
        if frame == 0:
            return np.nonzero(now)[0]
        before = self.seek(frame - 1) & 1
        return np.nonzero(now & ~before)[0]

    def taint_density(self) -> np.ndarray:
        """Per-frame fraction of tainted nets (feeds the sparkline)."""
        density = np.zeros(len(self._frames), dtype=np.float64)
        codes: Optional[np.ndarray] = None
        tainted = 0
        for frame, (kind, _, data) in enumerate(self._frames):
            if kind == FRAME_KEY:
                codes = data.copy()
                tainted = int(np.count_nonzero(codes & 1))
            else:
                changed, values = data
                assert codes is not None
                tainted += int(
                    np.count_nonzero(values & 1)
                    - np.count_nonzero(codes[changed] & 1)
                )
                codes[changed] = values
            density[frame] = tainted / max(1, self.num_nets)
        return density

    # ------------------------------------------------------------------
    # Naming / composition with provenance
    # ------------------------------------------------------------------
    def port_lanes(
        self, ports: Sequence[str]
    ) -> Dict[str, List[Tuple[int, int, int]]]:
        """Per-frame ``(bits, xmask, tmask)`` words for several ports.

        One forward pass over every frame (the viewer's bulk export
        path) instead of a :meth:`seek` per frame per port.
        """
        wanted = [
            (port, self.port_nets[port])
            for port in ports
            if port in self.port_nets
        ]
        lanes: Dict[str, List[Tuple[int, int, int]]] = {
            port: [] for port, _ in wanted
        }
        codes: Optional[np.ndarray] = None
        for kind, _, data in self._frames:
            if kind == FRAME_KEY:
                codes = data.copy()
            else:
                changed, values = data
                assert codes is not None
                codes[changed] = values
            for port, nets in wanted:
                bits = xmask = tmask = 0
                for bit, net in enumerate(nets):
                    code = int(codes[net])
                    probe = 1 << bit
                    value = code >> 1
                    if value == 2:
                        xmask |= probe
                    elif value:
                        bits |= probe
                    if code & 1:
                        tmask |= probe
                lanes[port].append((bits, xmask, tmask))
        return lanes

    def net_name(self, net: int) -> str:
        if 0 <= net < len(self.net_names) and self.net_names[net]:
            return self.net_names[net]
        return f"net{net}"

    def port_word(self, frame: int, port: str) -> Tuple[int, int, int]:
        """``(bits, xmask, tmask)`` of a named port at *frame*."""
        nets = self.port_nets.get(port)
        if nets is None:
            known = ", ".join(sorted(self.port_nets))
            raise KeyError(
                f"unknown port {port!r} (timeline has ports: {known})"
            )
        codes = self.seek(frame)
        bits = xmask = tmask = 0
        for bit, net in enumerate(nets):
            code = int(codes[net])
            probe = 1 << bit
            value = code >> 1
            if value == 2:
                xmask |= probe
            elif value:
                bits |= probe
            if code & 1:
                tmask |= probe
        return bits, xmask, tmask

    def slice_nets_tainted_at(
        self, flow, frame: Optional[int] = None
    ) -> List[int]:
        """Which of a provenance FlowSlice's sink nets are tainted at
        *frame* (default: the slice's violation cycle) -- walking an
        explanation against true per-cycle state."""
        if frame is None:
            frame = self.latest_frame_at_cycle(flow.cycle)
        codes = self.seek(frame)
        return [
            int(net)
            for net in flow.sink_nets
            if 0 <= int(net) < self.num_nets and codes[int(net)] & 1
        ]


# ---------------------------------------------------------------------------
# File I/O (shared container codec with repro.resilience.checkpoint)
# ---------------------------------------------------------------------------
def save_timeline(
    path,
    recorder: TimelineRecorder,
    violations: Sequence = (),
    meta: Optional[dict] = None,
):
    """Write one ``.timeline`` file; returns the path."""
    # Imported here, not at module top: repro.resilience itself imports
    # repro.obs (for the observer), so the shared codec must load lazily.
    from repro.resilience.checkpoint import write_container

    markers = resolve_markers(recorder._frames, violations)
    payload = {
        "frames": list(recorder._frames),
        "num_nets": recorder._num_nets,
        "net_names": recorder._net_names,
        "port_nets": recorder._port_nets,
        "markers": [vars(marker) for marker in markers],
        "truncated": recorder.truncated,
        "keyframe_interval": recorder.keyframe_interval,
    }
    header_meta = {
        "frames": len(recorder._frames),
        "keyframes": recorder.keyframes,
        "nets": recorder._num_nets,
        "markers": len(markers),
        "truncated": recorder.truncated,
    }
    if meta:
        header_meta.update(meta)
    return write_container(
        path,
        TIMELINE_MAGIC,
        TIMELINE_VERSION,
        payload,
        meta=header_meta,
        kind="timeline",
        code_prefix="TIMELINE",
    )


def read_timeline_header(path) -> dict:
    """Validate magic/version and return a ``.timeline`` JSON header."""
    from repro.resilience.checkpoint import read_container_header

    return read_container_header(
        path,
        TIMELINE_MAGIC,
        TIMELINE_VERSION,
        kind="timeline",
        code_prefix="TIMELINE",
    )


def load_timeline(path) -> Timeline:
    """Load a ``.timeline`` file into a :class:`Timeline`."""
    from repro.resilience.checkpoint import read_container

    header, payload = read_container(
        path,
        TIMELINE_MAGIC,
        TIMELINE_VERSION,
        kind="timeline",
        code_prefix="TIMELINE",
    )
    return Timeline(
        frames=payload["frames"],
        num_nets=payload["num_nets"],
        net_names=tuple(payload.get("net_names", ())),
        port_nets=payload.get("port_nets", {}),
        markers=[
            TimelineMarker(**marker) for marker in payload.get("markers", ())
        ],
        truncated=payload.get("truncated", False),
        keyframe_interval=payload.get("keyframe_interval", 64),
        meta=header,
    )


# ---------------------------------------------------------------------------
# Process-wide hook (mirrors repro.obs.provenance.get_recorder)
# ---------------------------------------------------------------------------
_timeline: Optional[TimelineRecorder] = None


def get_timeline() -> Optional[TimelineRecorder]:
    """The installed timeline recorder, or None (the fast path)."""
    return _timeline


def install_timeline(
    recorder: Optional[TimelineRecorder],
) -> Optional[TimelineRecorder]:
    """Install *recorder* process-wide; returns the previous one."""
    global _timeline
    previous = _timeline
    _timeline = recorder
    return previous


@contextmanager
def record_timeline(recorder: TimelineRecorder):
    """Install *recorder* for the duration of a ``with`` block."""
    previous = install_timeline(recorder)
    try:
        yield recorder
    finally:
        install_timeline(previous)
