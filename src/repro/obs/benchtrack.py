"""Continuous benchmark-regression tracking for ``repro bench``.

The benchmarks under ``benchmarks/`` already emit one ``BENCH_*.json``
artifact each (schema 3: ``git_rev``/``utc``/``host``/``wall_seconds``,
plus ``cycles_per_second`` for cycle-based benches).  Those are
*snapshots* -- the committed file only shows the latest number.  This
module adds the time axis:

* :func:`run_benches` executes selected bench modules through pytest in
  a subprocess and collects the documents they emitted;
* :func:`append_history` appends each document as one line of the
  ``BENCH_history.jsonl`` ledger, so every run of ``repro bench``
  extends a git-rev-stamped series;
* :func:`detect_regressions` walks the ledger per (bench, metric) and
  flags the latest entry when it degrades beyond both a **relative
  threshold** and a **noise bar** (median absolute deviation of the
  history) -- a 2x slowdown on a stable series is confirmed, the same
  ratio inside a noisy series is only suspected;
* :func:`render_dashboard` turns the ledger into a self-contained HTML
  page with an inline-SVG sparkline per series.

CI runs ``repro bench --quick --check`` as the ``perf-smoke`` gate:
exit 1 when a confirmed regression lands.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from html import escape
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Schema of one BENCH_history.jsonl line (the artifact document plus
#: nothing -- the common keys come from benchmarks/_emit.py).
HISTORY_SCHEMA = 3

#: The fastest meaningful benches; the CI perf-smoke gate runs only
#: these (``repro bench --quick``) to stay under a minute.  The event
#: engine entry keeps its dense-vs-event speedup under the regression
#: detector on every CI run.
QUICK_BENCHES = (
    "bench_engine_event.py",
    "bench_fig1_glift_nand.py",
    "bench_fig7_tree.py",
)

#: (metric key, direction) pairs the detector watches.  ``+1`` means
#: higher is a regression (times), ``-1`` means lower is (throughput).
TRACKED_METRICS: Tuple[Tuple[str, int], ...] = (
    ("wall_seconds", +1),
    ("cycles_per_second", -1),
)


def bench_dir(repo_root: Optional[Path] = None) -> Path:
    root = repo_root or Path.cwd()
    return root / "benchmarks"


def select_benches(
    repo_root: Optional[Path] = None,
    quick: bool = False,
    only: Sequence[str] = (),
) -> List[Path]:
    """The bench modules a run covers, sorted for determinism."""
    directory = bench_dir(repo_root)
    modules = sorted(directory.glob("bench_*.py"))
    if quick:
        modules = [m for m in modules if m.name in QUICK_BENCHES]
    if only:
        modules = [
            m
            for m in modules
            if any(fragment in m.name for fragment in only)
        ]
    return modules


def emitted_names(module: Path) -> List[str]:
    """The BENCH document names a bench module emits (static scan)."""
    return re.findall(
        r"bench_json\(\s*[\"']([\w-]+)[\"']", module.read_text()
    )


def run_benches(
    modules: Sequence[Path],
    out_dir: Optional[Path] = None,
    timeout: float = 1800.0,
) -> Tuple[int, List[dict]]:
    """Run *modules* under pytest; return (exit code, emitted docs).

    The subprocess inherits ``$REPRO_BENCH_DIR`` (or *out_dir*), so the
    artifacts land where the caller wants them and are read back for the
    ledger.  A non-zero pytest exit is reported, not raised -- partial
    artifacts are still collected so a crashing bench does not lose the
    others' numbers.
    """
    if not modules:
        return 0, []
    env = dict(os.environ)
    if out_dir is not None:
        env["REPRO_BENCH_DIR"] = str(out_dir)
    where = Path(env.get("REPRO_BENCH_DIR", Path.cwd()))
    repo_root = modules[0].parent.parent
    env.setdefault("PYTHONPATH", str(repo_root / "src"))
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            *[str(m) for m in modules],
            "-q",
            "-p",
            "no:cacheprovider",
        ],
        cwd=repo_root,
        env=env,
        timeout=timeout,
        # pytest's progress belongs on stderr: the caller's stdout may
        # be a machine-readable stream (``repro bench --json``).
        stdout=subprocess.PIPE,
        text=True,
    )
    if proc.stdout:
        sys.stderr.write(proc.stdout)
    documents = []
    for module in modules:
        for name in emitted_names(module):
            path = where / f"BENCH_{name}.json"
            if path.exists():
                try:
                    documents.append(json.loads(path.read_text()))
                except ValueError:
                    pass  # torn artifact: the run crashed mid-write
    return proc.returncode, documents


# ---------------------------------------------------------------------------
# The ledger
# ---------------------------------------------------------------------------
def history_path(repo_root: Optional[Path] = None) -> Path:
    return (repo_root or Path.cwd()) / "BENCH_history.jsonl"


def append_history(path: Path, documents: Sequence[dict]) -> int:
    """Append one JSONL line per document; returns lines written."""
    if not documents:
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        for document in documents:
            handle.write(json.dumps(document, sort_keys=True) + "\n")
    return len(documents)


def load_history(path: Path) -> List[dict]:
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except ValueError:
            continue  # a torn trailing line must not sink the ledger
    return entries


def _series(history: Sequence[dict]) -> Dict[str, List[dict]]:
    by_bench: Dict[str, List[dict]] = {}
    for entry in history:
        name = entry.get("bench")
        if name:
            by_bench.setdefault(name, []).append(entry)
    return by_bench


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mad(values: Sequence[float], center: float) -> float:
    return _median([abs(value - center) for value in values])


def detect_regressions(
    history: Sequence[dict],
    threshold: float = 0.30,
    mad_factor: float = 4.0,
    min_history: int = 3,
) -> List[dict]:
    """Noise-aware check of each series' latest entry.

    For every (bench, metric) series with at least *min_history* prior
    entries, the latest value is compared against the **median** of the
    prior entries.  It is flagged when it degrades by more than
    *threshold* (relative) **and** clears the noise bar: the degradation
    must exceed ``mad_factor`` times the prior entries' median absolute
    deviation.  A series whose MAD is zero (perfectly stable) uses the
    relative threshold alone.

    Returns one finding per flagged series::

        {"bench", "metric", "latest", "baseline_median", "mad",
         "ratio", "confirmed": True, "git_rev", "prior_runs"}

    Entries missing the metric (e.g. ``cycles_per_second`` on a bench
    with no cycle notion) simply drop out of that series.
    """
    findings: List[dict] = []
    for bench, entries in sorted(_series(history).items()):
        for metric, direction in TRACKED_METRICS:
            values = [
                float(entry[metric])
                for entry in entries
                if isinstance(entry.get(metric), (int, float))
            ]
            if len(values) < min_history + 1:
                continue
            latest = values[-1]
            prior = values[:-1]
            baseline = _median(prior)
            if baseline <= 0:
                continue
            mad = _mad(prior, baseline)
            if direction > 0:
                degraded = latest - baseline
                ratio = latest / baseline
            else:
                degraded = baseline - latest
                ratio = baseline / latest if latest > 0 else float("inf")
            relative = degraded / baseline
            if relative <= threshold:
                continue
            if mad > 0 and degraded <= mad_factor * mad:
                continue  # inside the series' own noise envelope
            findings.append(
                {
                    "bench": bench,
                    "metric": metric,
                    "latest": latest,
                    "baseline_median": baseline,
                    "mad": mad,
                    "ratio": ratio,
                    "confirmed": True,
                    "git_rev": entries[-1].get("git_rev", "unknown"),
                    "prior_runs": len(prior),
                }
            )
    return findings


# ---------------------------------------------------------------------------
# The dashboard
# ---------------------------------------------------------------------------
_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
         border-bottom: 1px solid #e3e3ef; }
th { background: #f4f4fb; }
.regressed { background: #fdecea; }
.spark { vertical-align: middle; }
.muted { color: #777; font-size: 0.8rem; }
"""


def _sparkline(values: Sequence[float], width=160, height=36) -> str:
    """One inline-SVG sparkline; the last point gets a marker dot."""
    if not values:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    step = width / max(1, len(values) - 1)
    points = [
        (
            round(index * step, 1),
            round(
                height - 4 - (value - low) / span * (height - 8), 1
            ),
        )
        for index, value in enumerate(values)
    ]
    polyline = " ".join(f"{x},{y}" for x, y in points)
    cx, cy = points[-1]
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{polyline}" fill="none" '
        f'stroke="#5c5cd6" stroke-width="1.5"/>'
        f'<circle cx="{cx}" cy="{cy}" r="2.5" fill="#d64545"/></svg>'
    )


def render_dashboard(
    history: Sequence[dict], findings: Sequence[dict] = ()
) -> str:
    """The perf-trend page: one row per (bench, metric) series."""
    flagged = {(f["bench"], f["metric"]) for f in findings}
    rows: List[str] = []
    for bench, entries in sorted(_series(history).items()):
        for metric, _direction in TRACKED_METRICS:
            values = [
                float(entry[metric])
                for entry in entries
                if isinstance(entry.get(metric), (int, float))
            ]
            if not values:
                continue
            latest_entry = entries[-1]
            css = ' class="regressed"' if (bench, metric) in flagged else ""
            rows.append(
                f"<tr{css}><td>{escape(bench)}</td>"
                f"<td>{escape(metric)}</td>"
                f"<td>{len(values)}</td>"
                f"<td>{values[-1]:.6g}</td>"
                f"<td>{_median(values):.6g}</td>"
                f"<td>{_sparkline(values)}</td>"
                f"<td class=\"muted\">"
                f"{escape(str(latest_entry.get('git_rev', ''))[:10])} "
                f"{escape(str(latest_entry.get('utc', '')))}</td></tr>"
            )
    finding_rows = "".join(
        f"<tr><td>{escape(f['bench'])}</td><td>{escape(f['metric'])}</td>"
        f"<td>{f['latest']:.6g}</td><td>{f['baseline_median']:.6g}</td>"
        f"<td>{f['ratio']:.2f}x</td><td>{f['prior_runs']}</td></tr>"
        for f in findings
    )
    findings_html = (
        "<h2>Confirmed regressions</h2><table><tr><th>bench</th>"
        "<th>metric</th><th>latest</th><th>baseline</th><th>ratio</th>"
        "<th>prior runs</th></tr>" + finding_rows + "</table>"
        if findings
        else "<p>No confirmed regressions.</p>"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>repro bench trends</title>"
        f"<style>{_STYLE}</style></head><body>"
        "<h1>Benchmark trends</h1>"
        f"<p class='muted'>{len(history)} ledger entries; red dot marks "
        "the latest run of each series.</p>"
        + findings_html
        + "<h2>Series</h2><table><tr><th>bench</th><th>metric</th>"
        "<th>runs</th><th>latest</th><th>median</th><th>trend</th>"
        "<th>last run</th></tr>"
        + "".join(rows)
        + "</table></body></html>"
    )
