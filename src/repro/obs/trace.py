"""Structured event tracing: typed JSONL, one event per line.

Every event is a flat JSON object with two reserved fields -- ``event``
(the type tag) and ``wall`` (seconds since the recorder opened) -- plus
arbitrary type-specific fields.  The schema is documented in DESIGN.md
("Observability"); the event types emitted by the pipeline are:

=====================  ====================================================
``fork``               PC concretisation split (tracker)
``merge``              conservative-state widening at a merge point
``prune``              a path stopped because its state was already covered
``widen``              exploration continued from the conservative state
``violation``          one policy violation from the completed analysis
``step``               per-cycle summary from the gate-level runner
``transform_applied``  one repair rewrite (watchdog bound / store mask)
``reverify``           a re-analysis round inside the secure-compile loop
=====================  ====================================================
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Optional, Union

from repro.obs.clock import CLOCK, Clock


def _jsonable(value):
    """Last-resort JSON conversion (numpy scalars, arbitrary objects)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    return str(value)


class TraceRecorder:
    """Appends typed events to a JSONL sink (path or file-like object)."""

    def __init__(
        self,
        sink: Union[str, Path, io.TextIOBase],
        clock: Clock = CLOCK,
    ):
        if isinstance(sink, (str, Path)):
            self._file = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self._clock = clock
        self._start = clock.wall()
        self.events_written = 0

    def emit(self, event: str, **fields) -> None:
        record = {
            "event": event,
            "wall": round(self._clock.wall() - self._start, 6),
        }
        record.update(fields)
        self._file.write(json.dumps(record, default=_jsonable) + "\n")
        self.events_written += 1

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path]):
    """Parse a JSONL trace back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
