"""Structured event tracing: typed JSONL, one event per line.

Every event is a flat JSON object with four reserved fields -- ``event``
(the type tag), ``wall`` (seconds since the recorder opened), ``v`` (the
trace schema version, currently :data:`TRACE_SCHEMA_VERSION`), and
``seq`` (a per-recorder monotonic sequence number, checkpoint-restorable
so a resumed run continues the uninterrupted numbering) -- plus
type-specific fields.  :data:`EVENT_SCHEMAS` documents every event type
the pipeline emits and is what ``repro trace-lint`` validates against:

=======================  ==================================================
``fork``                 PC concretisation split (tracker)
``merge``                conservative-state widening at a merge point
``prune``                a path stopped because its state was covered
``widen``                exploration continued from the conservative state
``violation``            one policy violation from the completed analysis
``step``                 per-cycle summary from the gate-level runner
``transform_applied``    one repair rewrite (watchdog bound / store mask)
``reverify``             a re-analysis round inside the secure-compile loop
``interrupted``          cooperative interrupt stopped the exploration
``degraded``             one unexplored path widened away (budget)
``budget_exhausted``     a budget axis ran out; worklist drained
``checkpoint_saved``     analysis state persisted to disk
``fault_injected``       the fault injector fired
``provenance``           provenance-recording summary for a finished run
``provenance_truncated`` the provenance ring wrapped; slices best-effort
``timeline``             flight-recorder summary for a finished analysis
``record``               one ``repro record`` run wrote a .timeline file
``progress``             periodic exploration-progress snapshot
=======================  ==================================================

Beyond the reserved fields, every event may carry the **correlation
context** -- ``job_id``, ``attempt`` and ``run_id`` -- stamped by the
recorder itself (:meth:`TraceRecorder.set_context`) so a journaled
service job joins its trace stream one-to-one: the daemon's job record
names the trace file, and every line in it names the job back.
:func:`lint_trace` enforces that the context, once present, is
consistent across the whole trace.

Version history: v1 (unversioned) had no ``v``/``seq`` fields; v2 added
them plus the provenance events; v3 added the timeline events
(``timeline``, ``record``, the ``step`` event's ``timeline_frames``
field) and made a trace with zero events a lint problem; v4 added the
``progress`` event (periodic exploration snapshots with a bounded ETA),
the recorder-stamped correlation context (``job_id``/``attempt``/
``run_id`` on *every* event), and the lint rules that go with both:
``progress`` counters must be monotone non-decreasing and the
correlation context must not change mid-trace.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.clock import CLOCK, Clock

#: Schema version stamped into every event's ``v`` field.
TRACE_SCHEMA_VERSION = 4

#: Fields present on every event, owned by the recorder itself.
RESERVED_FIELDS = frozenset({"event", "wall", "v", "seq"})

#: Job-correlation fields the recorder may stamp on every event (v4).
#: They are neither required nor "undeclared": any event may carry them,
#: and :func:`lint_trace` checks they stay consistent across the trace.
CORRELATION_FIELDS = frozenset({"job_id", "attempt", "run_id"})

#: Per-event-type field contracts: required fields must be present,
#: optional ones may be; anything else is flagged by :func:`lint_trace`.
EVENT_SCHEMAS: Dict[str, Dict[str, frozenset]] = {
    "fork": {
        "required": frozenset(
            {"site", "node", "children", "targets", "pc_tainted", "cycle"}
        ),
        "optional": frozenset(),
    },
    "merge": {
        "required": frozenset({"site", "cycle"}),
        "optional": frozenset(),
    },
    "prune": {
        "required": frozenset({"site", "node", "cycle"}),
        "optional": frozenset(),
    },
    "widen": {
        "required": frozenset({"site", "node", "cycle"}),
        "optional": frozenset(),
    },
    "violation": {
        "required": frozenset(
            {"kind", "condition", "address", "task", "advisory"}
        ),
        "optional": frozenset(),
    },
    "step": {
        "required": frozenset(
            {"cycle", "phase", "pc", "reset", "read", "write", "port_events"}
        ),
        "optional": frozenset({"provenance_edges", "timeline_frames"}),
    },
    "transform_applied": {
        "required": frozenset({"kind", "iteration"}),
        "optional": frozenset({"task", "slices", "interval", "address"}),
    },
    "reverify": {
        "required": frozenset({"iteration", "after"}),
        "optional": frozenset(),
    },
    "interrupted": {
        "required": frozenset({"reason", "checkpoint", "paths", "cycles"}),
        "optional": frozenset(),
    },
    "degraded": {
        "required": frozenset({"node", "cycle", "reasons"}),
        "optional": frozenset(),
    },
    "budget_exhausted": {
        "required": frozenset({"reasons", "paths", "cycles", "drained"}),
        "optional": frozenset(),
    },
    "checkpoint_saved": {
        "required": frozenset({"path", "paths", "cycles", "reason"}),
        "optional": frozenset(),
    },
    "fault_injected": {
        "required": frozenset({"kind", "cycle"}),
        "optional": frozenset(),
    },
    "provenance": {
        "required": frozenset(
            {"edges", "retained", "capacity", "truncated", "labels"}
        ),
        "optional": frozenset(),
    },
    "provenance_truncated": {
        "required": frozenset({"edges", "capacity"}),
        "optional": frozenset(),
    },
    "timeline": {
        "required": frozenset({"frames", "keyframes", "truncated"}),
        "optional": frozenset({"max_frames"}),
    },
    "record": {
        "required": frozenset(
            {"out", "frames", "keyframes", "cycles", "truncated"}
        ),
        "optional": frozenset({"workload", "bytes"}),
    },
    "progress": {
        "required": frozenset(
            {
                "paths",
                "pending",
                "cycles",
                "merged_states",
                "violations",
                "fraction",
            }
        ),
        "optional": frozenset(
            {"eta_seconds", "rate_paths_per_s", "budget"}
        ),
    },
    # -- analysis-service job lifecycle (repro.service) ----------------
    "service_started": {
        "required": frozenset({"jobs", "recovered"}),
        "optional": frozenset(),
    },
    "service_drain": {
        "required": frozenset({"jobs"}),
        "optional": frozenset(),
    },
    "job_submitted": {
        "required": frozenset({"job", "name"}),
        "optional": frozenset(),
    },
    "job_started": {
        "required": frozenset({"job", "attempt", "shed"}),
        "optional": frozenset(),
    },
    "job_retrying": {
        "required": frozenset({"job", "attempt", "delay", "reason"}),
        "optional": frozenset(),
    },
    "job_finished": {
        "required": frozenset(
            {"job", "state", "verdict", "exit_code", "attempts"}
        ),
        "optional": frozenset(),
    },
    "worker_killed": {
        "required": frozenset({"job", "reason"}),
        "optional": frozenset(),
    },
}


def _jsonable(value):
    """Last-resort JSON conversion (numpy scalars, arbitrary objects)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    return str(value)


class TraceRecorder:
    """Appends typed events to a JSONL sink (path or file-like object)."""

    def __init__(
        self,
        sink: Union[str, Path, io.TextIOBase],
        clock: Clock = CLOCK,
        context: Optional[Dict[str, object]] = None,
    ):
        if isinstance(sink, (str, Path)):
            self._file = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self._clock = clock
        self._start = clock.wall()
        self.events_written = 0
        #: next event's ``seq``; runs ahead of ``events_written`` after a
        #: checkpoint restore so resumed runs continue the original
        #: numbering instead of restarting at zero
        self.sequence = 0
        #: correlation context stamped on every event (v4); keys limited
        #: to :data:`CORRELATION_FIELDS`
        self.context: Dict[str, object] = {}
        if context:
            self.set_context(**context)

    def set_context(self, **fields) -> None:
        """Stamp *fields* (``job_id``/``attempt``/``run_id``) on every
        event emitted from now on.  ``None`` values drop the key."""
        unknown = set(fields) - CORRELATION_FIELDS
        if unknown:
            raise ValueError(
                f"unknown correlation field(s) {sorted(unknown)}; "
                f"allowed: {sorted(CORRELATION_FIELDS)}"
            )
        for key, value in fields.items():
            if value is None:
                self.context.pop(key, None)
            else:
                self.context[key] = value

    def emit(self, event: str, **fields) -> None:
        record = {
            "event": event,
            "wall": round(self._clock.wall() - self._start, 6),
            "v": TRACE_SCHEMA_VERSION,
            "seq": self.sequence,
        }
        if self.context:
            record.update(self.context)
        record.update(fields)
        self._file.write(json.dumps(record, default=_jsonable) + "\n")
        self.events_written += 1
        self.sequence += 1

    def set_sequence(self, sequence: int) -> None:
        """Continue numbering from *sequence* (checkpoint restore)."""
        self.sequence = sequence

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path]):
    """Parse a JSONL trace back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def lint_trace(path: Union[str, Path]) -> List[str]:
    """Validate a JSONL trace against :data:`EVENT_SCHEMAS`.

    Returns a list of human-readable problems (empty for a clean trace):
    unparseable lines, missing reserved fields, wrong schema version,
    duplicated or non-monotonic sequence numbers (flagged with the
    likely cause when they follow a checkpoint/resume splice: the
    resumed recorder restarting its cursor), unknown event types,
    missing or
    undeclared event fields, an inconsistent correlation context (the
    ``job_id``/``attempt``/``run_id`` stamp must be identical on every
    event of a trace -- a mid-trace change means two runs' events were
    interleaved into one file), regressing ``progress`` counters
    (``paths``/``cycles``/``fraction`` must be monotone non-decreasing),
    and a trace with no events at all (an empty
    or fully-blank file is evidence of a truncated or failed run, not a
    clean one).  Undecodable bytes are replaced, never raised, so a
    binary or truncated file lints as problems instead of crashing.
    """
    problems: List[str] = []
    last_sequence = None
    events_seen = 0
    #: correlation context established by the first event (None until
    #: then); every later event must match it exactly.
    expected_context: Optional[Dict[str, object]] = None
    #: high-water marks of the monotone progress counters
    progress_marks: Dict[str, float] = {}
    #: a checkpoint/interrupt boundary has passed; a seq violation after
    #: one is the classic resume-splice bug (the resumed recorder
    #: restarted numbering instead of continuing the original cursor).
    splice_boundary = False
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            events_seen += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                problems.append(f"line {line_no}: unparseable JSON ({error})")
                continue
            if not isinstance(record, dict):
                problems.append(f"line {line_no}: event is not an object")
                continue
            for reserved in ("event", "wall", "v", "seq"):
                if reserved not in record:
                    problems.append(
                        f"line {line_no}: missing reserved field "
                        f"{reserved!r}"
                    )
            version = record.get("v")
            if version is not None and version != TRACE_SCHEMA_VERSION:
                problems.append(
                    f"line {line_no}: schema version {version!r} != "
                    f"{TRACE_SCHEMA_VERSION}"
                )
            sequence = record.get("seq")
            if isinstance(sequence, int):
                if last_sequence is not None and sequence <= last_sequence:
                    splice_note = (
                        " after a checkpoint/resume splice (the resumed "
                        "recorder must continue the saved sequence "
                        "cursor, not restart it)"
                        if splice_boundary
                        else ""
                    )
                    if sequence == last_sequence:
                        problems.append(
                            f"line {line_no}: duplicated seq {sequence}"
                            + splice_note
                        )
                    else:
                        problems.append(
                            f"line {line_no}: seq {sequence} not greater "
                            f"than previous {last_sequence}" + splice_note
                        )
                last_sequence = sequence
            if record.get("event") in ("interrupted", "checkpoint_saved"):
                splice_boundary = True
            context = {
                key: record[key]
                for key in CORRELATION_FIELDS
                if key in record
            }
            if expected_context is None:
                expected_context = context
            elif context != expected_context:
                changed = sorted(
                    key
                    for key in CORRELATION_FIELDS
                    if context.get(key) != expected_context.get(key)
                )
                problems.append(
                    f"line {line_no}: correlation context changed "
                    f"mid-trace (field(s) {', '.join(changed)}): "
                    f"{context!r} != {expected_context!r}"
                )
            event = record.get("event")
            if event is None:
                continue
            if event == "progress":
                for counter in ("paths", "cycles", "fraction"):
                    value = record.get(counter)
                    if not isinstance(value, (int, float)):
                        continue
                    mark = progress_marks.get(counter)
                    if mark is not None and value < mark:
                        problems.append(
                            f"line {line_no}: progress: {counter} "
                            f"regressed ({value} < {mark})"
                        )
                    else:
                        progress_marks[counter] = value
            schema = EVENT_SCHEMAS.get(event)
            if schema is None:
                problems.append(
                    f"line {line_no}: unknown event type {event!r}"
                )
                continue
            present = set(record) - RESERVED_FIELDS - CORRELATION_FIELDS
            missing = schema["required"] - present
            for name in sorted(missing):
                problems.append(
                    f"line {line_no}: {event}: missing field {name!r}"
                )
            unknown = present - schema["required"] - schema["optional"]
            for name in sorted(unknown):
                problems.append(
                    f"line {line_no}: {event}: undeclared field {name!r}"
                )
    if events_seen == 0:
        problems.append(
            "trace contains no events (empty or truncated file)"
        )
    return problems
