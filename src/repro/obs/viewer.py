"""Self-contained HTML time-travel viewer for ``.timeline`` files.

:func:`build_viewer` turns one :class:`~repro.obs.timeline.Timeline`
into a single HTML document with zero external references -- every
style, script and data byte is inline, same contract as
``repro.obs.report`` (which stays script-free; the viewer needs inline
JS for the scrubber and carries it all in this one file).

The page shows a cycle scrubber over every recorded frame, one
value/taint lane per CPU port (hex word, X-masked bits, tainted bits
highlighted), a taint-density sparkline with a playhead, and one marker
per violation that jumps the scrubber to the violation's frame and
lists the tainted sink nets there -- the same nets ``repro explain``
names, read from true per-cycle state instead of a backward slice.
"""

from __future__ import annotations

import json
from html import escape
from typing import List, Optional, Sequence

from repro.obs.timeline import Timeline

#: Ports rendered as lanes, in display order; missing ones are skipped
#: (custom circuits may not expose the debug ports).
DEFAULT_LANES = (
    "dbg_pc",
    "dbg_ir",
    "dbg_phase",
    "pmem_addr",
    "pmem_rdata",
    "dmem_addr",
    "dmem_wdata",
    "dmem_rdata",
    "dmem_wen",
    "dmem_ren",
)

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 64em; color: #1a1a2e; }
code, .mono { font-family: 'SF Mono', Consolas, monospace;
              font-size: 0.92em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
.scrub { display: flex; align-items: center; gap: 0.8em; margin: 1em 0; }
.scrub input[type=range] { flex: 1 1 0; }
.readout { min-width: 15em; font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; width: 100%; margin: 0.8em 0; }
th, td { border: 1px solid #d5d5e0; padding: 0.3em 0.6em;
         text-align: left; font-size: 0.92em; }
th { background: #f0f0f7; }
td.tainted { background: #fde2e2; color: #7f1d1d; font-weight: 600; }
td.unknown { color: #6b7280; font-style: italic; }
.spark { width: 100%; height: 72px; background: #f7f7fc;
         border: 1px solid #d5d5e0; border-radius: 6px; }
.spark-caption { color: #52525b; font-size: 0.85em; }
.marker { display: inline-block; margin: 0.2em 0.4em 0.2em 0;
          padding: 0.3em 0.7em; border: 1px solid #b91c1c;
          border-radius: 6px; background: #fde2e2; color: #7f1d1d;
          cursor: pointer; font-size: 0.9em; }
.marker:hover { background: #fbc9c9; }
.nets { background: #f7f7fc; border: 1px solid #d5d5e0;
        border-radius: 6px; padding: 0.7em 1em; margin: 0.6em 0;
        font-size: 0.9em; overflow-x: auto; }
.trunc { color: #b45309; font-size: 0.9em; }
footer { margin-top: 3em; color: #6b7280; font-size: 0.85em; }
"""

_SCRIPT = """
'use strict';
const D = JSON.parse(document.getElementById('tl-data').textContent);
const scrub = document.getElementById('scrub');
const readout = document.getElementById('readout');
const playhead = document.getElementById('playhead');
const taintedCount = document.getElementById('tainted-count');
const SPARK_W = 600, SPARK_H = 60;

function hexWord(bits, xmask, tmask, width) {
  const nibbles = Math.max(1, Math.ceil(width / 4));
  let out = '';
  for (let n = nibbles - 1; n >= 0; n--) {
    const shift = n * 4;
    const x = (xmask >> shift) & 0xf;
    if (x) { out += 'X'; }
    else { out += ((bits >> shift) & 0xf).toString(16); }
  }
  return '0x' + out;
}

function render(frame) {
  frame = Math.max(0, Math.min(D.cycles.length - 1, frame | 0));
  scrub.value = frame;
  readout.textContent = 'frame ' + frame + ' / ' +
    (D.cycles.length - 1) + ' \\u00b7 cycle ' + D.cycles[frame];
  for (const port of D.lane_order) {
    const [bits, xmask, tmask] = D.lanes[port][frame];
    const cell = document.getElementById('lane-' + port);
    const width = D.lane_widths[port];
    cell.textContent = hexWord(bits, xmask, tmask, width) +
      (tmask ? ' \\u26a0 taint=0x' + tmask.toString(16) : '');
    cell.className = tmask ? 'mono tainted'
      : (xmask ? 'mono unknown' : 'mono');
  }
  taintedCount.textContent =
    D.tainted[frame] + ' of ' + D.num_nets + ' nets tainted (' +
    (100 * D.tainted[frame] / D.num_nets).toFixed(1) + '%)';
  const x = D.cycles.length > 1
    ? frame * SPARK_W / (D.cycles.length - 1) : 0;
  playhead.setAttribute('x1', x);
  playhead.setAttribute('x2', x);
}

scrub.addEventListener('input', () => render(+scrub.value));
document.querySelectorAll('.marker').forEach((button) => {
  button.addEventListener('click', () => render(+button.dataset.frame));
});
document.addEventListener('keydown', (event) => {
  if (event.key === 'ArrowLeft') { render(+scrub.value - 1); }
  if (event.key === 'ArrowRight') { render(+scrub.value + 1); }
});
render(D.markers.length ? D.markers[0].frame : 0);
"""


def _sparkline_svg(density: Sequence[float]) -> str:
    """The taint-density curve as one inline SVG with a JS playhead."""
    width, height = 600, 60
    count = len(density)
    if count == 0:
        return "<p class='spark-caption'>no frames recorded</p>"
    points = []
    for index, value in enumerate(density):
        x = index * width / max(1, count - 1) if count > 1 else 0
        y = height - value * (height - 4) - 2
        points.append(f"{x:.1f},{y:.1f}")
    return (
        f"<svg class='spark' viewBox='0 0 {width} {height}' "
        "preserveAspectRatio='none'>"
        f"<polyline points='{' '.join(points)}' fill='none' "
        "stroke='#6366f1' stroke-width='1.5'/>"
        f"<line id='playhead' x1='0' y1='0' x2='0' y2='{height}' "
        "stroke='#b91c1c' stroke-width='1.5'/>"
        "</svg>"
    )


def build_viewer(
    timeline: Timeline,
    title: Optional[str] = None,
    lanes: Sequence[str] = DEFAULT_LANES,
) -> str:
    """One self-contained HTML document scrubbing *timeline*."""
    title = title or "GLIFT timeline viewer"
    lane_order = [port for port in lanes if port in timeline.port_nets]
    lane_data = timeline.port_lanes(lane_order)
    density = timeline.taint_density()
    tainted = [int(round(value * timeline.num_nets)) for value in density]
    markers = []
    for marker in timeline.markers:
        # Tainted port bits at the violation frame, named the same way
        # provenance names them ("port[bit]"), so the viewer and
        # ``repro explain`` agree on what is tainted at the sink.
        codes = timeline.seek(marker.frame)
        tainted_nets = sorted(
            f"{port}[{bit}]"
            for port, nets in timeline.port_nets.items()
            for bit, net in enumerate(nets)
            if codes[net] & 1
        )
        markers.append(
            {
                "frame": marker.frame,
                "cycle": marker.cycle,
                "kind": marker.kind,
                "condition": marker.condition,
                "address": marker.address,
                "task": marker.task,
                "tainted_ports": tainted_nets,
            }
        )
    data = {
        "cycles": [int(c) for c in timeline.cycles],
        "lanes": lane_data,
        "lane_order": lane_order,
        "lane_widths": {
            port: len(timeline.port_nets[port]) for port in lane_order
        },
        "density": [round(float(value), 6) for value in density],
        "tainted": tainted,
        "num_nets": timeline.num_nets,
        "markers": markers,
    }

    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html lang='en'><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p>{timeline.num_frames} frame(s), {timeline.num_nets} nets, "
        f"{len(timeline.markers)} violation marker(s)."
        + (
            " <span class='trunc'>Recording hit its frame bound; later"
            " cycles are missing.</span>"
            if timeline.truncated
            else ""
        )
        + "</p>",
        "<div class='scrub'>",
        "<input id='scrub' type='range' min='0' "
        f"max='{max(0, timeline.num_frames - 1)}' value='0' step='1'>",
        "<span id='readout' class='readout mono'></span>",
        "</div>",
        "<h2>Taint density</h2>",
        _sparkline_svg(density),
        "<p class='spark-caption'>fraction of tainted nets per frame; "
        "red line is the scrubber position. "
        "<span id='tainted-count'></span></p>",
        "<h2>Port lanes</h2>",
        "<table><tr><th>port</th><th>value at frame</th></tr>",
    ]
    for port in lane_order:
        parts.append(
            f"<tr><th>{escape(port)}</th>"
            f"<td id='lane-{escape(port)}' class='mono'></td></tr>"
        )
    parts.append("</table>")

    parts.append("<h2>Violation markers</h2>")
    if markers:
        for marker in markers:
            parts.append(
                f"<button class='marker' data-frame='{marker['frame']}'>"
                f"{escape(marker['kind'])} @ cycle {marker['cycle']} "
                f"(0x{marker['address']:04x})</button>"
            )
        for marker in markers:
            ports = ", ".join(marker["tainted_ports"]) or "none recorded"
            parts.append(
                f"<div class='nets'><b>{escape(marker['kind'])}</b> at "
                f"cycle {marker['cycle']}, condition "
                f"{marker['condition']}, task "
                f"{escape(marker['task'] or '-')}: tainted port bits "
                f"at the violation frame: <code>{escape(ports)}</code>"
                "</div>"
            )
    else:
        parts.append("<p>none -- no violation fell on a recorded frame.</p>")

    # The embedded dataset: a JSON island the script parses on load.
    # '</' is escaped so net names can never close the script tag early.
    payload = json.dumps(data, separators=(",", ":")).replace("</", "<\\/")
    parts.append(
        f"<script type='application/json' id='tl-data'>{payload}</script>"
    )
    parts.append(f"<script>{_SCRIPT}</script>")
    parts.append(
        "<footer>generated by <code>repro view</code>; this file is "
        "self-contained (no external resources).</footer>"
    )
    parts.append("</body></html>")
    return "\n".join(parts)
