"""Counters, gauges and histograms for the analysis pipeline.

A :class:`MetricsRegistry` hands out named instruments on demand and
renders the whole collection as one plain dict via :meth:`snapshot`, so
the CLI can dump it as JSON and benchmarks can diff runs.  Counters are
strictly monotonic (negative increments are a programming error);
histograms use fixed bucket bounds so snapshots from different runs are
directly comparable.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

#: Default histogram bounds, tuned for fractions in [0, 1] (taint/unknown
#: densities).  Values above the last bound land in the overflow bucket.
FRACTION_BOUNDS: Tuple[float, ...] = (
    0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic; cannot add {amount}"
            )
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another process's counter into this one (monotonic sum)."""
        self.inc(other.value)


class Gauge:
    """A point-in-time value (e.g. a peak watermark)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def update_max(self, value) -> None:
        if value > self.value:
            self.value = value

    def merge(self, other: "Gauge") -> None:
        """Fold another process's gauge into this one.  Gauges in this
        registry are high-water marks (peaks), so merge keeps the max."""
        self.update_max(other.value)


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max."""

    __slots__ = ("name", "bounds", "buckets", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str, bounds: Sequence[float] = FRACTION_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram {name!r} bounds must be sorted")
        self.buckets = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram.

        Requires identical bucket bounds.  Merging an empty histogram is
        a no-op (min/max stay untouched); merging into an empty one
        adopts the other's extrema.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r} bounds differ from "
                f"{other.name!r}; cannot merge"
            )
        for index, value in enumerate(other.buckets):
            self.buckets[index] += value
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum

    def snapshot(self) -> dict:
        labels = [f"<={bound:g}" for bound in self.bounds] + ["+inf"]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": (self.total / self.count) if self.count else None,
            "buckets": dict(zip(labels, self.buckets)),
        }


class MetricsRegistry:
    """Creates instruments on first use and snapshots them all at once."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: Sequence[float] = FRACTION_BOUNDS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    def snapshot(self) -> dict:
        """The whole registry as one JSON-ready dict."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    # ------------------------------------------------------------------
    # Cross-process merge: fold a worker registry (or its exported
    # state) into this one.  Counters sum, gauges keep the max (they are
    # peaks), histograms merge bucket-wise via Histogram.merge.
    # ------------------------------------------------------------------
    def merge_from(self, other: "MetricsRegistry") -> None:
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)

    def merge_state(self, state: dict) -> None:
        """Merge an :meth:`export_state` payload from another process."""
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).update_max(value)
        for name, payload in state.get("histograms", {}).items():
            other = Histogram(name, tuple(payload["bounds"]))
            other.buckets = list(payload["buckets"])
            other.count = payload["count"]
            other.total = payload["total"]
            other.minimum = payload["minimum"]
            other.maximum = payload["maximum"]
            self.histogram(name, other.bounds).merge(other)

    # ------------------------------------------------------------------
    # Checkpoint support: a resumed analysis restores the interrupted
    # run's instrument values so its final snapshot matches what an
    # uninterrupted run would have reported.
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        return {
            "counters": {
                name: counter.value
                for name, counter in self._counters.items()
            },
            "gauges": {
                name: gauge.value for name, gauge in self._gauges.items()
            },
            "histograms": {
                name: {
                    "bounds": list(histogram.bounds),
                    "buckets": list(histogram.buckets),
                    "count": histogram.count,
                    "total": histogram.total,
                    "minimum": histogram.minimum,
                    "maximum": histogram.maximum,
                }
                for name, histogram in self._histograms.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        for name, value in state.get("counters", {}).items():
            self.counter(name).value = value
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in state.get("histograms", {}).items():
            histogram = self.histogram(name, tuple(payload["bounds"]))
            histogram.buckets = list(payload["buckets"])
            histogram.count = payload["count"]
            histogram.total = payload["total"]
            histogram.minimum = payload["minimum"]
            histogram.maximum = payload["maximum"]
