"""Prometheus text exposition for the metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` (or its
``export_state()`` dict) in the Prometheus *text exposition format
0.0.4* -- the ``GET /metrics`` wire format every scraper understands::

    # TYPE repro_service_jobs_submitted_total counter
    repro_service_jobs_submitted_total 42
    # TYPE repro_service_turnaround_seconds histogram
    repro_service_turnaround_seconds_bucket{le="0.1"} 3
    ...
    repro_service_turnaround_seconds_bucket{le="+Inf"} 17
    repro_service_turnaround_seconds_sum 12.5
    repro_service_turnaround_seconds_count 17

Format obligations handled here, and nowhere else:

* **metric names** -- the registry's dotted names (``service.jobs_submitted``)
  are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*``; counters get the
  conventional ``_total`` suffix;
* **label values** -- backslash, double-quote and newline are escaped
  per the format spec;
* **histogram buckets** -- the registry stores *disjoint* bucket
  occupancies; Prometheus buckets are **cumulative** and must end with
  ``le="+Inf"`` equal to ``_count``.

Everything is stdlib-only; the daemon's ``/metrics`` route
(:mod:`repro.service.server`) and ``repro jobs --stats`` both feed from
the same snapshot this module renders.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Media type for the rendered payload (HTTP Content-Type header).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """Map an internal dotted metric name onto the Prometheus charset.

    ``service.jobs_submitted`` -> ``service_jobs_submitted``; runs of
    illegal characters collapse to one ``_``; a leading digit gains a
    ``_`` prefix.  Idempotent on already-legal names.
    """
    if prefix:
        name = f"{prefix}_{name}"
    sanitized = _NAME_BAD_CHARS.sub("_", name)
    if not sanitized or not _NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the text format: ``\\`` ``"`` ``\\n``."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _labels_fragment(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(key)}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(
    metrics,
    prefix: str = "repro",
    extra_gauges: Optional[
        Iterable[Tuple[str, float, Optional[Dict[str, str]], str]]
    ] = None,
) -> str:
    """Render a registry (or ``export_state()`` dict) as exposition text.

    *extra_gauges* lets a caller add scrape-time values that are not in
    the registry -- e.g. the daemon's queue depth, which is derived from
    job state rather than accumulated.  Each entry is ``(name, value,
    labels_or_None, help_text)``; entries sharing a name become one
    labelled family.
    """
    state = (
        metrics.export_state()
        if hasattr(metrics, "export_state")
        else metrics
    )
    lines: List[str] = []

    for name, value in sorted(state.get("counters", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, value in sorted(state.get("gauges", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    emitted_extra_types = set()
    for entry in extra_gauges or ():
        name, value, labels, help_text = entry
        metric = sanitize_metric_name(name, prefix)
        if metric not in emitted_extra_types:
            emitted_extra_types.add(metric)
            if help_text:
                safe_help = help_text.replace("\\", r"\\").replace(
                    "\n", r"\n"
                )
                lines.append(f"# HELP {metric} {safe_help}")
            lines.append(f"# TYPE {metric} gauge")
        lines.append(
            f"{metric}{_labels_fragment(labels)} {_format_value(value)}"
        )

    for name, payload in sorted(state.get("histograms", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, occupancy in zip(
            payload["bounds"], payload["buckets"]
        ):
            cumulative += occupancy
            bound = float(bound)
            if bound != bound or bound in (float("inf"), float("-inf")):
                # A non-finite explicit bound must not get its own line:
                # an explicit +Inf would duplicate the mandatory final
                # bucket below, and le="NaN"/-Inf are unparseable to
                # scrapers.  Its occupancy stays folded into the running
                # cumulative count, so the +Inf bucket still absorbs it.
                continue
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                f"{cumulative}"
            )
        # The registry keeps one extra disjoint overflow bucket; folded
        # in, the +Inf bucket equals the observation count by contract.
        cumulative += payload["buckets"][len(payload["bounds"])]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(payload['total'])}")
        lines.append(f"{metric}_count {payload['count']}")

    return "\n".join(lines) + "\n"
