"""Self-contained HTML rendering of a perf-attribution document.

:func:`build_perf_report` turns the JSON document produced by
:class:`repro.obs.perf.PerfAttribution` / ``repro perf`` into a single
HTML file with zero external references (no scripts, stylesheets or
fonts fetched from anywhere), matching the repo's other reports:

* a stacked **wall-clock decomposition bar** (rank evaluation, dispatch
  overhead, clock edges, Python-side SoC work, halt probing);
* a **rank treemap**: one tile per (pass kind, rank), area proportional
  to its share of attributed evaluation time, shaded by intensity, with
  the per-cell-type breakdown in the tooltip -- the "where do the
  cycles go" view that gates the compiled-backend work;
* per-**cell-type** totals;
* the **cone quiescence map**: per output-port fan-in cone, how often
  its boundary inputs changed between samples and how much of it
  toggles -- the evidence for event-driven evaluation.
"""

from __future__ import annotations

from html import escape
from typing import Optional

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 64em; color: #1a1a2e; }
code, td.mono { font-family: 'SF Mono', Consolas, monospace;
                font-size: 0.9em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; width: 100%; margin: 0.8em 0; }
th, td { border: 1px solid #d5d5e0; padding: 0.35em 0.6em;
         text-align: left; font-size: 0.92em; }
th { background: #f0f0f7; }
td.num, th.num { text-align: right; }
.stack { display: flex; height: 28px; border-radius: 6px;
         overflow: hidden; margin: 0.6em 0; }
.stack div { min-width: 1px; }
.legend { color: #52525b; font-size: 0.85em; }
.swatch { display: inline-block; width: 0.8em; height: 0.8em;
          border-radius: 2px; margin-right: 0.3em;
          vertical-align: -0.05em; }
.treemap { display: flex; flex-wrap: wrap; gap: 3px; margin: 0.8em 0; }
.tile { color: #fff; border-radius: 4px; padding: 0.25em 0.4em;
        font-size: 0.78em; min-width: 2.2em; overflow: hidden;
        white-space: nowrap; box-sizing: border-box; }
.tile.iface { outline: 2px dashed #b45309; outline-offset: -2px; }
.qbar { background: #e4e4ee; border-radius: 3px; height: 0.9em;
        width: 100%; position: relative; }
.qbar div { background: #16a34a; border-radius: 3px; height: 100%; }
.hot { color: #b91c1c; font-weight: 600; }
footer { margin-top: 3em; color: #6b7280; font-size: 0.85em; }
"""

#: Stacked-bar segment colours, in rendering order.
_SEGMENTS = (
    ("rank evaluation", "#4338ca"),
    ("eval dispatch", "#818cf8"),
    ("clock edges", "#0e7490"),
    ("SoC python", "#b45309"),
    ("halt probe", "#a1a1aa"),
    ("unattributed", "#e4e4ee"),
)


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "&ndash;"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def _fmt_pct(value: Optional[float]) -> str:
    return "&ndash;" if value is None else f"{100 * value:.1f}%"


def _stack_html(document: dict) -> str:
    wall = document.get("wall_seconds") or 0.0
    attributed_groups = document.get("attributed_group_seconds", 0.0)
    parts = [
        attributed_groups,
        document.get("dispatch_seconds", 0.0),
        document.get("clock_seconds", 0.0),
        document.get("soc_python_seconds", 0.0),
        document.get("halt_probe_seconds", 0.0),
    ]
    parts.append(max(0.0, wall - sum(parts)))
    total = wall or sum(parts) or 1.0
    bars = []
    legend = []
    for (label, colour), seconds in zip(_SEGMENTS, parts):
        share = seconds / total
        bars.append(
            f"<div style='background:{colour};width:{share * 100:.2f}%'"
            f" title='{escape(label)}: {seconds:.4f}s "
            f"({share * 100:.1f}%)'></div>"
        )
        legend.append(
            f"<span class='swatch' style='background:{colour}'></span>"
            f"{escape(label)} {_fmt_pct(share)}"
        )
    return (
        f"<div class='stack'>{''.join(bars)}</div>"
        f"<p class='legend'>{' &nbsp; '.join(legend)} &nbsp;"
        f"(wall {_fmt_seconds(wall)})</p>"
    )


def _treemap_html(document: dict) -> str:
    ranks = document.get("ranks", [])
    total = sum(rank["seconds"] for rank in ranks) or 1.0
    peak = max((rank["seconds"] for rank in ranks), default=0.0) or 1.0
    tiles = []
    for rank in sorted(ranks, key=lambda r: -r["seconds"]):
        share = rank["seconds"] / total
        if share <= 0:
            continue
        intensity = rank["seconds"] / peak
        # indigo, darker = hotter
        lightness = 78 - round(intensity * 46)
        width = max(2.4, share * 100)
        cells = ", ".join(
            f"{name}: {stats['seconds'] * 1e3:.2f}ms/"
            f"{stats['gates']} gate(s)"
            for name, stats in sorted(
                rank["cells"].items(),
                key=lambda item: -item[1]["seconds"],
            )
        )
        kind = rank["kind"]
        css = "tile iface" if kind == "interface" else "tile"
        tiles.append(
            f"<div class='{css}' style='width:{width:.2f}%;"
            f"background:hsl(243,55%,{lightness}%)' "
            f"title='{escape(kind)} rank {rank['rank']}: "
            f"{rank['seconds'] * 1e3:.2f}ms ({share * 100:.1f}%), "
            f"{rank['gates_per_pass']} gate(s)/pass &#10;{escape(cells)}'>"
            f"r{rank['rank']}</div>"
        )
    return (
        f"<div class='treemap'>{''.join(tiles)}</div>"
        "<p class='legend'>tile area &prop; share of attributed "
        "evaluation time; dashed outline = interface-cone pass; hover "
        "for the per-cell-type breakdown</p>"
    )


def _cell_rows(document: dict) -> str:
    cell_types = document.get("cell_types", {})
    total = sum(s["seconds"] for s in cell_types.values()) or 1.0
    rows = []
    for name, stats in sorted(
        cell_types.items(), key=lambda item: -item[1]["seconds"]
    ):
        rows.append(
            f"<tr><td class='mono'>{escape(name)}</td>"
            f"<td class='num'>{_fmt_seconds(stats['seconds'])}</td>"
            f"<td class='num'>{_fmt_pct(stats['seconds'] / total)}</td>"
            f"<td class='num'>{stats['evals']:,}</td></tr>"
        )
    return "".join(rows)


def _cone_rows(document: dict) -> str:
    rows = []
    cones = sorted(
        document.get("cones", []),
        key=lambda cone: -(cone["toggle_rate"] or 0.0),
    )
    for cone in cones:
        quiescent = cone["quiescent_fraction"]
        bar = (
            f"<div class='qbar'><div style='width:"
            f"{(quiescent or 0.0) * 100:.1f}%'></div></div>"
        )
        active = cone["active_fraction"]
        active_css = (
            " class='hot'" if active is not None and active > 0.5 else ""
        )
        rows.append(
            f"<tr><td class='mono'>{escape(cone['port'])}</td>"
            f"<td class='num'>{cone['member_nets']}</td>"
            f"<td class='num'>{cone['input_nets']}</td>"
            f"<td class='num'>{cone['depth']}</td>"
            f"<td{active_css} class='num'>{_fmt_pct(active)}</td>"
            f"<td>{bar}</td>"
            f"<td class='num'>{_fmt_pct(cone['toggle_rate'])}</td></tr>"
        )
    return "".join(rows)


def build_perf_report(document: dict, title: Optional[str] = None) -> str:
    """Render one attribution document as a self-contained HTML page."""
    workload = document.get("workload", "?")
    title = title or f"GLIFT perf attribution: {workload}"
    passes = document.get("passes", {})
    activity = document.get("activity", {})
    summary_rows = [
        ("cycles simulated", f"{document.get('cycles', 0):,}"),
        (
            "cycles / second",
            f"{document['cycles_per_second']:,.0f}"
            if document.get("cycles_per_second")
            else "&ndash;",
        ),
        ("wall time", _fmt_seconds(document.get("wall_seconds"))),
        (
            "attributed",
            f"{_fmt_seconds(document.get('attributed_seconds'))} "
            f"({_fmt_pct(document.get('attributed_fraction'))} of wall)",
        ),
        (
            "evaluation passes",
            f"{passes.get('full', 0):,} full / "
            f"{passes.get('interface', 0):,} interface",
        ),
        (
            "mean nets changed per sample",
            _fmt_pct(activity.get("mean_changed_fraction")),
        ),
        (
            "activity samples",
            f"{activity.get('samples', 0):,} "
            f"(every {document.get('sample_every', '?')} full passes)",
        ),
    ]
    summary = "".join(
        f"<tr><th>{escape(label)}</th><td>{value}</td></tr>"
        for label, value in summary_rows
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{escape(title)}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>{escape(title)}</h1>
<table>{summary}</table>

<h2>Wall-clock decomposition</h2>
{_stack_html(document)}

<h2>Evaluation time by rank</h2>
{_treemap_html(document)}

<h2>Evaluation time by cell type</h2>
<table>
<tr><th>cell type</th><th class='num'>seconds</th>
<th class='num'>share</th><th class='num'>gate evals</th></tr>
{_cell_rows(document)}
</table>

<h2>Cone quiescence map</h2>
<p class='legend'>per output-port fan-in cone; <em>quiescent</em> =
fraction of sampled passes where no boundary input (flip-flop Q, port,
constant) changed -- the share an event-driven backend could skip.</p>
<table>
<tr><th>port cone</th><th class='num'>nets</th>
<th class='num'>inputs</th><th class='num'>depth</th>
<th class='num'>active</th><th style='width:30%'>quiescent</th>
<th class='num'>toggle rate</th></tr>
{_cone_rows(document)}
</table>

<footer>generated by <code>repro perf</code>; attribution schema
{document.get('schema', '?')}, self-contained (no external
resources).</footer>
</body>
</html>
"""
