"""Phase-scoped profiling spans.

``profiler.span("explore")`` opens a nestable phase scope; wall and CPU
time accumulate per *path* ("repair/explore" when an analysis runs inside
the repair loop), so the breakdown table shows where the pipeline's time
actually goes.  Spans are designed for phase granularity (dozens per run,
not per-cycle); the disabled path uses a shared no-op span object so a
pipeline running without an observer pays one attribute lookup per phase.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.clock import CLOCK, Clock


class SpanStats:
    """Accumulated cost of one span path."""

    __slots__ = ("calls", "wall", "cpu", "errors")

    def __init__(self):
        self.calls = 0
        self.wall = 0.0
        self.cpu = 0.0
        #: spans on this path that exited via an exception; the timing
        #: still accumulates, so the stack stays balanced when wrapped
        #: code raises
        self.errors = 0


class _Span:
    """One live span; re-entrant use creates independent instances."""

    __slots__ = ("_profiler", "_name", "_wall0", "_cpu0")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        # Read the clocks *before* pushing: if a clock raised after the
        # push, the stack would stay unbalanced for every later span.
        clock = self._profiler._clock
        wall0 = clock.wall()
        cpu0 = clock.cpu()
        self._wall0 = wall0
        self._cpu0 = cpu0
        self._profiler._push(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        clock = self._profiler._clock
        self._profiler._pop(
            clock.wall() - self._wall0,
            clock.cpu() - self._cpu0,
            error=exc_type is not None,
        )


class Profiler:
    """Collects nested span timings keyed by slash-joined phase paths."""

    def __init__(self, clock: Clock = CLOCK):
        self._clock = clock
        self._stack: List[str] = []
        #: insertion-ordered: first-seen order is the natural report order
        self.stats: Dict[str, SpanStats] = {}

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    # ------------------------------------------------------------------
    def _push(self, name: str) -> None:
        self._stack.append(name)

    def _pop(self, wall: float, cpu: float, error: bool = False) -> None:
        if not self._stack:
            return  # defensively tolerate an exit without a matching push
        path = "/".join(self._stack)
        self._stack.pop()
        entry = self.stats.get(path)
        if entry is None:
            entry = self.stats[path] = SpanStats()
        entry.calls += 1
        entry.wall += wall
        entry.cpu += cpu
        if error:
            entry.errors += 1

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._stack)

    def snapshot(self) -> dict:
        return {
            path: {
                "calls": entry.calls,
                "wall_seconds": round(entry.wall, 6),
                "cpu_seconds": round(entry.cpu, 6),
                "errors": entry.errors,
            }
            for path, entry in self.stats.items()
        }

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        return {
            path: (entry.calls, entry.wall, entry.cpu, entry.errors)
            for path, entry in self.stats.items()
        }

    def restore_state(self, state: dict) -> None:
        for path, (calls, wall, cpu, errors) in state.items():
            entry = self.stats.get(path)
            if entry is None:
                entry = self.stats[path] = SpanStats()
            entry.calls = calls
            entry.wall = wall
            entry.cpu = cpu
            entry.errors = errors

    def rows(self) -> List[Tuple[str, int, float, float]]:
        """(path, calls, wall, cpu) rows in first-seen order."""
        return [
            (path, entry.calls, entry.wall, entry.cpu)
            for path, entry in self.stats.items()
        ]
