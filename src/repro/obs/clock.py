"""Time sources for the observability layer.

Every obs component reads time through a :class:`Clock` instance instead
of calling :mod:`time` directly, so tests can substitute a deterministic
fake and the rest of the codebase reports runtimes from one consistent
source (``repro.core.tracker`` used to carry its own ``time`` import;
it now uses :data:`CLOCK`).
"""

from __future__ import annotations

import time


class Clock:
    """Wall (monotonic) and CPU (process) time, behind one indirection."""

    def wall(self) -> float:
        return time.monotonic()

    def cpu(self) -> float:
        return time.process_time()


class ManualClock(Clock):
    """A hand-advanced clock for deterministic tests."""

    def __init__(self, wall: float = 0.0, cpu: float = 0.0):
        self._wall = wall
        self._cpu = cpu

    def advance(self, wall: float, cpu: float = None) -> None:
        self._wall += wall
        self._cpu += wall if cpu is None else cpu

    def wall(self) -> float:
        return self._wall

    def cpu(self) -> float:
        return self._cpu


#: The process-wide default clock.
CLOCK = Clock()
