"""``repro.obs`` -- dependency-free observability for the GLIFT pipeline.

Three instruments behind one facade:

* :mod:`repro.obs.trace`    -- structured JSONL event tracing
  (``fork``/``merge``/``prune``/``widen``/``violation``/``step``/
  ``transform_applied``/``reverify``);
* :mod:`repro.obs.metrics`  -- monotonic counters, gauges and histograms
  with a ``snapshot() -> dict`` API;
* :mod:`repro.obs.profiler` -- nestable ``span("explore")`` phase timing
  with wall and CPU seconds.

An :class:`Observer` bundles the three; :data:`NULL_OBSERVER` is the
always-installed default whose every operation is a true no-op, so the
hot paths guard with ``if obs.enabled`` and pay nothing when nobody is
watching.  Components accept an explicit ``obs=`` argument and fall back
to the process-wide current observer::

    observer = Observer(trace=TraceRecorder("run.jsonl"))
    with observe(observer):
        result = TaintTracker(program).run()
    print(observer.snapshot()["metrics"]["counters"]["tree.nodes"])
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Sequence

from repro.obs.clock import CLOCK, Clock, ManualClock
from repro.obs.metrics import (
    Counter,
    FRACTION_BOUNDS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.perf import (
    PERF_SCHEMA,
    PerfAttribution,
    PerfHarness,
    get_perf,
    install_perf,
    record_perf,
)
from repro.obs.exposition import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.perfview import build_perf_report
from repro.obs.profiler import Profiler
from repro.obs.provenance import (
    FlowEdge,
    FlowLeaf,
    FlowSlice,
    ProvenanceRecorder,
    explain_violation,
    get_recorder,
    install_recorder,
    record_provenance,
)
from repro.obs.timeline import (
    Timeline,
    TimelineMarker,
    TimelineRecorder,
    get_timeline,
    install_timeline,
    load_timeline,
    record_timeline,
    save_timeline,
)
from repro.obs.trace import (
    CORRELATION_FIELDS,
    EVENT_SCHEMAS,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    lint_trace,
    read_events,
)


class Observer:
    """A live observer: tracing, metrics and profiling enabled."""

    enabled = True

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[Profiler] = None,
        clock: Clock = CLOCK,
    ):
        self.trace = trace
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = (
            profiler if profiler is not None else Profiler(clock)
        )
        self.clock = clock

    # -- tracing -------------------------------------------------------
    def emit(self, event: str, **fields) -> None:
        if self.trace is not None:
            self.trace.emit(event, **fields)

    # -- metrics -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(
        self, name: str, bounds: Sequence[float] = FRACTION_BOUNDS
    ) -> Histogram:
        return self.metrics.histogram(name, bounds)

    # -- profiling -----------------------------------------------------
    def span(self, name: str):
        return self.profiler.span(name)

    # -- lifecycle -----------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "metrics": self.metrics.snapshot(),
            "profile": self.profiler.snapshot(),
        }

    def export_state(self) -> dict:
        """Checkpointable observer state: metric values, span stats, and
        the trace sequence cursor, so a resumed run's snapshot matches
        the uninterrupted run's."""
        return {
            "metrics": self.metrics.export_state(),
            "profile": self.profiler.export_state(),
            "trace_seq": (
                self.trace.sequence if self.trace is not None else 0
            ),
        }

    def restore_state(self, state: dict) -> None:
        self.metrics.restore_state(state.get("metrics", {}))
        self.profiler.restore_state(state.get("profile", {}))
        if self.trace is not None:
            self.trace.set_sequence(
                max(self.trace.sequence, state.get("trace_seq", 0))
            )

    def close(self) -> None:
        if self.trace is not None:
            self.trace.close()


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass


class _NullInstrument:
    """Accepts every Counter/Gauge/Histogram mutation and records nothing."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def update_max(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullObserver:
    """The disabled observer: every operation is a shared no-op."""

    enabled = False
    trace = None

    def emit(self, event: str, **fields) -> None:
        pass

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> dict:
        return {
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "profile": {},
        }

    def export_state(self) -> None:
        return None

    def restore_state(self, state) -> None:
        pass

    def close(self) -> None:
        pass


NULL_OBSERVER = NullObserver()

_current: object = NULL_OBSERVER


def get_observer():
    """The process-wide current observer (defaults to the no-op one)."""
    return _current


def set_observer(observer) -> object:
    """Install *observer* globally; returns the previous one."""
    global _current
    previous = _current
    _current = observer if observer is not None else NULL_OBSERVER
    return previous


@contextmanager
def observe(observer: Observer):
    """Install *observer* for the duration of a ``with`` block."""
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)


__all__ = [
    "CLOCK",
    "Clock",
    "ManualClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "FRACTION_BOUNDS",
    "Profiler",
    "TraceRecorder",
    "read_events",
    "lint_trace",
    "CORRELATION_FIELDS",
    "EVENT_SCHEMAS",
    "TRACE_SCHEMA_VERSION",
    "PERF_SCHEMA",
    "PerfAttribution",
    "PerfHarness",
    "get_perf",
    "install_perf",
    "record_perf",
    "build_perf_report",
    "PROMETHEUS_CONTENT_TYPE",
    "escape_label_value",
    "render_prometheus",
    "sanitize_metric_name",
    "ProvenanceRecorder",
    "FlowEdge",
    "FlowLeaf",
    "FlowSlice",
    "explain_violation",
    "get_recorder",
    "install_recorder",
    "record_provenance",
    "Timeline",
    "TimelineMarker",
    "TimelineRecorder",
    "get_timeline",
    "install_timeline",
    "load_timeline",
    "record_timeline",
    "save_timeline",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "get_observer",
    "set_observer",
    "observe",
]
