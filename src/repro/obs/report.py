"""Self-contained HTML analysis reports.

:func:`build_report` turns one :class:`~repro.core.tracker.AnalysisResult`
(plus its provenance recorder, when one was armed) into a single HTML
document with zero external references -- no scripts, no stylesheets, no
fonts, no images fetched from anywhere.  The file can be archived as a CI
artifact or mailed around and will render identically forever.

Sections: verdict banner, analysis summary, per-cycle taint-propagation
heatmap (pure-CSS bars from :meth:`ProvenanceRecorder.cycle_activity`),
violation table, and one provenance chain per violation with the full
Graphviz DOT subgraph tucked into a ``<details>`` fold.
"""

from __future__ import annotations

from html import escape
from typing import List, Optional

from repro.obs.provenance import (
    FlowSlice,
    ProvenanceRecorder,
    explain_violation,
)

#: Upper bound on fully-explained violations per report; the violation
#: table always lists everything, but backward slices are O(edges) each.
MAX_EXPLAINED = 16

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 60em; color: #1a1a2e; }
code, pre, td.mono { font-family: 'SF Mono', Consolas, monospace;
                     font-size: 0.9em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
.banner { padding: 0.6em 1em; border-radius: 6px; font-weight: 600; }
.banner.secure { background: #d7f5dd; color: #14532d; }
.banner.insecure { background: #fde2e2; color: #7f1d1d; }
.banner.inconclusive { background: #fef3c7; color: #78350f; }
table { border-collapse: collapse; width: 100%; margin: 0.8em 0; }
th, td { border: 1px solid #d5d5e0; padding: 0.35em 0.6em;
         text-align: left; font-size: 0.92em; }
th { background: #f0f0f7; }
.sev-error { color: #b91c1c; font-weight: 600; }
.sev-warning { color: #b45309; font-weight: 600; }
.sev-advisory { color: #52525b; }
.heatmap { display: flex; align-items: flex-end; gap: 1px;
           height: 72px; margin: 0.6em 0; }
.heatmap .bucket { flex: 1 1 0; background: #6366f1; min-height: 1px; }
.heatmap .bucket.zero { background: #e4e4ee; }
.hm-caption { color: #52525b; font-size: 0.85em; }
.chain { background: #f7f7fc; border: 1px solid #d5d5e0;
         border-radius: 6px; padding: 0.7em 1em; margin: 0.6em 0;
         overflow-x: auto; }
.origin { background: #fde2e2; border-radius: 3px; padding: 0 0.25em; }
.sink { background: #fef3c7; border-radius: 3px; padding: 0 0.25em; }
details { margin: 0.4em 0; }
summary { cursor: pointer; color: #4338ca; }
.trunc { color: #b45309; font-size: 0.9em; }
footer { margin-top: 3em; color: #6b7280; font-size: 0.85em; }
"""


def _heatmap_html(recorder: ProvenanceRecorder, buckets: int = 48) -> str:
    activity = recorder.cycle_activity(buckets)
    if not activity:
        return "<p class='hm-caption'>no taint propagation recorded</p>"
    peak = max(entry["edges"] for entry in activity) or 1
    bars = []
    for entry in activity:
        height = round(100 * entry["edges"] / peak)
        css = "bucket zero" if entry["edges"] == 0 else "bucket"
        bars.append(
            f"<div class='{css}' style='height:{max(height, 2)}%' "
            f"title='cycles {entry['from_cycle']}-{entry['to_cycle']}: "
            f"{entry['edges']} edge(s)'></div>"
        )
    low = activity[0]["from_cycle"]
    high = activity[-1]["to_cycle"]
    return (
        f"<div class='heatmap'>{''.join(bars)}</div>"
        f"<p class='hm-caption'>newly-tainted-net edges per cycle bucket, "
        f"cycles {low}&ndash;{high} (peak {peak} edges/bucket)</p>"
    )


def _chain_html(flow: FlowSlice) -> str:
    """The origin -> sink chain as one annotated monospace block."""
    if not flow.chain:
        return (
            "<div class='chain'><code>&lt;no linear chain: "
            + escape(", ".join(flow.origins) or "unrecorded taint")
            + "&gt;</code></div>"
        )
    first = flow.chain[0]
    parts = [f"<span class='origin'>{escape(first.src_name)}</span>"]
    for index, edge in enumerate(flow.chain):
        last = index == len(flow.chain) - 1
        name = escape(edge.dst_name)
        if last:
            name = f"<span class='sink'>{name}</span>"
        parts.append(
            f" &mdash;{escape(edge.kind)}@{edge.cycle}&rarr; {name}"
        )
    return f"<div class='chain'><code>{''.join(parts)}</code></div>"


def _violation_rows(violations) -> str:
    rows = []
    for index, violation in enumerate(violations):
        rows.append(
            "<tr>"
            f"<td>{index}</td>"
            f"<td class='sev-{escape(violation.severity)}'>"
            f"{escape(violation.severity)}</td>"
            f"<td class='mono'>{escape(violation.kind)}</td>"
            f"<td>{violation.condition}</td>"
            f"<td>{violation.cycle}</td>"
            f"<td class='mono'>0x{violation.address:04x}</td>"
            f"<td>{escape(violation.task or '-')}</td>"
            "</tr>"
        )
    return "".join(rows)


def build_report(
    result,
    recorder: Optional[ProvenanceRecorder] = None,
    title: Optional[str] = None,
    max_explained: int = MAX_EXPLAINED,
    timeline_link: Optional[str] = None,
) -> str:
    """One self-contained HTML document for *result*.

    *recorder* defaults to ``result.provenance``; without one the report
    still renders (verdict, stats, violations) but has no heatmap and no
    provenance chains.  *timeline_link* adds a relative link to a
    ``repro view`` page sitting next to the report -- a local file
    reference, so the report itself stays self-contained.
    """
    if recorder is None:
        recorder = getattr(result, "provenance", None)
    name = result.program.name
    title = title or f"GLIFT analysis report: {name}"
    verdict = result.verdict
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html lang='en'><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<div class='banner {escape(verdict)}'>verdict: "
        f"{escape(verdict.upper())}"
        + (
            f" &mdash; budget exhausted: {escape(', '.join(result.exhausted))}"
            if result.exhausted
            else ""
        )
        + "</div>",
    ]

    # -- summary -------------------------------------------------------
    stats = result.stats
    summary_rows = [
        ("program", escape(name)),
        ("policy", escape(f"{result.policy.name} ({result.policy.kind})")),
        ("paths explored", stats.paths),
        ("cycles simulated", stats.cycles_simulated),
        ("instructions", stats.instructions),
        ("violations", len(result.violations)),
        (
            "violated conditions",
            escape(
                ", ".join(str(c) for c in sorted(result.violated_conditions()))
                or "none"
            ),
        ),
    ]
    if recorder is not None:
        prov = recorder.snapshot()
        summary_rows.append(("provenance edges", prov["edges_recorded"]))
        summary_rows.append(
            (
                "provenance retained",
                f"{prov['edges_retained']} / capacity {prov['capacity']}",
            )
        )
        summary_rows.append(
            ("taint labels", escape(", ".join(prov["labels"]) or "none"))
        )
    if timeline_link:
        parts.append(
            f"<p>time-travel view: <a href='{escape(timeline_link)}'>"
            f"{escape(timeline_link)}</a> (open next to this report; "
            "generated by <code>repro view</code>)</p>"
        )
    parts.append("<h2>Summary</h2><table>")
    for key, value in summary_rows:
        parts.append(f"<tr><th>{key}</th><td>{value}</td></tr>")
    parts.append("</table>")
    if recorder is not None and recorder.truncated:
        parts.append(
            "<p class='trunc'>provenance_truncated: the edge ring wrapped "
            "or a smeared store exceeded its fanout cap; chains below may "
            "bottom out before a labelled input.</p>"
        )

    # -- heatmap -------------------------------------------------------
    if recorder is not None:
        parts.append("<h2>Taint propagation heatmap</h2>")
        parts.append(_heatmap_html(recorder))

    # -- violations ----------------------------------------------------
    parts.append("<h2>Violations</h2>")
    if result.violations:
        parts.append(
            "<table><tr><th>#</th><th>severity</th><th>kind</th>"
            "<th>cond</th><th>cycle</th><th>address</th><th>task</th></tr>"
            + _violation_rows(result.violations)
            + "</table>"
        )
    else:
        parts.append("<p>none -- every sufficient condition held.</p>")

    # -- provenance chains ---------------------------------------------
    if recorder is not None and result.violations:
        parts.append("<h2>Provenance</h2>")
        explained = result.violations[:max_explained]
        if len(result.violations) > len(explained):
            parts.append(
                f"<p class='trunc'>explaining the first {len(explained)} "
                f"of {len(result.violations)} violations.</p>"
            )
        for index, violation in enumerate(explained):
            flow = explain_violation(result, violation, recorder=recorder)
            parts.append(
                f"<h3>#{index} <code>{escape(violation.kind)}</code> "
                f"at 0x{violation.address:04x}, cycle {violation.cycle}"
                "</h3>"
            )
            parts.append(f"<p>{escape(flow.summary())}</p>")
            parts.append(_chain_html(flow))
            dot = flow.to_dot(
                title=f"{violation.kind} at 0x{violation.address:04x}"
            )
            parts.append(
                "<details><summary>flow graph (Graphviz DOT, "
                f"{len(flow.edges)} edges)</summary>"
                f"<pre>{escape(dot)}</pre></details>"
            )

    parts.append(
        "<footer>generated by <code>repro report</code>; this file is "
        "self-contained (no external resources).</footer>"
    )
    parts.append("</body></html>")
    return "\n".join(parts)
