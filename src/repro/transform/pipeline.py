"""The end-to-end secure-compile loop (Figures 10 and 11).

``secure_compile`` drives the full cycle the paper describes: assemble,
run application-specific gate-level information flow tracking, identify
root causes, apply the watchdog transformation (then *re-analyse before
mask insertion*, as the Figure 11 caption requires, because the rewrite
moves instruction addresses), apply memory-bounds masks, and re-verify
until the binary is provably secure or a fundamental violation demands
programmer attention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.labels import SecurityPolicy, default_policy
from repro.core.tracker import AnalysisResult, TaintTracker
from repro.isa.assembler import assemble
from repro.obs import get_observer
from repro.isa.program import Program
from repro.resilience.errors import EXIT_FUNDAMENTAL, ReproError
from repro.transform.masking import insert_masks
from repro.transform.report import render_diagnostics
from repro.transform.rootcause import RootCauses, identify_root_causes
from repro.transform.slicing import SlicePlan, choose_slicing
from repro.transform.watchdog_reset import (
    estimate_task_cycles,
    insert_watchdog_protection,
)


class FundamentalViolation(ReproError):
    """The application (or its labels) cannot be repaired automatically."""

    code = "FUNDAMENTAL_VIOLATION"
    phase = "repair"
    exit_code = EXIT_FUNDAMENTAL

    def __init__(self, diagnostics: str):
        super().__init__(diagnostics)
        self.diagnostics = diagnostics


@dataclass
class SecureCompileResult:
    """Outcome of the secure-compile flow."""

    program: Program
    source: str
    analysis: AnalysisResult
    fixes: List[str] = field(default_factory=list)
    iterations: int = 0
    masked_stores: int = 0
    bounded_tasks: List[str] = field(default_factory=list)
    slice_plans: Dict[str, SlicePlan] = field(default_factory=dict)
    #: True when an analysis budget cut a (re-)verification short: the
    #: repairs applied so far are kept, but the verdict is inconclusive
    partial: bool = False

    @property
    def secure(self) -> bool:
        return self.analysis.secure

    @property
    def verdict(self) -> str:
        return self.analysis.verdict

    @property
    def modified(self) -> bool:
        return bool(self.fixes)

    def diagnostics(self) -> str:
        causes = identify_root_causes(self.analysis)
        return render_diagnostics(self.program.name, causes, self.fixes)


def secure_compile(
    source: str,
    name: str = "program",
    policy: Optional[SecurityPolicy] = None,
    task_cycles: Optional[Dict[str, int]] = None,
    max_iterations: int = 5,
    max_slices: int = 1,
    obs=None,
    **tracker_kwargs,
) -> SecureCompileResult:
    """Repair *source* until the analysis proves it secure.

    *task_cycles* optionally supplies measured maximum durations per task
    (used for slice selection); otherwise a static estimate is used.
    *max_slices* defaults to 1 -- a bare task restarted by the watchdog
    must finish within one slice; pass higher values only for tasks whose
    scheduler checkpoints context across slices (Section 7.3).
    *obs* is an :class:`repro.obs.Observer`; repairs emit
    ``transform_applied`` events and each re-analysis round a
    ``reverify`` event, with the rewrite time under the ``repair`` span.
    """
    if policy is None:
        policy = default_policy()
    obs = obs if obs is not None else get_observer()
    fixes: List[str] = []
    bounded: List[str] = []
    plans: Dict[str, SlicePlan] = {}
    masked = 0

    current_source = source
    program = assemble(current_source, name=name)
    result = TaintTracker(program, policy, obs=obs, **tracker_kwargs).run()

    for iteration in range(1, max_iterations + 1):
        if result.secure:
            return SecureCompileResult(
                program=program,
                source=current_source,
                analysis=result,
                fixes=fixes,
                iterations=iteration,
                masked_stores=masked,
                bounded_tasks=bounded,
                slice_plans=plans,
            )
        if result.degraded:
            # A budget cut this (re-)verification short.  The repairs
            # already applied stand; instead of discarding them behind a
            # FundamentalViolation, hand back a partial result whose
            # verdict is honestly inconclusive.
            return SecureCompileResult(
                program=program,
                source=current_source,
                analysis=result,
                fixes=fixes,
                iterations=iteration,
                masked_stores=masked,
                bounded_tasks=bounded,
                slice_plans=plans,
                partial=True,
            )
        causes = identify_root_causes(result)
        if not causes.automatic_repair_possible:
            raise FundamentalViolation(
                render_diagnostics(name, causes, fixes)
            )
        if not causes.needs_watchdog and not causes.needs_masking:
            # Insecure, yet nothing actionable: the repairs cannot help.
            raise FundamentalViolation(
                render_diagnostics(name, causes, fixes)
                + "\nno automatic repair applies to the remaining "
                "violations"
            )

        if causes.needs_watchdog:
            new_tasks = [
                t for t in causes.tasks_to_bound if t not in plans
            ]
            with obs.span("repair"):
                for task in new_tasks:
                    cycles = (
                        task_cycles.get(task)
                        if task_cycles and task in task_cycles
                        else estimate_task_cycles(program, task)
                    )
                    # Headroom for the masking instructions a later repair
                    # round may add (the slice must still fit the whole
                    # task).
                    cycles = int(cycles * 1.25) + 32
                    plans[task] = choose_slicing(
                        cycles, max_slices=max_slices
                    )
                    bounded.append(task)
                    fixes.append(
                        f"task {task!r}: control flow depends on tainted "
                        "input; bounded with the watchdog timer "
                        f"({plans[task].slices} x {plans[task].interval} "
                        "cycles)"
                    )
                    obs.emit(
                        "transform_applied",
                        kind="watchdog",
                        task=task,
                        slices=plans[task].slices,
                        interval=plans[task].interval,
                        iteration=iteration,
                    )
                if new_tasks:
                    current_source = insert_watchdog_protection(
                        current_source,
                        program,
                        {t: plans[t] for t in new_tasks},
                    )
                    # Figure 11: re-analyse before mask insertion -- the
                    # rewrite moved instruction addresses.
                    program = assemble(current_source, name=name)
            if new_tasks:
                obs.emit("reverify", iteration=iteration, after="watchdog")
                result = TaintTracker(
                    program, policy, obs=obs, **tracker_kwargs
                ).run()
                continue

        if causes.needs_masking:
            with obs.span("repair"):
                for address in causes.stores_to_mask:
                    line = program.line_at(address)
                    where = (
                        f"line {line.line_no}"
                        if line
                        else f"0x{address:04x}"
                    )
                    fixes.append(
                        f"{where}: store may escape the tainted "
                        "partition; memory-bounds mask inserted"
                    )
                    obs.emit(
                        "transform_applied",
                        kind="mask",
                        address=f"0x{address:04x}",
                        iteration=iteration,
                    )
                current_source = insert_masks(
                    current_source, program, causes.stores_to_mask, policy
                )
                masked += len(causes.stores_to_mask)
                program = assemble(current_source, name=name)
            obs.emit("reverify", iteration=iteration, after="mask")
            result = TaintTracker(
                program, policy, obs=obs, **tracker_kwargs
            ).run()
            continue

    raise FundamentalViolation(
        f"{name}: still insecure after {max_iterations} repair "
        f"iterations:\n{result.report()}"
    )
