"""The software-repair toolflow (Figures 10 and 11).

* :mod:`repro.transform.rootcause`      -- distil an analysis result into
  the instruction/task-level root causes the repairs target.
* :mod:`repro.transform.masking`        -- software masked addressing:
  insert ``AND #mask`` / ``BIS #base`` before offending stores.
* :mod:`repro.transform.slicing`        -- the overhead-minimising
  watchdog time-slice selection of Section 7.2.
* :mod:`repro.transform.watchdog_reset` -- the untainted-timer-reset
  transformation: arm the watchdog in trusted code, idle-pad the task.
* :mod:`repro.transform.pipeline`       -- the end-to-end secure-compile
  loop: analyse, repair, re-analyse, verify.
* :mod:`repro.transform.report`         -- compiler-style diagnostics.
"""

from repro.transform.rootcause import RootCauses, identify_root_causes
from repro.transform.masking import MaskingError, insert_masks
from repro.transform.slicing import SlicePlan, choose_slicing
from repro.transform.watchdog_reset import (
    WatchdogTransformError,
    insert_watchdog_protection,
)
from repro.transform.pipeline import (
    FundamentalViolation,
    SecureCompileResult,
    secure_compile,
)
from repro.transform.report import render_diagnostics

__all__ = [
    "RootCauses",
    "identify_root_causes",
    "insert_masks",
    "MaskingError",
    "SlicePlan",
    "choose_slicing",
    "insert_watchdog_protection",
    "WatchdogTransformError",
    "secure_compile",
    "SecureCompileResult",
    "FundamentalViolation",
    "render_diagnostics",
]
