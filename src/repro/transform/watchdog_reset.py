"""The untainted-timer-reset transformation (Figure 8's repair).

Convention: trusted system code invokes an untrusted task with
``call #<task>`` and the task returns with ``ret``.  The transformation
rewrites both ends:

* the ``call #<task>`` becomes an arming write
  (``mov #0x5A0x, &WDTCTL``) followed by ``br #<task>`` -- control is
  *given away*, not lent, because a tainted task cannot be trusted to
  return;
* every ``ret`` in the task becomes an idle self-loop (``jmp $``) that
  pads the final time slice until the watchdog's untainted power-on reset
  recovers the PC to the reset vector (address 0), where trusted system
  code resumes.

The interval is chosen by :func:`repro.transform.slicing.choose_slicing`
from the task's maximum duration.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List

from repro.isa.program import Program
from repro.transform.slicing import SlicePlan


class WatchdogTransformError(Exception):
    """Raised when the call/ret convention is not found in the source."""


_CALL = re.compile(r"^(\s*)call\s+#(\w+)\s*(;.*)?$")
_RET = re.compile(r"^(\s*)ret\s*(;.*)?$")
_TASK = re.compile(r"^\s*\.task\s+(\w+)\s+(\w+)\s*(;.*)?$")


def insert_watchdog_protection(
    source: str,
    program: Program,
    plans: Dict[str, SlicePlan],
) -> str:
    """Rewrite *source* so each task in *plans* is watchdog-bounded."""
    lines = source.splitlines()

    # Map each source line to its owning task via the .task directives.
    task_of_line: List[str] = []
    current = ""
    for line in lines:
        match = _TASK.match(line)
        if match:
            current = match.group(1)
        task_of_line.append(current)

    calls_rewritten = {name: 0 for name in plans}
    rets_rewritten = {name: 0 for name in plans}
    output: List[str] = []
    for index, line in enumerate(lines):
        owner = task_of_line[index]
        call_match = _CALL.match(line)
        if call_match and call_match.group(2) in plans:
            target = call_match.group(2)
            plan = plans[target]
            indent = call_match.group(1)
            output.append(
                f"{indent}mov #0x{plan.wdtctl_value:04X}, &WDTCTL"
                "    ; inserted: arm watchdog "
                f"({plan.interval}-cycle interval, {plan.slices} slice(s))"
            )
            output.append(
                f"{indent}br #{target}"
                "    ; inserted: enter bounded task (was: call)"
            )
            calls_rewritten[target] += 1
            continue
        ret_match = _RET.match(line)
        if ret_match and owner in plans:
            indent = ret_match.group(1)
            output.append(
                f"{indent}jmp $    ; inserted: idle-pad until the "
                "untainted watchdog reset (was: ret)"
            )
            rets_rewritten[owner] += 1
            continue
        output.append(line)

    for name in plans:
        if calls_rewritten[name] == 0:
            raise WatchdogTransformError(
                f"no `call #{name}` found in trusted code; the watchdog "
                "transformation needs the call/ret task convention"
            )
        if rets_rewritten[name] == 0:
            raise WatchdogTransformError(
                f"task {name!r} has no `ret` to replace with idle padding"
            )
    return "\n".join(output) + "\n"


def estimate_task_cycles(program: Program, task_name: str) -> int:
    """Crude static bound used when no measured duration is supplied.

    Counts the task's static instructions times a worst-case CPI and a
    small loop allowance; callers with measured durations (the evaluation
    harness) pass those instead.
    """
    task = program.task_named(task_name)
    static_words = task.end - task.start
    return max(32, static_words * 6 * 4)
