"""Software masked addressing (Figure 9's repair).

For every flagged store instruction, two instructions are inserted just
before it::

    and #<partition mask>, Rn
    bis #<partition base>, Rn

confining the store's base register to the tainted task's RAM window.  The
mask/base derive from the policy's tainted partition, which must be a
power-of-two-sized, aligned region (as the paper's 0x0400..0x07FF window
is).  The rewrite happens at the *source* level, using the assembler's
per-line debug info to locate each static store -- then the caller
re-assembles and re-analyses, as Figure 11 prescribes.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Tuple

from repro.core.labels import SecurityPolicy
from repro.isa.assembler import assemble
from repro.isa.encode import DecodedInstruction, decode
from repro.isa.program import Program
from repro.isa.spec import MODE_INDEXED, MODE_REGISTER


class MaskingError(Exception):
    """Raised when a flagged store cannot be masked automatically."""


#: The toolflow-reserved scratch register used to build confined effective
#: addresses without clobbering the task's live registers (a conventional
#: compiler-reserved temporary, like msp430-gcc's R4 frame temp).
SCRATCH_REG = "r14"


def partition_mask_base(policy: SecurityPolicy) -> Tuple[int, int]:
    """The AND-mask and BIS-base for the policy's tainted partition."""
    if not policy.tainted_memory:
        raise MaskingError("policy has no tainted partition to confine to")
    region = policy.tainted_memory[0]
    size = region.size
    if size & (size - 1):
        raise MaskingError(
            f"tainted partition size {size:#x} is not a power of two"
        )
    if region.low % size:
        raise MaskingError(
            f"tainted partition base {region.low:#x} is not aligned"
        )
    return size - 1, region.low


def _store_base_register(
    instruction: DecodedInstruction, address: int
) -> int:
    """The register holding the store's (possibly tainted) base address."""
    if instruction.mnemonic in ("push", "call"):
        from repro.isa.spec import SP

        return SP
    operand = instruction.dst if instruction.kind == "two" else instruction.src
    if operand is None or operand.mode == MODE_REGISTER:
        raise MaskingError(
            f"instruction at 0x{address:04x} is not a memory store"
        )
    if operand.is_absolute:
        raise MaskingError(
            f"store at 0x{address:04x} targets a fixed absolute address; "
            "masking cannot repair it -- fix the code or the labels"
        )
    return operand.reg


def insert_masks(
    source: str,
    program: Program,
    store_addresses: Iterable[int],
    policy: SecurityPolicy,
) -> str:
    """Return new source with mask/bis pairs inserted before each store.

    The confined effective address is built in the toolflow's reserved
    scratch register (``r14``, a compiler-reserved temporary by
    convention), so the task's own registers keep their values: the
    original base register (plus any index offset) is copied into r14,
    masked, pinned to the partition base, and the store is rebased onto
    ``0(r14)``.  Stack pushes (base register SP) are masked in place --
    rebasing an implicit-SP store is not expressible.  Re-analysis
    verifies the result, as Figure 11 prescribes.
    """
    mask, base = partition_mask_base(policy)
    lines = source.splitlines()
    # (line_no, register, offset)
    jobs: List[Tuple[int, int, int]] = []
    for address in store_addresses:
        instruction = decode(program.slice_from(address), address)
        register = _store_base_register(instruction, address)
        line = program.line_at(address)
        if line is None:
            raise MaskingError(
                f"no source line for store at 0x{address:04x}"
            )
        operand = (
            instruction.dst
            if instruction.kind == "two"
            else instruction.src
        )
        offset = 0
        if operand is not None and operand.mode == MODE_INDEXED:
            offset = operand.ext or 0
        job = (line.line_no, register, offset)
        if job not in jobs:
            jobs.append(job)

    # Rewrite bottom-up so earlier line numbers stay valid.
    for line_no, register, offset in sorted(jobs, reverse=True):
        original = lines[line_no - 1]
        indent = " " * (len(original) - len(original.lstrip()))
        from repro.isa.spec import SP

        if register == SP:
            # push/call: mask the stack pointer in place.
            lines[line_no - 1 : line_no - 1] = [
                f"{indent}and #0x{mask:04X}, sp    "
                "; inserted: memory-bounds mask (stack)",
                f"{indent}bis #0x{base:04X}, sp    "
                "; inserted: memory-bounds base (stack)",
            ]
            continue
        # Rebase the memory operand onto the masked scratch register.
        operand_pattern = re.compile(
            r"([^,\s(]+)?\(\s*r%d\s*\)|@r%d\+?" % (register, register),
            re.IGNORECASE,
        )
        rewritten, count = operand_pattern.subn(
            f"0({SCRATCH_REG})", original
        )
        if count != 1:
            raise MaskingError(
                f"line {line_no}: cannot rebase the memory operand of "
                f"{original.strip()!r}"
            )
        lines[line_no - 1] = (
            rewritten + "    ; rewritten: rebased onto the masked scratch"
        )
        inserted = [
            f"{indent}mov r{register}, {SCRATCH_REG}    "
            "; inserted: copy store base to the reserved scratch",
        ]
        if offset:
            inserted.append(
                f"{indent}add #0x{offset:04X}, {SCRATCH_REG}    "
                "; inserted: fold index offset"
            )
        inserted.extend(
            [
                f"{indent}and #0x{mask:04X}, {SCRATCH_REG}    "
                "; inserted: memory-bounds mask",
                f"{indent}bis #0x{base:04X}, {SCRATCH_REG}    "
                "; inserted: memory-bounds base",
            ]
        )
        lines[line_no - 1 : line_no - 1] = inserted
    return "\n".join(lines) + "\n"
