"""Compiler-style diagnostics for the secure-compile flow (Section 6).

"For each instance where the compiler applies a modification ... it also
reports a compile error or warning to the developer, indicating the line
of code that caused the violation and the change that was made to fix the
violation."
"""

from __future__ import annotations

from typing import List

from repro.core.violations import Violation
from repro.transform.rootcause import RootCauses


def render_diagnostics(
    program_name: str,
    causes: RootCauses,
    fixes: List[str],
) -> str:
    lines: List[str] = []
    for violation in causes.fundamental + causes.port_errors:
        location = f"line {violation.source_line}" if violation.source_line else f"0x{violation.address:04x}"
        lines.append(
            f"{program_name}:{location}: error: {violation.kind}: "
            f"{violation.detail or 'illegal access'} -- change the "
            "software or redefine the information-flow labels"
        )
    for fix in fixes:
        lines.append(f"{program_name}: warning: {fix}")
    for flow in causes.explanations:
        violation = flow.violation
        where = (
            f"0x{violation.address:04x}" if violation is not None else "?"
        )
        lines.append(
            f"{program_name}: note: taint flow at {where}: {flow.summary()}"
        )
    if not lines:
        lines.append(f"{program_name}: no modifications required")
    return "\n".join(lines)
