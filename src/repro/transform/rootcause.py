"""Root-cause identification (Figure 10's middle stage).

Turns the checker's violation list into the two actionable sets the
repairs consume -- store instructions that need masking, and code tasks
whose control flow needs watchdog bounding -- plus the *fundamental*
violations that require programmer attention instead of automatic repair
(footnote 6: illegal direct port/memory accesses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.tracker import AnalysisResult
from repro.core.violations import Violation, ViolationKind

#: Violations automatic repair cannot fix: the software (or the labels)
#: is fundamentally at odds with the policy.
FUNDAMENTAL_KINDS = frozenset(
    {
        ViolationKind.TRUSTED_READ_TAINTED_PORT,
        ViolationKind.TRUSTED_READ_TAINTED_MEMORY,
    }
)


@dataclass
class RootCauses:
    """Actionable repair targets distilled from one analysis."""

    #: addresses of store instructions needing memory-bounds masks
    stores_to_mask: List[int] = field(default_factory=list)
    #: untrusted tasks needing the untainted watchdog reset
    tasks_to_bound: List[str] = field(default_factory=list)
    #: violations requiring programmer attention (reported as errors)
    fundamental: List[Violation] = field(default_factory=list)
    #: direct tainted writes to untainted ports (fundamental unless the
    #: store is reparable by masking -- those appear in stores_to_mask)
    port_errors: List[Violation] = field(default_factory=list)
    #: gate-level taint-flow explanations (``FlowSlice`` per violation),
    #: populated when the analysis recorded provenance; diagnostics quote
    #: these so the developer sees *which labelled input* reached the sink
    explanations: List[object] = field(default_factory=list)

    @property
    def needs_masking(self) -> bool:
        return bool(self.stores_to_mask)

    @property
    def needs_watchdog(self) -> bool:
        return bool(self.tasks_to_bound)

    @property
    def automatic_repair_possible(self) -> bool:
        return not self.fundamental and not self.port_errors


#: Per-analysis cap on attached explanations; backward slices cost
#: O(edges) each and diagnostics only quote the first few anyway.
MAX_EXPLANATIONS = 8


def identify_root_causes(result: AnalysisResult) -> RootCauses:
    causes = RootCauses()
    causes.stores_to_mask = result.violating_stores()
    causes.tasks_to_bound = result.tasks_needing_watchdog()
    for violation in result.violations:
        if violation.kind in FUNDAMENTAL_KINDS:
            causes.fundamental.append(violation)
        elif violation.kind == ViolationKind.TAINTED_WRITE_UNTAINTED_PORT:
            if violation.address in causes.stores_to_mask:
                continue  # masking already repairs this store
            causes.port_errors.append(violation)
    if result.provenance is not None:
        for violation in result.violations[:MAX_EXPLANATIONS]:
            if violation.advisory:
                continue
            causes.explanations.append(result.explain(violation))
    return causes
