"""Watchdog time-slice selection (Section 7.2).

The MSP430-style watchdog offers four interval lengths (64, 512, 8192,
32768 cycles).  A bounded task of W useful cycles is executed as n slices
of one interval I; each slice pays the context save/restore (20 cycles) and
watchdog arming (10 cycles), and the final slice idles until the interval
expires.  "Our toolflow accounts for the overheads of context switching and
scheduling the watchdog timer, along with the maximum duration of a
computational task, to select the number and duration of watchdog intervals
that minimize overhead while providing a deterministic bound on execution
time."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.sim.watchdog import WDT_INTERVALS

#: openMSP430-calibrated costs (Section 7.2, footnote 9).
CONTEXT_SWITCH_CYCLES = 20
WDT_INIT_CYCLES = 10
PER_SLICE_OVERHEAD = CONTEXT_SWITCH_CYCLES + WDT_INIT_CYCLES


@dataclass(frozen=True)
class SlicePlan:
    """A chosen watchdog bounding for one task."""

    interval: int
    interval_select: int  # WDTCTL[1:0] encoding
    slices: int
    task_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.slices * self.interval

    @property
    def overhead_cycles(self) -> int:
        return self.total_cycles - self.task_cycles

    @property
    def overhead_fraction(self) -> float:
        if self.task_cycles == 0:
            return 0.0
        return self.overhead_cycles / self.task_cycles

    @property
    def wdtctl_value(self) -> int:
        """The arming write for this plan (password | interval select)."""
        return 0x5A00 | self.interval_select


def choose_slicing(
    task_cycles: int,
    intervals: Sequence[int] = WDT_INTERVALS,
    per_slice_overhead: int = PER_SLICE_OVERHEAD,
    max_slices: int = None,
) -> SlicePlan:
    """Pick the interval/slice count minimising total bounded time.

    Fewer, longer slices cut context-switch cost but idle longer in the
    final slice; more, shorter slices invert the trade -- the paper's
    stated optimisation, solved exactly over the four intervals.

    *max_slices* caps the slice count: tasks running bare (without an
    RTOS that checkpoints and restores context across slices) must fit in
    a single interval, since a mid-task power-on reset would restart them
    from scratch.
    """
    if task_cycles < 0:
        raise ValueError("task_cycles must be non-negative")
    best = None
    for select, interval in enumerate(intervals):
        useful = interval - per_slice_overhead
        if useful <= 0:
            continue
        slices = max(1, math.ceil(task_cycles / useful))
        if max_slices is not None and slices > max_slices:
            continue
        plan = SlicePlan(
            interval=interval,
            interval_select=select,
            slices=slices,
            task_cycles=task_cycles,
        )
        if best is None or plan.total_cycles < best.total_cycles or (
            plan.total_cycles == best.total_cycles
            and plan.slices < best.slices
        ):
            best = plan
    if best is None:
        raise ValueError(
            f"no slicing plan can bound a {task_cycles}-cycle task "
            f"within {max_slices} slice(s); the task needs an RTOS with "
            "context checkpointing"
        )
    return best
