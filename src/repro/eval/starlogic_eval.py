"""Footnote 8: the *-logic comparison across the violating benchmarks.

"When *-logic analysis was used to verify information flow security on
the six applications with information flow violations, it identified that
the condition violations were not removed ... resulting in 70% of the
gates in MSP430 becoming unknown and tainted, even those required by the
software techniques to remain untainted (e.g., the watchdog timer)."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines import star_logic_analysis
from repro.eval.formatting import format_table
from repro.workloads.registry import BENCHMARKS, TABLE2_VIOLATORS


@dataclass
class StarLogicRow:
    name: str
    violator: bool
    unknown_tainted_fraction: float
    pc_lost_at: Optional[int]
    watchdog_verifiable: bool


def build_starlogic(
    names: Optional[List[str]] = None, cycles: int = 500
) -> List[StarLogicRow]:
    rows: List[StarLogicRow] = []
    for name, info in BENCHMARKS.items():
        if names is not None and name not in names:
            continue
        result = star_logic_analysis(
            info.service_program(), cycles=cycles
        )
        rows.append(
            StarLogicRow(
                name=name,
                violator=info.expected_violator,
                unknown_tainted_fraction=(
                    result.peak_unknown_tainted_fraction
                ),
                pc_lost_at=result.pc_lost_at,
                watchdog_verifiable=result.watchdog_verifiable,
            )
        )
    return rows


def render_starlogic(rows=None, **kwargs) -> str:
    if rows is None:
        rows = build_starlogic(
            names=list(TABLE2_VIOLATORS) + ["mult", "tea8"], **kwargs
        )
    table = format_table(
        [
            "benchmark",
            "violator",
            "unknown+tainted nets",
            "PC lost @cycle",
            "watchdog verifiable",
        ],
        [
            (
                row.name,
                "yes" if row.violator else "no",
                f"{row.unknown_tainted_fraction:.0%}",
                row.pc_lost_at if row.pc_lost_at is not None else "-",
                "yes" if row.watchdog_verifiable else "NO",
            )
            for row in rows
        ],
        title="footnote 8: *-logic style analysis (no PC concretisation)",
    )
    violators = [row for row in rows if row.violator]
    avg = sum(row.unknown_tainted_fraction for row in violators) / max(
        1, len(violators)
    )
    return (
        table
        + f"\naverage unknown+tainted fraction over violators: {avg:.0%} "
        "(paper: ~70% of gates)"
        + "\n=> *-logic cannot verify the software repairs on these "
        "applications; application-specific concretisation can."
    )
