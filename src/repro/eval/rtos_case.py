"""Section 7.3: information-flow-secure scheduling on MiniRTOS.

Demonstrates the two system-level guarantees: (1) no insecure flows
across scheduled tasks, and (2) no task can affect the scheduling itself.
The flow matches the paper: analyse the unprotected system (binSearch
taints the PC and its probe counters may escape), let the toolflow bound
the untrusted task with the watchdog (the reset vector doubles as the
scheduler entry) and mask its flagged stores, verify the repaired system,
and measure the end-to-end runtime overhead with input-based simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.core import TaintTracker
from repro.isa.assembler import assemble
from repro.isasim.executor import run_concrete
from repro.rtos import rtos_completion_stop, rtos_source
from repro.transform import secure_compile


@dataclass
class RtosCaseResult:
    unprotected_conditions: Set[int]
    flagged_stores: int
    masked_stores: int
    bounded_tasks: List[str]
    repaired_secure: bool
    baseline_cycles: int
    protected_cycles: int

    @property
    def overhead_percent(self) -> float:
        return (
            100.0
            * (self.protected_cycles - self.baseline_cycles)
            / self.baseline_cycles
        )

    def report(self) -> str:
        lines = [
            "Section 7.3: information-flow secure scheduling (MiniRTOS + "
            "trusted div + untrusted binSearch)",
            f"  unprotected system violates conditions: "
            f"{sorted(self.unprotected_conditions)}",
            f"  store instructions flagged for masking: "
            f"{self.flagged_stores} (paper: 330 in their compiled "
            "binSearch)",
            f"  tasks bounded with the watchdog: {self.bounded_tasks}",
            f"  repaired system verifies: "
            + ("SECURE" if self.repaired_secure else "INSECURE"),
            f"  runtime to both-tasks-complete: {self.baseline_cycles} -> "
            f"{self.protected_cycles} cycles",
            f"  overhead: {self.overhead_percent:.2f}%   (paper: 0.83%)",
        ]
        return "\n".join(lines)


def build_rtos_case(max_cycles: int = 2_000_000) -> RtosCaseResult:
    source = rtos_source()
    program = assemble(source, name="minirtos")

    unprotected = TaintTracker(program, max_cycles=max_cycles).run()
    baseline = run_concrete(
        program, stop=rtos_completion_stop, max_cycles=200_000
    )

    repaired = secure_compile(
        source,
        name="minirtos",
        task_cycles={"bs_task": 300},
        max_cycles=max_cycles,
    )
    protected = run_concrete(
        repaired.program, stop=rtos_completion_stop, max_cycles=200_000
    )

    return RtosCaseResult(
        unprotected_conditions=unprotected.violated_conditions(),
        flagged_stores=len(unprotected.violating_stores()),
        masked_stores=repaired.masked_stores,
        bounded_tasks=repaired.bounded_tasks,
        repaired_secure=repaired.secure,
        baseline_cycles=baseline.cycles,
        protected_cycles=protected.cycles,
    )
