"""Figure 7: the illustrative symbolic execution tree on real gates.

The paper's example circuit -- ``S' = S XOR In`` into a resettable
flip-flop -- is built with the circuit DSL, compiled, and driven through
the exact input/taint schedule of the figure.  The output reproduces the
three per-cycle state tables (common prefix, left path with the tainted
reset, right path with the untainted reset) and asserts the punchline:
only the *untainted* reset clears the taint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.eval.formatting import format_table
from repro.logic.ternary import ONE, UNKNOWN, ZERO, ternary_repr
from repro.logic.words import TWord
from repro.netlist.builder import CircuitBuilder, Sig
from repro.sim.compiled import CompiledCircuit


def figure7_circuit() -> CompiledCircuit:
    builder = CircuitBuilder("fig7")
    in_sig = builder.input("in", 1)
    rst = builder.input("rst", 1)
    state = builder.reg("S", 1)
    builder.drive(state, builder.xor_(state.q, in_sig), rst=rst[0])
    builder.output("S", state.q)
    builder.output("S_next", Sig([builder.netlist.dffs[0].d]))
    return CompiledCircuit(builder.build())


@dataclass
class Fig7Row:
    cycle: int
    s: Tuple[int, int]
    in_: Tuple[int, int]
    rst: Tuple[int, int]
    s_next: Tuple[int, int]

    def cells(self):
        def render(pair):
            value, taint = pair
            return ternary_repr(value), taint

        s_v, s_t = render(self.s)
        in_v, in_t = render(self.in_)
        rst_v, rst_t = render(self.rst)
        next_v, next_t = render(self.s_next)
        return (
            self.cycle,
            s_v,
            s_t,
            in_v,
            in_t,
            rst_v,
            rst_t,
            next_v,
            next_t,
        )


HEADERS = ["cycle", "S", "ST", "In", "InT", "rst", "rstT", "S'", "S'T"]

#: the figure's input schedule: (In, rst) per cycle for the prefix and
#: each branch.  X = unknown, quoted = tainted.
PREFIX = [
    (TWord.unknown(1), TWord.const(1, 1)),  # cycle 0
    (TWord.const(1, 1), TWord.const(0, 1)),  # cycle 1
    (TWord.const(0, 1, tmask=1), TWord.const(0, 1)),  # cycle 2
]
LEFT_PATH = [
    (TWord.unknown(1), TWord.const(0, 1)),  # cycle 3
    (TWord.unknown(1), TWord.const(1, 1, tmask=1)),  # cycle 4: tainted rst
]
RIGHT_PATH = [
    (TWord.const(1, 1, tmask=1), TWord.const(0, 1)),  # cycle 3
    (TWord.unknown(1), TWord.const(1, 1)),  # cycle 4: untainted rst
]


def _run(circuit, state, schedule, start_cycle) -> List[Fig7Row]:
    rows: List[Fig7Row] = []
    for offset, (in_word, rst_word) in enumerate(schedule):
        circuit.set_input(state, "in", in_word)
        circuit.set_input(state, "rst", rst_word)
        circuit.eval_combinational(state)
        rows.append(
            Fig7Row(
                cycle=start_cycle + offset,
                s=circuit.read_output(state, "S").bit(0),
                in_=in_word.bit(0),
                rst=rst_word.bit(0),
                s_next=circuit.read_output(state, "S_next").bit(0),
            )
        )
        circuit.clock_edge(state)
    return rows


def build_figure7():
    """Returns (prefix rows, left rows, right rows, final states)."""
    circuit = figure7_circuit()
    state = circuit.new_state()
    prefix = _run(circuit, state, PREFIX, 0)

    fork = state.copy()
    left = _run(circuit, state, LEFT_PATH, 3)
    left_final = circuit.read_output(state, "S").bit(0)

    state = fork
    right = _run(circuit, state, RIGHT_PATH, 3)
    right_final = circuit.read_output(state, "S").bit(0)
    return prefix, left, right, left_final, right_final


def render_figure7() -> str:
    prefix, left, right, left_final, right_final = build_figure7()
    parts = [
        format_table(
            HEADERS,
            [row.cells() for row in prefix],
            title="Figure 7: common prefix (reset, untainted then tainted "
            "input)",
        ),
        format_table(
            HEADERS,
            [row.cells() for row in left],
            title="left path: In unknown, then a *tainted* reset",
        ),
        f"  after tainted reset: S = {ternary_repr(left_final[0])}, "
        f"ST = {left_final[1]}   (value clears, taint DOES NOT)",
        format_table(
            HEADERS,
            [row.cells() for row in right],
            title="right path: In tainted 1, then an *untainted* reset",
        ),
        f"  after untainted reset: S = {ternary_repr(right_final[0])}, "
        f"ST = {right_final[1]}   (value and taint both clear)",
    ]
    return "\n\n".join(parts)
