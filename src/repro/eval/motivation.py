"""Figures 2-5: the Section 3 motivating examples, analysed end to end.

* Figure 2 (unknown application): represented by the strict-conditions
  policy mode -- with no application knowledge every sufficient condition
  must be enforced, which is the premise of the secure-by-design systems
  the paper replaces.
* Figure 3: the constant-offset application verifies secure unmodified.
* Figure 4: the tainted-offset application is vulnerable.
* Figure 5: the masked variant verifies secure again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.core import TaintTracker
from repro.eval.formatting import format_table
from repro.isa.assembler import assemble
from repro.workloads import motivating


@dataclass
class MotivationRow:
    figure: str
    description: str
    secure: bool
    conditions: Set[int]


def build_motivation(max_cycles: int = 800_000) -> List[MotivationRow]:
    rows: List[MotivationRow] = []
    for figure, description, source in (
        (
            "Figure 3",
            "constant offset: tainted/untainted halves never mix",
            motivating.figure3_source(),
        ),
        (
            "Figure 4",
            "offset read from the tainted port P1",
            motivating.figure4_source(),
        ),
        (
            "Figure 5",
            "Figure 4 plus the masking repair",
            motivating.figure5_source(),
        ),
    ):
        result = TaintTracker(
            assemble(source, name=figure.replace(" ", "").lower()),
            max_cycles=max_cycles,
        ).run()
        rows.append(
            MotivationRow(
                figure=figure,
                description=description,
                secure=result.secure,
                conditions=result.violated_conditions(),
            )
        )
    return rows


def render_motivation(rows=None) -> str:
    if rows is None:
        rows = build_motivation()
    table = format_table(
        ["figure", "application", "verdict", "conditions violated"],
        [
            (
                row.figure,
                row.description,
                "SECURE" if row.secure else "INSECURE",
                ", ".join(map(str, sorted(row.conditions))) or "-",
            )
            for row in rows
        ],
        title="Figures 3-5: the motivating offset application",
    )
    return (
        table
        + "\nFigure 2 (unknown application): with no application knowledge "
        "all five conditions must be enforced in hardware -- the premise "
        "this paper's software-based approach removes."
    )
