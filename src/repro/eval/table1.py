"""Table 1: the benchmark roster, with measured size and CPI.

The paper lists nine embedded sensor benchmarks from [34] and four EEMBC
kernels, noting "benchmark performance (IPC) on our processor varies from
1.25 to 1.39"; the LP430's multi-cycle core runs at a CPI of roughly 2-4,
and the harness reports the measured band alongside the roster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eval.formatting import format_table
from repro.isasim.executor import run_concrete
from repro.workloads.registry import BENCHMARKS


@dataclass
class Table1Row:
    name: str
    suite: str
    description: str
    code_words: int
    cycles: int
    instructions: int

    @property
    def cpi(self) -> float:
        return self.cycles / max(1, self.instructions)


def build_table1() -> List[Table1Row]:
    rows: List[Table1Row] = []
    for name, info in BENCHMARKS.items():
        program = info.measurement_program()
        run = run_concrete(
            program, max_cycles=100_000, follow_watchdog=False
        )
        rows.append(
            Table1Row(
                name=name,
                suite=info.suite,
                description=info.description,
                code_words=program.code_size,
                cycles=run.cycles,
                instructions=run.steps,
            )
        )
    return rows


def render_table1(rows=None) -> str:
    if rows is None:
        rows = build_table1()
    cpis = [row.cpi for row in rows]
    table = format_table(
        ["benchmark", "suite", "words", "cycles", "CPI"],
        [
            (
                row.name,
                row.suite,
                row.code_words,
                row.cycles,
                f"{row.cpi:.2f}",
            )
            for row in rows
        ],
        title="Table 1: benchmarks (embedded sensor suite [34] + EEMBC [35])",
    )
    return (
        table
        + f"\nCPI band: {min(cpis):.2f} .. {max(cpis):.2f} "
        "(paper: openMSP430 per-instruction rate in a narrow band)"
    )
