"""The evaluation harness: regenerates every table and figure.

Each module produces plain-data rows plus a formatted text block, so the
``benchmarks/`` suite can both benchmark the generation and assert the
paper's qualitative shape (see EXPERIMENTS.md for the per-experiment
paper-vs-measured record):

* :mod:`repro.eval.table1`   -- the benchmark roster + measured CPI.
* :mod:`repro.eval.table2`   -- sufficient-condition violations before and
  after modification.
* :mod:`repro.eval.table3`   -- protection overhead with vs. without
  application-specific analysis.
* :mod:`repro.eval.table4`   -- micro-architectural features of embedded
  processors (static survey data from the paper).
* :mod:`repro.eval.figure1`  -- the GLIFT NAND truth table.
* :mod:`repro.eval.figure7`  -- the symbolic execution tree example.
* :mod:`repro.eval.motivation` -- Figures 2-5 outcomes.
* :mod:`repro.eval.energy`   -- the energy model and headline numbers.
* :mod:`repro.eval.runtime`  -- analysis tractability (footnote 4).
* :mod:`repro.eval.rtos_case` -- the Section 7.3 scheduling use case.
* :mod:`repro.eval.starlogic_eval` -- the footnote 8 *-logic comparison.
"""

from repro.eval.formatting import format_table

__all__ = ["format_table"]
