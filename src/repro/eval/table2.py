"""Table 2: sufficient-condition violations before and after modification.

"Seven benchmarks do not violate any of the conditions ... six benchmarks
violate sufficient conditions 1 and 2 ... After performing software
modifications identified by our toolflow, all condition violations are
eliminated."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core import TaintTracker
from repro.eval.formatting import format_table
from repro.isasim.executor import run_concrete
from repro.transform import secure_compile
from repro.workloads.registry import BENCHMARKS


@dataclass
class Table2Row:
    name: str
    unmodified: Set[int]
    modified: Set[int]
    masked_stores: int = 0
    bounded: bool = False
    analysis_seconds: float = 0.0

    def mark(self, conditions: Set[int], condition: int) -> str:
        return "X" if condition in conditions else "-"


def build_table2(
    names: Optional[List[str]] = None,
    max_cycles: int = 800_000,
) -> List[Table2Row]:
    rows: List[Table2Row] = []
    for name, info in BENCHMARKS.items():
        if names is not None and name not in names:
            continue
        result = TaintTracker(
            info.service_program(), max_cycles=max_cycles
        ).run()
        unmodified = result.violated_conditions()
        row = Table2Row(
            name=name,
            unmodified=unmodified,
            modified=set(),
            analysis_seconds=result.stats.wall_seconds,
        )
        if unmodified:
            measured = run_concrete(
                info.measurement_program(),
                max_cycles=100_000,
                follow_watchdog=False,
            )
            repaired = secure_compile(
                info.service_source,
                name=name,
                task_cycles={"bench": measured.cycles},
                max_cycles=max_cycles,
            )
            row.modified = repaired.analysis.violated_conditions()
            row.masked_stores = repaired.masked_stores
            row.bounded = bool(repaired.bounded_tasks)
        rows.append(row)
    return rows


def render_table2(rows=None, **kwargs) -> str:
    if rows is None:
        rows = build_table2(**kwargs)
    table = format_table(
        [
            "benchmark",
            "unmod C1",
            "unmod C2",
            "mod C1",
            "mod C2",
            "masked",
            "watchdog",
        ],
        [
            (
                row.name,
                row.mark(row.unmodified, 1),
                row.mark(row.unmodified, 2),
                row.mark(row.modified, 1),
                row.mark(row.modified, 2),
                row.masked_stores,
                "yes" if row.bounded else "-",
            )
            for row in rows
        ],
        title=(
            "Table 2: benchmarks violating sufficient conditions 1 and 2 "
            "before/after modification"
        ),
    )
    violators = [row.name for row in rows if row.unmodified]
    clean = [row.name for row in rows if not row.unmodified]
    return (
        table
        + f"\nviolators ({len(violators)}): {', '.join(violators)}"
        + f"\nclean ({len(clean)}): {', '.join(clean)}"
        + "\nafter modification: "
        + (
            "all condition violations eliminated"
            if all(not row.modified for row in rows)
            else "VIOLATIONS REMAIN"
        )
    )
