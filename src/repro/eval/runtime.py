"""Analysis tractability (footnote 4).

"This conservative approximation technique allows input-independent
gate-level taint tracking to complete in a tractable amount of time, even
for applications with an exponentially-large or infinite number of
execution paths ... complete analysis of our most complex system takes 3
hours" (on the authors' testbed; ours is a Python gate-level simulator, so
we report our own wall times plus the exploration-effort counters that
show *why* it terminates: merges prune the unbounded tree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import TaintTracker
from repro.eval.formatting import format_table
from repro.workloads.registry import BENCHMARKS


@dataclass
class RuntimeRow:
    name: str
    wall_seconds: float
    paths: int
    forks: int
    merges: int
    merge_terminations: int
    cycles: int
    instructions: int


def build_runtime(
    names: Optional[List[str]] = None, max_cycles: int = 1_200_000
) -> List[RuntimeRow]:
    rows: List[RuntimeRow] = []
    for name, info in BENCHMARKS.items():
        if names is not None and name not in names:
            continue
        result = TaintTracker(
            info.service_program(), max_cycles=max_cycles
        ).run()
        stats = result.stats
        rows.append(
            RuntimeRow(
                name=name,
                wall_seconds=stats.wall_seconds,
                paths=stats.paths,
                forks=stats.forks,
                merges=stats.merges,
                merge_terminations=stats.terminations_by_merge,
                cycles=stats.cycles_simulated,
                instructions=stats.instructions,
            )
        )
    return rows


def render_runtime(rows=None, **kwargs) -> str:
    if rows is None:
        rows = build_runtime(**kwargs)
    table = format_table(
        [
            "benchmark",
            "wall (s)",
            "paths",
            "forks",
            "merges",
            "merge-stops",
            "cycles",
        ],
        [
            (
                row.name,
                f"{row.wall_seconds:.1f}",
                row.paths,
                row.forks,
                row.merges,
                row.merge_terminations,
                row.cycles,
            )
            for row in rows
        ],
        title="analysis effort per benchmark (footnote 4: conservative "
        "merging keeps the infinite tree tractable)",
    )
    total = sum(row.wall_seconds for row in rows)
    slowest = max(rows, key=lambda row: row.wall_seconds)
    return (
        table
        + f"\ntotal wall time: {total:.0f}s; most complex system: "
        f"{slowest.name} at {slowest.wall_seconds:.1f}s "
        "(paper: 3 hours on the authors' RTL flow)"
    )
