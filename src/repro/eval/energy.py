"""The energy model and the paper's headline numbers.

The abstract's claim: software modifications eliminate the vulnerabilities
"at 15% energy overhead, on average" and cost "3.3x" less than the
application-agnostic approach.

The LP430's energy model is an activity-weighted per-cycle model in the
spirit of ULP microcontroller datasheets (TSMC 65GP at 1V/100MHz flavour):
active compute cycles cost 1.0 units, memory-access cycles 1.3 (bus and
array switching), and the idle self-loop that pads the final watchdog
slice 0.55 (short loop, quiet datapath).  Absolute joules are irrelevant
to the reproduction; the *ratios* between base, masked and idle cycles is
what Table 3's energy view needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.eval.formatting import format_table
from repro.eval.table3 import Table3Row

#: relative energy per cycle by activity class
ENERGY_ACTIVE = 1.0
ENERGY_MEMORY = 1.3
ENERGY_IDLE = 0.55

#: fraction of a kernel's base cycles spent in memory phases (SL/DL/E
#: store cycles); measured band for the LP430 benchmark suite.
MEMORY_CYCLE_FRACTION = 0.25


def cycles_energy(active_cycles: int, idle_cycles: int = 0) -> float:
    """Energy (arbitrary units) for a split of active and idle cycles."""
    memory = active_cycles * MEMORY_CYCLE_FRACTION
    compute = active_cycles - memory
    return (
        compute * ENERGY_ACTIVE
        + memory * ENERGY_MEMORY
        + idle_cycles * ENERGY_IDLE
    )


@dataclass
class EnergyRow:
    name: str
    base_energy: float
    with_energy: float
    without_energy: float

    @property
    def with_overhead(self) -> float:
        return 100.0 * (self.with_energy - self.base_energy) / self.base_energy

    @property
    def without_overhead(self) -> float:
        return (
            100.0
            * (self.without_energy - self.base_energy)
            / self.base_energy
        )


def energy_rows(table3_rows: List[Table3Row]) -> List[EnergyRow]:
    """Derive the energy view from Table 3's measured cycle counts.

    Protected runtimes split into the task's active cycles and the idle
    fill of the final slice (protected - active), which burns less power.
    """
    rows: List[EnergyRow] = []
    for row in table3_rows:
        base = cycles_energy(row.base_cycles)
        # with analysis: active portion grows by the masking instructions;
        # anything beyond that in the protected runtime is idle fill.
        with_active = min(row.with_cycles, int(row.base_cycles * 1.35))
        with_idle = max(0, row.with_cycles - with_active)
        without_active = min(
            row.without_cycles, int(row.base_cycles * 1.5)
        )
        without_idle = max(0, row.without_cycles - without_active)
        rows.append(
            EnergyRow(
                name=row.name,
                base_energy=base,
                with_energy=cycles_energy(with_active, with_idle),
                without_energy=cycles_energy(
                    without_active, without_idle
                ),
            )
        )
    return rows


def summarize_energy(rows: List[EnergyRow]) -> Dict[str, float]:
    with_avg = sum(row.with_overhead for row in rows) / len(rows)
    without_avg = sum(row.without_overhead for row in rows) / len(rows)
    return {
        "with_avg": with_avg,
        "without_avg": without_avg,
        "reduction_factor": without_avg / with_avg
        if with_avg
        else float("inf"),
    }


def render_energy(table3_rows: List[Table3Row]) -> str:
    rows = energy_rows(table3_rows)
    table = format_table(
        ["benchmark", "without analysis %", "with analysis %"],
        [
            (
                row.name,
                f"{row.without_overhead:.1f}",
                f"{row.with_overhead:.1f}",
            )
            for row in rows
        ],
        title="Energy overhead of software-based information flow security",
    )
    summary = summarize_energy(rows)
    return (
        table
        + f"\naverage energy overhead with analysis: "
        f"{summary['with_avg']:.1f}%   (paper headline: ~15%)"
        + f"\nenergy cost reduction from analysis:   "
        f"{summary['reduction_factor']:.1f}x   (paper headline: 3.3x)"
    )
