"""Table 3: protection overhead with vs. without application analysis.

Methodology (the paper's, Section 7.2): masking cost is *measured* by
running the masked binary cycle-accurately; watchdog bounding follows the
time-slicing model "as an RTOS might schedule one computational task
across multiple time slices", i.e. the overhead-minimising slice plan over
the four watchdog intervals with 20-cycle context switches and 10-cycle
watchdog arming per slice, plus the idle fill of the final slice.

* **With analysis**: clean benchmarks run unmodified (0%); violators get
  masks only on the stores root-cause analysis flags, and watchdog
  bounding only when their control flow is tainted.
* **Without analysis** (unknown application): every store masked, every
  task time-bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.baselines.alwayson import untrusted_store_addresses
from repro.core import TaintTracker, default_policy
from repro.eval.formatting import format_table
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.isasim.executor import run_concrete
from repro.transform import choose_slicing, insert_masks
from repro.workloads.registry import BENCHMARKS


def measured_cycles(program: Program) -> int:
    run = run_concrete(program, max_cycles=400_000, follow_watchdog=False)
    if not run.halted:
        raise RuntimeError(f"{program.name}: run never halted")
    return run.cycles


@dataclass
class Table3Row:
    name: str
    base_cycles: int
    with_cycles: int
    without_cycles: int
    needs_watchdog: bool
    masked_with: int
    masked_without: int

    @property
    def with_overhead(self) -> float:
        return 100.0 * (self.with_cycles - self.base_cycles) / self.base_cycles

    @property
    def without_overhead(self) -> float:
        return (
            100.0
            * (self.without_cycles - self.base_cycles)
            / self.base_cycles
        )


def _masked_measurement_cycles(info, store_addresses) -> int:
    """Measured runtime of the benchmark with masks on *store_addresses*."""
    if not store_addresses:
        return measured_cycles(
            assemble(info.measurement_source, name=info.name)
        )
    program = assemble(info.measurement_source, name=info.name)
    masked_source = insert_masks(
        info.measurement_source, program, store_addresses, default_policy()
    )
    return measured_cycles(
        assemble(masked_source, name=f"{info.name}_masked")
    )


def build_table3(
    names: Optional[List[str]] = None,
    max_cycles: int = 800_000,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Table3Row]:
    rows: List[Table3Row] = []
    for name, info in BENCHMARKS.items():
        if names is not None and name not in names:
            continue
        if progress:
            progress(name)
        base = measured_cycles(
            assemble(info.measurement_source, name=name)
        )

        # --- with analysis: repair only the identified root causes -----
        analysis = TaintTracker(
            info.service_program(), max_cycles=max_cycles
        ).run()
        flagged_stores = analysis.violating_stores()
        needs_watchdog = bool(analysis.tasks_needing_watchdog())
        if analysis.secure:
            with_cycles = base
        else:
            masked = _masked_measurement_cycles(info, flagged_stores)
            if needs_watchdog:
                with_cycles = choose_slicing(masked).total_cycles
            else:
                with_cycles = masked

        # --- without analysis: protect everything ----------------------
        program = assemble(info.service_source, name=name)
        all_stores_service = untrusted_store_addresses(
            program, include_pushes=True
        )
        measurement_program = assemble(info.measurement_source, name=name)
        all_stores = untrusted_store_addresses(
            measurement_program, include_pushes=True
        )
        masked_all = _masked_measurement_cycles(info, all_stores)
        without_cycles = choose_slicing(masked_all).total_cycles

        rows.append(
            Table3Row(
                name=name,
                base_cycles=base,
                with_cycles=with_cycles,
                without_cycles=without_cycles,
                needs_watchdog=needs_watchdog,
                masked_with=len(flagged_stores),
                masked_without=len(all_stores_service),
            )
        )
    return rows


def summarize(rows: List[Table3Row]) -> Dict[str, float]:
    with_avg = sum(row.with_overhead for row in rows) / len(rows)
    without_avg = sum(row.without_overhead for row in rows) / len(rows)
    modified = [row for row in rows if row.with_overhead > 0]
    with_mod = (
        sum(row.with_overhead for row in modified) / len(modified)
        if modified
        else 0.0
    )
    without_mod = (
        sum(row.without_overhead for row in modified) / len(modified)
        if modified
        else 0.0
    )
    return {
        "with_avg": with_avg,
        "without_avg": without_avg,
        "reduction_factor": without_avg / with_avg
        if with_avg
        else float("inf"),
        "with_avg_modified_only": with_mod,
        "without_avg_modified_only": without_mod,
    }


def render_table3(rows=None, **kwargs) -> str:
    if rows is None:
        rows = build_table3(**kwargs)
    table = format_table(
        [
            "benchmark",
            "base cyc",
            "without analysis %",
            "with analysis %",
            "masked w/o",
            "masked w/",
        ],
        [
            (
                row.name,
                row.base_cycles,
                f"{row.without_overhead:.1f}",
                f"{row.with_overhead:.1f}",
                row.masked_without,
                row.masked_with,
            )
            for row in rows
        ],
        title=(
            "Table 3: performance overhead (%) of watchdog reset + "
            "address masking, without vs. with application-specific "
            "analysis"
        ),
    )
    summary = summarize(rows)
    return (
        table
        + f"\naverage overhead without analysis: "
        f"{summary['without_avg']:.1f}%   (paper: ~49.8%)"
        + f"\naverage overhead with analysis:    "
        f"{summary['with_avg']:.1f}%   (paper: ~15.1%)"
        + f"\ncost reduction from analysis:      "
        f"{summary['reduction_factor']:.1f}x   (paper: 3.3x)"
    )
