"""Plain-text table and JSON rendering shared by the evaluation modules
and the CLI's ``--json`` outputs."""

from __future__ import annotations

import dataclasses
import json
from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    body: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in body)
    return "\n".join(parts)


def to_jsonable(value):
    """Recursively convert *value* into plain JSON-compatible data.

    Handles dataclasses, mappings, sequences, sets and numpy scalars
    (anything exposing ``.item()``); everything else falls back to
    ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(item) for item in value)
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def format_json(value, indent: int = 2) -> str:
    """Render *value* as pretty-printed JSON (after :func:`to_jsonable`)."""
    return json.dumps(to_jsonable(value), indent=indent, sort_keys=False)
