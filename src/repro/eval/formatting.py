"""Plain-text table rendering shared by the evaluation modules."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    body: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in body)
    return "\n".join(parts)
