"""Figure 1: the GLIFT-augmented NAND gate truth table.

Regenerated from the executable semantics in :mod:`repro.logic.glift`; the
sixteen boolean rows must equal the paper's table bit for bit, and the
ternary extension (the X rows the symbolic simulation adds) is shown
alongside.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.eval.formatting import format_table
from repro.logic.glift import GATE_FUNCTIONS, glift_eval, glift_nand_truth_table
from repro.logic.ternary import TERNARY_VALUES, ternary_repr


def boolean_rows() -> List[Tuple[int, int, int, int, int, int]]:
    return glift_nand_truth_table()


def ternary_rows() -> List[Tuple[str, int, str, int, str, int]]:
    rows = []
    nand = GATE_FUNCTIONS["NAND2"]
    for value_a in TERNARY_VALUES:
        for taint_a in (0, 1):
            for value_b in TERNARY_VALUES:
                for taint_b in (0, 1):
                    out_value, out_taint = glift_eval(
                        nand, (value_a, value_b), (taint_a, taint_b)
                    )
                    rows.append(
                        (
                            ternary_repr(value_a),
                            taint_a,
                            ternary_repr(value_b),
                            taint_b,
                            ternary_repr(out_value),
                            out_taint,
                        )
                    )
    return rows


def render_figure1(include_ternary: bool = False) -> str:
    table = format_table(
        ["A", "AT", "B", "BT", "O", "OT"],
        boolean_rows(),
        title="Figure 1: GLIFT truth table for a NAND gate",
    )
    if not include_ternary:
        return table
    extended = format_table(
        ["A", "AT", "B", "BT", "O", "OT"],
        ternary_rows(),
        title="ternary extension (all 36 value/taint combinations)",
    )
    return table + "\n\n" + extended
