"""Table 4: micro-architectural features in recent embedded processors.

Static survey data transcribed from the paper (Section 8): ultra-low-power
processors "tend to be simple ... and often do not support non-determinism
(no branch prediction and caching)", which is what makes the symbolic
co-analysis tractable.  The LP430 row records the reproduction's target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eval.formatting import format_table


@dataclass(frozen=True)
class Table4Row:
    processor: str
    branch_predictor: bool
    cache: bool


TABLE4: List[Table4Row] = [
    Table4Row("ARM Cortex-M0", False, False),
    Table4Row("ARM Cortex-M3", True, False),
    Table4Row("Atmel ATxmega128A4", False, False),
    Table4Row("Freescale/NXP MC13224v", False, False),
    Table4Row("Intel Quark-D1000", True, True),
    Table4Row("Jennic/NXP JN5169", False, False),
    Table4Row("SiLab Si2012", False, False),
    Table4Row("TI MSP430", False, False),
    Table4Row("LP430 (this reproduction)", False, False),
]


def render_table4() -> str:
    table = format_table(
        ["processor", "branch predictor", "cache"],
        [
            (
                row.processor,
                "yes" if row.branch_predictor else "no",
                "yes" if row.cache else "no",
            )
            for row in TABLE4
        ],
        title="Table 4: microarchitectural features in recent embedded "
        "processors",
    )
    deterministic = sum(
        1
        for row in TABLE4
        if not row.branch_predictor and not row.cache
    )
    return (
        table
        + f"\n{deterministic}/{len(TABLE4)} have neither predictor nor "
        "cache: symbolic co-analysis fits the class"
    )
