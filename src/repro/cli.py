"""Command-line front end for the toolflow.

Mirrors how the paper's tool is used: point it at an application source,
get the verdict, the diagnostics and (optionally) the repaired binary.

    python -m repro.cli analyze  app.s43 [--json] [--trace t.jsonl]
    python -m repro.cli analyze  app.s43 --provenance   # record taint flows
    python -m repro.cli analyze  app.s43 --deadline 3600 \\
        --checkpoint run.ckpt --checkpoint-every 16   # resumable
    python -m repro.cli analyze  app.s43 --resume run.ckpt
    python -m repro.cli analyze  app.s43 --jobs 4   # bit-identical, parallel
    python -m repro.cli analyze-all --jobs 4 -o results.json  # Table 1 sweep
    python -m repro.cli repair   app.s43 -o app_secure.s43
    python -m repro.cli run      app.s43 --max-cycles 20000
    python -m repro.cli disasm   app.s43
    python -m repro.cli stats    [--json]
    python -m repro.cli profile  intavg   # per-phase time/counter table
    python -m repro.cli explain  figure4 --violation 0 --dot flow.dot
    python -m repro.cli report   figure4 -o report.html
    python -m repro.cli record   figure4 --out t.timeline  # flight recorder
    python -m repro.cli view     t.timeline --out t.html   # time-travel UI
    python -m repro.cli trace-lint t.jsonl   # validate a JSONL trace
    python -m repro.cli serve    --root svc --workers 2    # analysis daemon
    python -m repro.cli submit   app.s43 --wait            # job -> verdict
    python -m repro.cli jobs     [JOB_ID]                  # queue status
    python -m repro.cli watch    JOB_ID                    # live progress

Exit codes (see ``repro.resilience.errors`` and DESIGN.md): 0 secure,
1 insecure, 2 fundamental violation, 3 inconclusive (budget exhausted),
4 input error, 5 checkpoint error, 6 analysis error, 130 interrupted.
"""

from __future__ import annotations

import argparse
import signal
import sys
from contextlib import contextmanager, nullcontext
from pathlib import Path

from repro.core import TaintTracker, default_policy, secret_policy
from repro.cpu import cpu_stats
from repro.eval.formatting import format_json, format_table, to_jsonable
from repro.isa.assembler import AssemblyError, assemble
from repro.isa.disasm import disassemble_program
from repro.isasim.executor import run_concrete
from repro.obs import (
    Observer,
    ProvenanceRecorder,
    TimelineRecorder,
    TraceRecorder,
    explain_violation,
    lint_trace,
    load_timeline,
    observe,
    save_timeline,
)
from repro.obs.report import build_report
from repro.obs.viewer import build_viewer
from repro.resilience import (
    AnalysisBudget,
    AnalysisInterrupted,
    Checkpointer,
    InputError,
    ReproError,
    VERDICT_EXIT_CODES,
    read_checkpoint,
)
from repro.transform import FundamentalViolation, secure_compile

#: Canonical pipeline phases, in reporting order (the profile table always
#: prints these four, then any additional spans observed).
PROFILE_PHASES = ("levelize", "explore", "check", "repair")

#: Violations explained inline by ``analyze --provenance`` (backward
#: slices cost O(edges) each; ``repro explain`` picks any index).
_EXPLAIN_CAP = 8


def _policy(name: str):
    if name == "untrusted":
        return default_policy()
    if name == "secret":
        return secret_policy()
    raise SystemExit(f"unknown policy {name!r} (untrusted|secret)")


def _load(path: str) -> tuple:
    try:
        source = Path(path).read_text()
    except OSError as error:
        raise InputError(
            f"cannot read source file {path!r}: {error}", path=path
        ) from error
    name = Path(path).stem
    try:
        return source, assemble(source, name=name), name
    except AssemblyError as error:
        raise InputError(
            f"cannot assemble {path!r}: {error}", path=path
        ) from error


def _budget_from(args) -> AnalysisBudget:
    """An :class:`AnalysisBudget` assembled from the resource flags."""
    return AnalysisBudget(
        max_paths=getattr(args, "max_paths", None) or 4_096,
        deadline_seconds=getattr(args, "deadline", None),
        max_merged_states=getattr(args, "max_merged_states", None),
        max_rss_mb=getattr(args, "max_rss_mb", None),
    )


@contextmanager
def _graceful_interrupts(tracker):
    """Route SIGINT/SIGTERM to a cooperative tracker interrupt.

    The handler only sets a flag (signal-safe); the tracker notices it at
    the next fetch boundary, writes a checkpoint when one is configured,
    and raises :class:`AnalysisInterrupted` instead of dying mid-cycle.
    """

    def handler(signum, frame):
        tracker.request_interrupt(signal.Signals(signum).name)

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except ValueError:
            pass  # not the main thread (e.g. test runners)
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _trace_for(args) -> TraceRecorder | None:
    if not getattr(args, "trace", None):
        return None
    try:
        return TraceRecorder(args.trace)
    except OSError as error:
        raise SystemExit(f"cannot open trace file {args.trace!r}: {error}")


def _recorder_for(args) -> ProvenanceRecorder | None:
    """A ProvenanceRecorder when ``--provenance`` was given, else None."""
    if not getattr(args, "provenance", False):
        return None
    return ProvenanceRecorder(
        capacity=getattr(args, "provenance_capacity", None) or (1 << 20)
    )


def _observer_for(args) -> Observer | None:
    """An Observer when any obs output was requested, else None."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics", None)):
        return None
    return Observer(trace=_trace_for(args))


def _finish_observer(observer: Observer | None, args) -> None:
    """Write the metrics file and close the trace sink."""
    if observer is None:
        return
    if getattr(args, "metrics", None):
        try:
            Path(args.metrics).write_text(
                format_json(observer.snapshot()) + "\n"
            )
        except OSError as error:
            raise SystemExit(
                f"cannot write metrics file {args.metrics!r}: {error}"
            )
    observer.close()


def _analysis_document(result) -> dict:
    """The ``analyze --json`` payload."""
    return {
        "program": result.program.name,
        "policy": {
            "name": result.policy.name,
            "kind": result.policy.kind,
        },
        "secure": result.secure,
        "verdict": result.verdict,
        "degraded": result.degraded,
        "exhausted_budgets": list(result.exhausted),
        "violated_conditions": sorted(result.violated_conditions()),
        "violations": [
            {
                "kind": violation.kind,
                "condition": violation.condition,
                "severity": violation.severity,
                "cycle": violation.cycle,
                "address": f"0x{violation.address:04x}",
                "task": violation.task,
                "advisory": violation.advisory,
                "detail": violation.detail,
            }
            for violation in result.violations
        ],
        "stats": to_jsonable(result.stats),
        "tree": result.tree.summary(),
    }


def cmd_analyze(args) -> int:
    _, program, _ = _load(args.source)
    observer = _observer_for(args)
    recorder = _recorder_for(args)

    checkpointer = None
    if args.checkpoint:
        checkpointer = Checkpointer(
            args.checkpoint, every_paths=args.checkpoint_every
        )
    from repro.cpu import compiled_cpu

    tracker = TaintTracker(
        program,
        policy=_policy(args.policy),
        circuit=compiled_cpu(getattr(args, "engine", "dense")),
        max_cycles=args.max_cycles,
        budget=_budget_from(args),
        checkpointer=checkpointer,
        obs=observer,
        provenance=recorder,
        jobs=getattr(args, "jobs", 1),
    )
    if args.resume:
        payload = read_checkpoint(
            args.resume, expected_digest=tracker.config_digest()
        )
        tracker.restore_checkpoint(payload)
        print(
            f"resumed from {args.resume} "
            f"({tracker.stats.paths} path(s) already explored)",
            file=sys.stderr,
        )

    interrupts = (
        _graceful_interrupts(tracker)
        if (args.checkpoint or args.resume)
        else nullcontext()
    )
    try:
        with interrupts, observe(observer) if observer else nullcontext():
            result = tracker.run()
    finally:
        _finish_observer(observer, args)
    if args.json:
        document = _analysis_document(result)
        if recorder is not None:
            document["provenance"] = recorder.snapshot()
            document["explanations"] = [
                result.explain(violation).to_document()
                for violation in result.violations[:_EXPLAIN_CAP]
            ]
        print(format_json(document))
    else:
        print(result.report())
        if recorder is not None:
            print()
            truncated = " [truncated]" if recorder.truncated else ""
            print(
                f"provenance: {recorder.recorded} taint-flow edge(s) "
                f"recorded{truncated}"
            )
            for index, violation in enumerate(
                result.violations[:_EXPLAIN_CAP]
            ):
                print(f"  violation {index}: "
                      f"{result.explain(violation).summary()}")
        if args.tree:
            print()
            print(result.tree.render())
    return VERDICT_EXIT_CODES[result.verdict]


def cmd_analyze_all(args) -> int:
    from repro.parallel.analyze_all import run_analyze_all
    from repro.workloads.registry import benchmark_names

    if args.workloads:
        workloads = args.workloads
    else:
        workloads = benchmark_names()
    budget = {
        "max_paths": getattr(args, "max_paths", None) or 4_096,
        "deadline_seconds": getattr(args, "deadline", None),
        "max_merged_states": getattr(args, "max_merged_states", None),
        "max_rss_mb": getattr(args, "max_rss_mb", None),
    }
    document = run_analyze_all(
        workloads,
        jobs=args.jobs,
        policy=args.policy,
        max_cycles=args.max_cycles,
        budget=budget,
        engine=getattr(args, "engine", "dense"),
    )
    rendered = format_json(document)
    if args.output:
        try:
            Path(args.output).write_text(rendered + "\n")
        except OSError as error:
            raise SystemExit(
                f"cannot write output file {args.output!r}: {error}"
            )
    if args.json or not args.output:
        print(rendered)
    if not args.json:
        summary = document["summary"]
        for entry in document["workloads"]:
            line = (
                f"{entry['workload']}: {entry['verdict']} "
                f"({entry['wall_seconds']:.2f}s)"
            )
            print(line, file=sys.stderr)
        print(
            f"analyzed {summary['total']} workload(s) with "
            f"--jobs {document['jobs']}: "
            f"{summary['secure']} secure, "
            f"{summary['insecure']} insecure, "
            f"{summary['inconclusive']} inconclusive, "
            f"{summary['errors']} error(s) in "
            f"{summary['wall_seconds']:.2f}s "
            f"(serial time {summary['serial_seconds']:.2f}s)",
            file=sys.stderr,
        )
    return document["summary"]["exit_code"]


def cmd_repair(args) -> int:
    source, _, name = _load(args.source)
    try:
        repaired = secure_compile(
            source,
            name=name,
            policy=_policy(args.policy),
            max_cycles=args.max_cycles,
        )
    except FundamentalViolation as error:
        print(error.diagnostics, file=sys.stderr)
        return 2
    print(repaired.diagnostics())
    print(repaired.analysis.report())
    if args.output:
        Path(args.output).write_text(repaired.source)
        print(f"repaired source written to {args.output}")
    if repaired.partial:
        print(
            "repair incomplete: an analysis budget was exhausted before "
            "the result could be verified",
            file=sys.stderr,
        )
        return VERDICT_EXIT_CODES["inconclusive"]
    return VERDICT_EXIT_CODES[repaired.verdict]


def cmd_run(args) -> int:
    _, program, _ = _load(args.source)
    run = run_concrete(
        program, max_cycles=args.max_cycles, follow_watchdog=False
    )
    print(
        f"halted={run.halted} cycles={run.cycles} "
        f"instructions={run.steps} stores={run.dynamic_stores} "
        f"resets={run.resets}"
    )
    for port, word in run.port_writes:
        value = f"0x{word.bits:04x}" if word.is_concrete else repr(word)
        print(f"  {port} <- {value}")
    return 0


def cmd_disasm(args) -> int:
    _, program, _ = _load(args.source)
    print(disassemble_program(program))
    return 0


def cmd_stats(args) -> int:
    stats = cpu_stats()
    if args.json:
        print(format_json(stats))
    else:
        print(stats.format())
    return 0


# ---------------------------------------------------------------------------
# profile
# ---------------------------------------------------------------------------
def _resolve_workload(spec: str) -> tuple:
    """*spec* is a Table 1 benchmark name (case-insensitive) or a source
    file path; returns ``(source, name)``."""
    path = Path(spec)
    if path.is_file():
        return path.read_text(), path.stem
    if spec.lower() == "figure4":
        # The paper's motivating example -- the canonical
        # known-violation workload for explain/report demos.
        from repro.workloads.motivating import figure4_source

        return figure4_source(), "figure4"
    from repro.workloads.registry import BENCHMARKS

    by_lower = {name.lower(): info for name, info in BENCHMARKS.items()}
    info = by_lower.get(spec.lower())
    if info is None:
        known = ", ".join(sorted(BENCHMARKS) + ["figure4"])
        raise SystemExit(
            f"unknown workload {spec!r}: not a file, and not one of "
            f"the registered benchmarks ({known})"
        )
    return info.service_source, info.name


#: Counters surfaced in the profile breakdown (others stay in --json).
_PROFILE_COUNTERS = (
    "sim.gate_evals",
    "sim.eval_passes",
    "tracker.cycles",
    "tracker.fast_forwarded_cycles",
    "tracker.instructions",
    "tracker.paths",
    "tracker.forks",
    "tracker.merges",
    "tree.nodes",
    "tree.pruned",
    "tracker.violations",
)


def cmd_profile(args) -> int:
    source, name = _resolve_workload(args.workload)
    program = assemble(source, name=name)
    policy = _policy(args.policy)
    observer = Observer(trace=_trace_for(args))
    budget = _budget_from(args)

    repaired = None
    repair_error = None
    with observe(observer):
        # A fresh compile so the levelize phase is measured rather than
        # served from the process-wide cache.
        from repro.cpu import build_cpu
        from repro.sim.compiled import CompiledCircuit

        with observer.span("elaborate"):
            netlist = build_cpu()
        circuit = CompiledCircuit(netlist)  # spans "levelize" internally
        result = TaintTracker(
            program,
            policy=policy,
            circuit=circuit,
            max_cycles=args.max_cycles,
            budget=budget,
        ).run()
        if result.verdict == "insecure" and not args.no_repair:
            try:
                repaired = secure_compile(
                    source,
                    name=name,
                    policy=policy,
                    max_cycles=args.max_cycles,
                    budget=budget,
                )
            except FundamentalViolation as error:
                repair_error = str(error.diagnostics)

    snapshot = observer.snapshot()
    _finish_observer(observer, args)
    counters = snapshot["metrics"]["counters"]
    if not counters:
        print(
            "profile error: empty metrics snapshot -- the pipeline "
            "ran without reporting a single counter",
            file=sys.stderr,
        )
        return 1

    if args.json:
        print(
            format_json(
                {
                    "workload": name,
                    "policy": policy.name,
                    "secure": result.secure,
                    "verdict": result.verdict,
                    "repaired": repaired is not None and repaired.secure,
                    "repair_error": repair_error,
                    "analysis": _analysis_document(result),
                    **snapshot,
                }
            )
        )
        return 0

    profile = snapshot["profile"]
    rows = []
    for phase in PROFILE_PHASES:
        entry = profile.get(
            phase, {"calls": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0}
        )
        rows.append(
            (
                phase,
                entry["calls"],
                f"{entry['wall_seconds']:.3f}",
                f"{entry['cpu_seconds']:.3f}",
            )
        )
    for path, entry in profile.items():
        if path in PROFILE_PHASES:
            continue
        rows.append(
            (
                path,
                entry["calls"],
                f"{entry['wall_seconds']:.3f}",
                f"{entry['cpu_seconds']:.3f}",
            )
        )
    print(
        format_table(
            ["phase", "calls", "wall (s)", "cpu (s)"],
            rows,
            title=f"profile of {name!r} (policy {policy.name!r})",
        )
    )
    print()
    counter_rows = [
        (key, counters[key]) for key in _PROFILE_COUNTERS if key in counters
    ]
    gate_types = sorted(
        key for key in counters if key.startswith("sim.gate_evals.")
    )
    counter_rows.extend((key, counters[key]) for key in gate_types)
    for gauge, value in snapshot["metrics"]["gauges"].items():
        counter_rows.append((gauge, value))
    print(format_table(["counter", "value"], counter_rows))
    density = snapshot["metrics"]["histograms"].get("tracker.taint_density")
    if density and density["count"]:
        print()
        print(
            f"taint density: mean={density['mean']:.4f} "
            f"min={density['min']:.4f} max={density['max']:.4f} "
            f"over {density['count']} sampled instructions"
        )
    print()
    line = f"analysis verdict: {result.verdict.upper()}"
    if result.exhausted:
        line += f" (budget exhausted: {', '.join(result.exhausted)})"
    if repaired is not None:
        line += (
            "; repaired to SECURE"
            if repaired.secure
            else "; repair did not converge"
        )
    elif repair_error is not None:
        line += "; repair failed (fundamental violation)"
    print(line)
    return 0


# ---------------------------------------------------------------------------
# perf (simulator hot-path attribution)
# ---------------------------------------------------------------------------
def cmd_perf(args) -> int:
    """Run a workload on the gate-level SoC with the attribution
    profiler armed; write the typed JSON document and the HTML
    treemap/quiescence report."""
    from repro.cpu import compiled_cpu
    from repro.obs.perf import PerfAttribution, PerfHarness
    from repro.obs.perfview import build_perf_report
    from repro.sim.runner import GateRunner

    source, name = _resolve_workload(args.workload)
    try:
        program = assemble(source, name=name)
    except AssemblyError as error:
        raise InputError(
            f"cannot assemble workload {args.workload!r}: {error}",
            path=args.workload,
        ) from error
    circuit = compiled_cpu(getattr(args, "engine", "dense"))
    runner = GateRunner(circuit, program)
    recorder = PerfAttribution(sample_every=args.sample_every)
    harness = PerfHarness(runner, recorder)
    harness.run(max_cycles=args.max_cycles)
    document = harness.to_document(name)

    json_out = Path(args.out or f"PERF_{name}.json")
    html_out = Path(args.html or f"perf_{name}.html")
    try:
        json_out.write_text(format_json(document) + "\n")
        html_out.write_text(build_perf_report(document))
    except OSError as error:
        raise SystemExit(f"cannot write perf artifacts: {error}")

    if args.json:
        print(format_json(document))
        return 0
    ranks = sorted(
        document["ranks"], key=lambda rank: -rank["seconds"]
    )[:8]
    rows = [
        (
            f"{rank['kind']}:{rank['rank']}",
            rank["gates_per_pass"],
            f"{rank['seconds'] * 1e3:.2f}",
            f"{100 * rank['seconds'] / max(document['attributed_group_seconds'], 1e-12):.1f}%",
        )
        for rank in ranks
    ]
    print(
        format_table(
            ["rank", "gates/pass", "wall (ms)", "share"],
            rows,
            title=f"hottest ranks of {name!r} "
            f"({document['cycles']} cycles, "
            f"{document['cycles_per_second']:.0f} cyc/s)",
        )
    )
    print()
    cones = sorted(
        document["cones"],
        key=lambda cone: -(cone["quiescent_fraction"] or 0.0),
    )
    cone_rows = [
        (
            cone["port"],
            cone["member_nets"],
            f"{100 * cone['quiescent_fraction']:.1f}%"
            if cone["quiescent_fraction"] is not None
            else "-",
            f"{100 * cone['toggle_rate']:.2f}%"
            if cone["toggle_rate"] is not None
            else "-",
        )
        for cone in cones
    ]
    print(
        format_table(
            ["port cone", "nets", "quiescent", "toggle rate"],
            cone_rows,
            title="cone quiescence map "
            f"({document['activity']['samples']} samples)",
        )
    )
    print()
    fraction = document["attributed_fraction"]
    if document["engine"] == "event":
        evaluated = sum(rank["evals"] for rank in document["ranks"])
        skipped = document["skipped_evals"]
        total = evaluated + skipped
        share = 100 * skipped / total if total else 0.0
        print(
            f"event engine: {skipped} of {total} gate evaluations "
            f"skipped ({share:.1f}%)"
        )
    print(
        f"attributed {document['attributed_seconds']:.3f}s of "
        f"{document['wall_seconds']:.3f}s wall "
        f"({100 * fraction:.1f}%); documents: {json_out}, {html_out}"
    )
    return 0


def cmd_bench(args) -> int:
    """Run benchmark modules, extend the BENCH_history.jsonl ledger,
    check the new points against the series' own history, render the
    trend dashboard.  ``--check`` makes a confirmed regression exit 1
    (the CI perf-smoke gate)."""
    from repro.obs import benchtrack

    repo_root = Path(args.repo_root) if args.repo_root else Path.cwd()
    modules = benchtrack.select_benches(
        repo_root, quick=args.quick, only=args.only or ()
    )
    if not modules and not args.no_run:
        raise InputError(
            "no bench modules selected "
            f"(looked in {benchtrack.bench_dir(repo_root)})",
            code="NO_BENCHES",
        )
    ledger = Path(args.history or benchtrack.history_path(repo_root))

    exit_code, documents = (0, [])
    if not args.no_run:
        print(
            f"running {len(modules)} bench module(s): "
            + ", ".join(m.name for m in modules),
            file=sys.stderr,
        )
        exit_code, documents = benchtrack.run_benches(modules)
        appended = benchtrack.append_history(ledger, documents)
        print(f"appended {appended} entries to {ledger}", file=sys.stderr)

    history = benchtrack.load_history(ledger)
    findings = benchtrack.detect_regressions(
        history,
        threshold=args.threshold,
        mad_factor=args.mad_factor,
    )
    dashboard = Path(args.dashboard or repo_root / "bench_trends.html")
    dashboard.write_text(benchtrack.render_dashboard(history, findings))

    if args.json:
        print(
            format_json(
                {
                    "ran": [m.name for m in modules],
                    "pytest_exit": exit_code,
                    "appended": len(documents),
                    "ledger": str(ledger),
                    "history_entries": len(history),
                    "regressions": findings,
                    "dashboard": str(dashboard),
                }
            )
        )
    else:
        if findings:
            rows = [
                (
                    f["bench"],
                    f["metric"],
                    f"{f['latest']:.4g}",
                    f"{f['baseline_median']:.4g}",
                    f"{f['ratio']:.2f}x",
                )
                for f in findings
            ]
            print(
                format_table(
                    ["bench", "metric", "latest", "baseline", "ratio"],
                    rows,
                    title="CONFIRMED REGRESSIONS",
                )
            )
        else:
            print(
                f"no confirmed regressions across "
                f"{len(history)} ledger entries"
            )
        print(f"dashboard: {dashboard}")
    if exit_code:
        print("warning: pytest exited non-zero; artifacts may be partial")
        return 1
    if args.check and findings:
        return 1
    return 0


# ---------------------------------------------------------------------------
# explain / report / trace-lint
# ---------------------------------------------------------------------------
def _assemble_workload(spec: str):
    """Assemble a benchmark name or source path into ``(program, name)``."""
    source, name = _resolve_workload(spec)
    try:
        return assemble(source, name=name), name
    except AssemblyError as error:
        raise InputError(
            f"cannot assemble workload {spec!r}: {error}", path=spec
        ) from error


def _analyze_with_provenance(args):
    """Run the analysis with a provenance recorder armed; returns
    ``(result, recorder)``."""
    program, _ = _assemble_workload(args.workload)
    recorder = ProvenanceRecorder(
        capacity=args.provenance_capacity or (1 << 20)
    )
    result = TaintTracker(
        program,
        policy=_policy(args.policy),
        max_cycles=args.max_cycles,
        budget=_budget_from(args),
        provenance=recorder,
    ).run()
    return result, recorder


def cmd_explain(args) -> int:
    result, recorder = _analyze_with_provenance(args)
    if not result.violations:
        print(
            f"{result.program.name}: verdict {result.verdict}: "
            "no violations to explain"
        )
        return VERDICT_EXIT_CODES[result.verdict]
    try:
        flow = explain_violation(result, args.violation, recorder=recorder)
    except IndexError as error:
        raise InputError(str(error)) from None
    if args.json:
        document = flow.to_document()
        document["violation"] = {
            "index": args.violation,
            "kind": flow.violation.kind,
            "cycle": flow.violation.cycle,
            "address": f"0x{flow.violation.address:04x}",
            "task": flow.violation.task,
        }
        print(format_json(document))
    else:
        print(flow.violation.render())
        print(flow.render())
    if args.dot:
        violation = flow.violation
        title = f"{violation.kind} at 0x{violation.address:04x}"
        try:
            Path(args.dot).write_text(flow.to_dot(title=title) + "\n")
        except OSError as error:
            raise SystemExit(
                f"cannot write DOT file {args.dot!r}: {error}"
            )
        if not args.json:
            print(f"flow graph written to {args.dot}")
    return VERDICT_EXIT_CODES[result.verdict]


def cmd_report(args) -> int:
    result, recorder = _analyze_with_provenance(args)
    html = build_report(
        result, recorder, timeline_link=getattr(args, "timeline", None)
    )
    output = args.output or f"report_{result.program.name}.html"
    try:
        Path(output).write_text(html)
    except OSError as error:
        raise SystemExit(f"cannot write report {output!r}: {error}")
    print(
        f"report written to {output} ({len(html)} bytes, "
        f"verdict {result.verdict}, {len(result.violations)} violation(s))"
    )
    return 0


def cmd_record(args) -> int:
    """Analyse a workload with the timeline flight recorder armed and
    write the recording to a ``.timeline`` file."""
    program, name = _assemble_workload(args.workload)
    recorder = TimelineRecorder(
        keyframe_interval=args.keyframe_every, max_frames=args.max_frames
    )
    observer = _observer_for(args)
    try:
        with observe(observer) if observer else nullcontext():
            result = TaintTracker(
                program,
                policy=_policy(args.policy),
                max_cycles=args.max_cycles,
                budget=_budget_from(args),
                obs=observer,
                timeline=recorder,
            ).run()
            out = save_timeline(
                args.out,
                recorder,
                result.violations,
                meta={
                    "workload": name,
                    "verdict": result.verdict,
                    "violations": len(result.violations),
                },
            )
            if observer is not None and observer.enabled:
                observer.emit(
                    "record",
                    out=str(out),
                    frames=recorder.num_frames,
                    keyframes=recorder.keyframes,
                    cycles=result.stats.cycles_simulated,
                    truncated=recorder.truncated,
                    workload=name,
                    bytes=Path(out).stat().st_size,
                )
    finally:
        _finish_observer(observer, args)
    size = Path(out).stat().st_size
    truncated = " [truncated]" if recorder.truncated else ""
    print(
        f"timeline written to {out} ({size} bytes, "
        f"{recorder.num_frames} frame(s), {recorder.keyframes} "
        f"keyframe(s), verdict {result.verdict}, "
        f"{len(result.violations)} violation(s)){truncated}"
    )
    return 0


def cmd_view(args) -> int:
    """Render a recorded ``.timeline`` file as a self-contained HTML
    time-travel viewer."""
    timeline = load_timeline(args.timeline_file)
    workload = timeline.meta.get("workload")
    title = args.title or (
        f"GLIFT timeline: {workload}" if workload else None
    )
    html = build_viewer(timeline, title=title)
    output = args.out or (Path(args.timeline_file).stem + ".html")
    try:
        Path(output).write_text(html)
    except OSError as error:
        raise SystemExit(f"cannot write viewer {output!r}: {error}")
    print(
        f"viewer written to {output} ({len(html)} bytes, "
        f"{timeline.num_frames} frame(s), "
        f"{len(timeline.markers)} marker(s))"
    )
    return 0


def cmd_trace_lint(args) -> int:
    try:
        problems = lint_trace(args.trace_file)
    except OSError as error:
        raise InputError(
            f"cannot read trace file {args.trace_file!r}: {error}",
            path=args.trace_file,
        ) from error
    except ValueError as error:
        raise InputError(
            f"cannot parse trace file {args.trace_file!r}: {error}",
            path=args.trace_file,
        ) from error
    if problems:
        for problem in problems:
            print(problem)
        print(f"{args.trace_file}: {len(problems)} problem(s)")
        return 1
    print(f"{args.trace_file}: ok")
    return 0


# ---------------------------------------------------------------------------
# serve / submit / jobs (the analysis service)
# ---------------------------------------------------------------------------
def cmd_serve(args) -> int:
    from repro.service import AnalysisService, ServiceConfig
    from repro.service.retry import RetryPolicy

    observer = _observer_for(args)
    config = ServiceConfig(
        root=args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        shed_after=args.shed_after,
        max_attempts=args.max_attempts,
        checkpoint_every=args.checkpoint_every,
        heartbeat_timeout=args.heartbeat_timeout,
        drain_grace=args.drain_grace,
        retry=RetryPolicy(
            max_attempts=args.max_attempts,
            base_seconds=args.retry_base,
        ),
    )
    service = AnalysisService(config, observer=observer)
    service.start()
    url = service.start_server()
    recovered = (
        f", recovered {len(service.recovered)} in-flight job(s)"
        if service.recovered
        else ""
    )
    print(
        f"analysis service listening on {url} "
        f"({config.workers} worker(s), queue capacity "
        f"{config.queue_capacity}, journal {service.root}){recovered}",
        file=sys.stderr,
    )
    try:
        return service.run()
    finally:
        _finish_observer(observer, args)


def _submission_body(args) -> dict:
    source, name = _resolve_workload(args.source)
    body = {
        "source": source,
        "name": name,
        "policy": args.policy,
        "max_cycles": args.max_cycles,
    }
    budget = {
        "max_paths": getattr(args, "max_paths", None) or 4_096,
        "deadline_seconds": getattr(args, "deadline", None),
        "max_merged_states": getattr(args, "max_merged_states", None),
        "max_rss_mb": getattr(args, "max_rss_mb", None),
    }
    body["budget"] = {k: v for k, v in budget.items() if v is not None}
    engine = getattr(args, "engine", "dense")
    if engine != "dense":
        body["engine"] = engine
    return body


def cmd_submit(args) -> int:
    from repro.service.client import ServiceClient, ServiceClientError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        accepted = client.submit(**_submission_body(args))
        job_id = accepted["id"]
        if not args.wait:
            if args.json:
                print(format_json(accepted))
            else:
                print(
                    f"job {job_id} accepted "
                    f"(poll with: repro jobs {job_id} --url {client.url})"
                )
            return 0
        record = client.wait(job_id, timeout=args.timeout)
        report = client.report(job_id)
    except ServiceClientError as error:
        raise InputError(
            str(error), code=error.code or "SERVICE", retriable=error.retriable
        ) from None
    except (OSError, TimeoutError) as error:
        raise InputError(
            f"cannot reach analysis service at {client.url}: {error}"
        ) from None
    if args.json:
        print(format_json({"job": record, "report": report}))
    else:
        print(
            f"job {job_id}: {record['state']} "
            f"(verdict {record.get('verdict')}, "
            f"{record.get('attempts')} attempt(s))"
        )
    return int(record.get("exit_code") or 0)


def _render_progress_line(document: dict) -> str:
    """One human TTY line for a ``progress`` SSE frame."""
    fraction = document.get("fraction")
    percent = f"{fraction * 100.0:5.1f}%" if fraction is not None else "    ?"
    line = (
        f"[{percent}] paths {document.get('paths', '?')} "
        f"(+{document.get('pending', '?')} pending) "
        f"cycles {document.get('cycles', '?')} "
        f"violations {document.get('violations', '?')}"
    )
    eta = document.get("eta_seconds")
    if eta is not None:
        line += f" eta {eta:.0f}s"
    rate = document.get("rate_paths_per_s")
    if rate is not None:
        line += f" ({rate:.0f} paths/s)"
    return line


def cmd_watch(args) -> int:
    """``repro watch <job>``: consume the SSE event stream and render a
    live progress line (or, with ``--json``, one JSON object per frame,
    which is what the CI streaming smoke test consumes)."""
    from repro.service.client import ServiceClient, ServiceClientError

    client = ServiceClient(args.url, timeout=args.timeout)
    live_tty = sys.stdout.isatty() and not args.json
    exit_code = 0
    dirty = False  # a \r progress line is on screen
    try:
        for event, document in client.watch(args.job_id):
            if event == "end":
                exit_code = int(document.get("exit_code") or 0)
            if args.json:
                # NDJSON, one frame per line: the machine mode is meant
                # to be consumed as a stream (CI tails it live).
                import json as _json

                print(
                    _json.dumps(
                        {"event": event, "data": document}, sort_keys=True
                    )
                )
                sys.stdout.flush()
                continue
            if event == "state":
                if dirty:
                    print()
                    dirty = False
                note = document.get("note") or ""
                print(
                    f"job {document.get('job_id')}: {document.get('state')}"
                    + (f" ({note})" if note else "")
                )
            elif event == "progress":
                line = _render_progress_line(document)
                if live_tty:
                    print(f"\r\x1b[K{line}", end="", flush=True)
                    dirty = True
                else:
                    print(line)
            elif event == "end":
                if dirty:
                    print()
                    dirty = False
                print(
                    f"job {document.get('id')}: {document.get('state')} "
                    f"(verdict {document.get('verdict')}, "
                    f"{document.get('attempts')} attempt(s))"
                )
    except ServiceClientError as error:
        if dirty:
            print()
        raise InputError(
            str(error), code=error.code or "SERVICE", retriable=error.retriable
        ) from None
    except (OSError, TimeoutError) as error:
        if dirty:
            print()
        raise InputError(
            f"cannot reach analysis service at {client.url}: {error}"
        ) from None
    except KeyboardInterrupt:
        if dirty:
            print()
        print("watch interrupted (the job keeps running)", file=sys.stderr)
        return 130
    return exit_code


def cmd_jobs(args) -> int:
    from repro.service.client import ServiceClient, ServiceClientError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        if args.stats:
            return _print_service_stats(client, args)
        if args.job_id:
            document = client.job(args.job_id)
            print(
                format_json(document)
                if args.json
                else f"{document['job_id']}: {document['state']} "
                f"(verdict {document.get('verdict')}, "
                f"{document.get('attempts')} attempt(s))"
            )
            return 0
        jobs = client.jobs()
    except ServiceClientError as error:
        raise InputError(
            str(error), code=error.code or "SERVICE"
        ) from None
    except (OSError, TimeoutError) as error:
        raise InputError(
            f"cannot reach analysis service at {client.url}: {error}"
        ) from None
    if args.json:
        print(format_json({"jobs": jobs}))
    else:
        rows = [
            (
                entry["id"],
                entry["name"],
                entry["state"],
                entry["attempts"],
                entry.get("verdict") or "-",
            )
            for entry in jobs
        ]
        print(
            format_table(
                ["job", "name", "state", "attempts", "verdict"],
                rows,
                title=f"jobs at {client.url}",
            )
        )
    return 0


def _print_service_stats(client, args) -> int:
    """``repro jobs --stats``: the daemon's live telemetry snapshot --
    the same numbers ``GET /metrics`` exposes, human-readably."""
    document = client.stats()
    if args.json:
        print(format_json(document))
        return 0
    health = document["health"]
    metrics = document["metrics"]
    print(
        f"service at {client.url}: "
        f"up {health['uptime_seconds']:.0f}s, "
        f"backlog {health['backlog']}/{health['queue_capacity']}, "
        f"workers {health['workers_live']}/{health['workers']} live"
        + (", DRAINING" if health["draining"] else "")
        + (", SHEDDING" if health["shedding"] else "")
    )
    if health["jobs"]:
        rows = sorted(health["jobs"].items())
        print(format_table(["state", "jobs"], rows, title="jobs by state"))
    progress = document.get("progress") or {}
    running = progress.get("running") or {}
    if running:
        print(
            f"fleet: {progress.get('paths_in_flight', 0)} path(s) in "
            f"flight across {len(running)} running job(s), oldest "
            f"running {progress.get('oldest_running_job_age_seconds', 0):.0f}s"
        )
        rows = [
            (
                job_id,
                entry.get("paths", "-"),
                entry.get("pending", "-"),
                (
                    f"{entry['fraction'] * 100.0:.1f}%"
                    if entry.get("fraction") is not None
                    else "-"
                ),
                (
                    f"{entry['eta_seconds']:.0f}s"
                    if entry.get("eta_seconds") is not None
                    else "-"
                ),
            )
            for job_id, entry in sorted(running.items())
        ]
        print(
            format_table(
                ["job", "paths", "pending", "done", "eta"],
                rows,
                title="running jobs",
            )
        )
    counters = metrics.get("counters", {})
    if counters:
        rows = [(name, value) for name, value in sorted(counters.items())]
        print(format_table(["counter", "value"], rows, title="counters"))
    gauges = metrics.get("gauges", {})
    if gauges:
        rows = [(name, value) for name, value in sorted(gauges.items())]
        print(format_table(["gauge", "value"], rows, title="gauges"))
    histograms = metrics.get("histograms", {})
    if histograms:
        rows = []
        for name, payload in sorted(histograms.items()):
            if payload["count"]:
                rows.append(
                    (
                        name,
                        payload["count"],
                        f"{payload['mean']:.4f}",
                        f"{payload['min']:.4f}",
                        f"{payload['max']:.4f}",
                    )
                )
            else:
                rows.append((name, 0, "-", "-", "-"))
        print(
            format_table(
                ["histogram", "n", "mean_s", "min_s", "max_s"],
                rows,
                title="latency histograms",
            )
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="software-based gate-level information flow security",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("source", help="LP430 assembly source file")
        p.add_argument(
            "--policy",
            default="untrusted",
            help="taint kind: untrusted (default) or secret",
        )
        p.add_argument(
            "--max-cycles",
            type=int,
            default=1_000_000,
            help="analysis/simulation cycle budget",
        )

    def engine_flag(p):
        p.add_argument(
            "--engine",
            choices=["dense", "event"],
            default="dense",
            help="gate evaluation engine: dense (default) evaluates "
            "every gate each pass; event evaluates only gates whose "
            "inputs changed (bit-identical results)",
        )

    def obs_flags(p):
        p.add_argument(
            "--trace",
            metavar="PATH",
            help="write a JSONL event trace (fork/merge/prune/...) here",
        )
        p.add_argument(
            "--metrics",
            metavar="PATH",
            help="write the metrics+profile snapshot as JSON here",
        )

    def budget_flags(p):
        p.add_argument(
            "--deadline",
            type=float,
            metavar="SECONDS",
            help="wall-clock budget; on expiry unexplored paths are "
            "widened to the fully-tainted state and the verdict "
            "becomes inconclusive instead of secure",
        )
        p.add_argument(
            "--max-paths",
            type=int,
            metavar="N",
            help="path budget (default 4096); exhaustion degrades "
            "soundly to an inconclusive verdict",
        )
        p.add_argument(
            "--max-merged-states",
            type=int,
            metavar="N",
            help="cap on retained merged branch states",
        )
        p.add_argument(
            "--max-rss-mb",
            type=int,
            metavar="MB",
            help="resident-set ceiling for the analysis process",
        )

    def provenance_flags(p, opt_in: bool = True):
        if opt_in:
            p.add_argument(
                "--provenance",
                action="store_true",
                help="record per-bit taint provenance during the "
                "analysis (enables explanations in the output; "
                "~25%% slower)",
            )
        p.add_argument(
            "--provenance-capacity",
            type=int,
            default=1 << 20,
            metavar="N",
            help="edge-ring capacity for the provenance recorder "
            "(default 1Mi edges; wrapping sets provenance_truncated)",
        )

    p = sub.add_parser("analyze", help="run the gate-level analysis")
    common(p)
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for path-level parallel exploration "
        "(results are bit-identical to --jobs 1; --provenance forces "
        "serial mode)",
    )
    p.add_argument(
        "--tree", action="store_true", help="print the execution tree"
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable verdict/violations/stats output",
    )
    engine_flag(p)
    budget_flags(p)
    p.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="write analysis checkpoints here (on SIGINT/SIGTERM, and "
        "every --checkpoint-every explored paths)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="also checkpoint every N explored paths (0 = only on "
        "interrupt)",
    )
    p.add_argument(
        "--resume",
        metavar="PATH",
        help="resume the analysis from a checkpoint written by "
        "--checkpoint (validated against the program digest)",
    )
    obs_flags(p)
    provenance_flags(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "analyze-all",
        help="analyze a set of Table 1 workloads in parallel (one "
        "serial analysis per worker) and aggregate verdicts, exit "
        "codes and timing into one JSON document",
    )
    p.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        help="workload names (default: the whole Table 1 registry)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (one workload per worker)",
    )
    p.add_argument(
        "--policy",
        default="untrusted",
        help="taint kind: untrusted (default) or secret",
    )
    p.add_argument(
        "--max-cycles",
        type=int,
        default=1_000_000,
        help="per-workload analysis cycle budget",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the aggregate JSON document to stdout (default "
        "unless -o is given, which switches stdout to a summary)",
    )
    p.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        help="also write the aggregate JSON document here",
    )
    engine_flag(p)
    budget_flags(p)
    p.set_defaults(func=cmd_analyze_all)

    p = sub.add_parser("repair", help="analyse, repair, verify")
    common(p)
    p.add_argument("-o", "--output", help="write the repaired source here")
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("run", help="cycle-accurate concrete run")
    common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("disasm", help="annotated disassembly")
    common(p)
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("stats", help="LP430 netlist statistics")
    p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "profile",
        help="run the full pipeline on a workload and print the "
        "per-phase time/counter breakdown",
    )
    p.add_argument(
        "workload",
        help="a Table 1 benchmark name (e.g. intavg, mult; "
        "case-insensitive) or an LP430 source file",
    )
    p.add_argument(
        "--policy",
        default="untrusted",
        help="taint kind: untrusted (default) or secret",
    )
    p.add_argument(
        "--max-cycles",
        type=int,
        default=1_200_000,
        help="analysis cycle budget",
    )
    p.add_argument(
        "--no-repair",
        action="store_true",
        help="skip the repair phase even when the analysis is insecure",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the full metrics/profile document as JSON",
    )
    budget_flags(p)
    obs_flags(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "perf",
        help="run a workload on the gate-level SoC with the "
        "attribution profiler armed: per-rank/per-cell-type timing, "
        "cone quiescence map, JSON + self-contained HTML report",
    )
    p.add_argument(
        "workload",
        help="a benchmark name (e.g. viterbi, intavg; case-insensitive) "
        "or an LP430 source file",
    )
    p.add_argument(
        "--max-cycles",
        type=int,
        default=4_000,
        help="gate-level cycles to simulate (default 4000)",
    )
    p.add_argument(
        "--sample-every",
        type=int,
        default=16,
        metavar="N",
        help="cone-activity sampling period in full evaluation passes "
        "(default 16; smaller = finer quiescence map, more overhead)",
    )
    p.add_argument(
        "-o",
        "--out",
        metavar="PATH",
        help="attribution JSON document (default PERF_<workload>.json)",
    )
    p.add_argument(
        "--html",
        metavar="PATH",
        help="HTML report (default perf_<workload>.html)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the attribution document to stdout instead of the "
        "summary tables",
    )
    engine_flag(p)
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser(
        "bench",
        help="run benchmarks/bench_*.py, append the results to the "
        "BENCH_history.jsonl ledger, detect perf regressions and "
        "render the trend dashboard",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="only the two fast smoke benches (the CI perf-smoke set)",
    )
    p.add_argument(
        "--only",
        action="append",
        metavar="FRAGMENT",
        help="run modules whose filename contains FRAGMENT (repeatable)",
    )
    p.add_argument(
        "--no-run",
        action="store_true",
        help="skip execution; re-check the existing ledger and re-render "
        "the dashboard",
    )
    p.add_argument(
        "--history",
        metavar="PATH",
        help="ledger path (default BENCH_history.jsonl in the repo root)",
    )
    p.add_argument(
        "--dashboard",
        metavar="PATH",
        help="trend dashboard path (default bench_trends.html)",
    )
    p.add_argument(
        "--repo-root",
        metavar="PATH",
        help="repository root holding benchmarks/ (default: cwd)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the detector confirms a regression",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="relative degradation that counts as a regression "
        "(default 0.30 = 30%%)",
    )
    p.add_argument(
        "--mad-factor",
        type=float,
        default=4.0,
        help="noise bar: the degradation must also exceed this many "
        "median absolute deviations of the series (default 4)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the run/regression summary as JSON",
    )
    p.set_defaults(func=cmd_bench)

    def workload_flags(p):
        p.add_argument(
            "workload",
            help="a benchmark name (e.g. figure4, intavg; "
            "case-insensitive) or an LP430 source file",
        )
        p.add_argument(
            "--policy",
            default="untrusted",
            help="taint kind: untrusted (default) or secret",
        )
        p.add_argument(
            "--max-cycles",
            type=int,
            default=1_000_000,
            help="analysis cycle budget",
        )
        budget_flags(p)
        provenance_flags(p, opt_in=False)

    p = sub.add_parser(
        "explain",
        help="trace one violation's taint back to its labelled "
        "input bits (gate-level backward slice)",
    )
    workload_flags(p)
    p.add_argument(
        "--violation",
        type=int,
        default=0,
        metavar="N",
        help="index into the analysis' violation list (default 0)",
    )
    p.add_argument(
        "--dot",
        metavar="PATH",
        help="also write the sliced flow graph as Graphviz DOT here",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the explanation as a JSON document",
    )
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "report",
        help="analyse a workload and write a self-contained HTML "
        "report (verdict, heatmap, violations, provenance chains)",
    )
    workload_flags(p)
    p.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        help="report file (default report_<workload>.html)",
    )
    p.add_argument(
        "--timeline",
        metavar="PATH",
        help="link to a repro-view HTML page sitting next to the report",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "record",
        help="analyse a workload with the cycle-level flight recorder "
        "armed and write a .timeline file for repro view",
    )
    workload_flags(p)
    p.add_argument(
        "--out",
        default="out.timeline",
        metavar="PATH",
        help="timeline file to write (default out.timeline)",
    )
    p.add_argument(
        "--keyframe-every",
        type=int,
        default=64,
        metavar="N",
        help="frames between full-state keyframes (default 64); "
        "smaller = faster seeks, bigger files",
    )
    p.add_argument(
        "--max-frames",
        type=int,
        default=1 << 20,
        metavar="N",
        help="frame bound; recording stops (truncated, not an error) "
        "when reached",
    )
    obs_flags(p)
    p.set_defaults(func=cmd_record)

    p = sub.add_parser(
        "view",
        help="render a .timeline file as a self-contained HTML "
        "time-travel viewer (scrubber, lanes, taint sparkline)",
    )
    p.add_argument("timeline_file", help=".timeline file from repro record")
    p.add_argument(
        "--out",
        metavar="PATH",
        help="HTML file to write (default <timeline-stem>.html)",
    )
    p.add_argument("--title", metavar="TEXT", help="page title override")
    p.set_defaults(func=cmd_view)

    p = sub.add_parser(
        "serve",
        help="run the supervised analysis service (durable job "
        "journal, worker pool, REST API; SIGINT/SIGTERM drains)",
    )
    p.add_argument(
        "--root",
        default=".repro-service",
        metavar="DIR",
        help="service state directory: job journal + per-job artifacts "
        "(default .repro-service)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=8437,
        help="bind port (0 picks a free one; the chosen URL is "
        "written to <root>/address)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="analysis worker subprocesses (default 2)",
    )
    p.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        metavar="N",
        help="max jobs in flight before submissions get 429",
    )
    p.add_argument(
        "--shed-after",
        type=int,
        default=None,
        metavar="N",
        help="backlog size above which launches get clamped budgets "
        "(default: 3/4 of the queue capacity)",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=4,
        metavar="N",
        help="attempts per job before a retriable failure becomes "
        "terminal (default 4)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        metavar="N",
        help="worker checkpoint cadence in explored paths (default 8)",
    )
    p.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="kill a worker whose heartbeat is older than this",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="seconds workers get to checkpoint on drain",
    )
    p.add_argument(
        "--retry-base",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="exponential-backoff base delay (default 0.5s)",
    )
    obs_flags(p)
    p.set_defaults(func=cmd_serve)

    def service_client_flags(p):
        p.add_argument(
            "--url",
            default="http://127.0.0.1:8437",
            help="service base URL (default http://127.0.0.1:8437)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=600.0,
            metavar="SECONDS",
            help="client request/wait timeout",
        )
        p.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )

    p = sub.add_parser(
        "submit",
        help="submit a workload to a running analysis service "
        "(optionally wait for the verdict)",
    )
    p.add_argument(
        "source",
        help="LP430 source file or registry benchmark name",
    )
    p.add_argument(
        "--policy",
        default="untrusted",
        help="taint kind: untrusted (default) or secret",
    )
    p.add_argument(
        "--max-cycles",
        type=int,
        default=1_000_000,
        help="analysis cycle budget",
    )
    p.add_argument(
        "--wait",
        action="store_true",
        help="poll until the verdict and exit with its code",
    )
    engine_flag(p)
    budget_flags(p)
    service_client_flags(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "watch",
        help="stream a job's live progress (state transitions, path "
        "exploration, ETA) from a running service until it finishes",
    )
    p.add_argument("job_id", help="job id to watch")
    service_client_flags(p)
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser(
        "jobs",
        help="list a running service's jobs (or one job's record)",
    )
    p.add_argument(
        "job_id", nargs="?", help="job id (omit to list every job)"
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print the daemon's live counter/gauge/histogram snapshot "
        "(the same data GET /metrics exposes) instead of the job list",
    )
    service_client_flags(p)
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser(
        "trace-lint",
        help="validate a JSONL trace file against the documented "
        "v4 event schema (declared fields, monotone progress, "
        "stable job correlation)",
    )
    p.add_argument("trace_file", help="JSONL trace written by --trace")
    p.set_defaults(func=cmd_trace_lint)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except AnalysisInterrupted as error:
        if getattr(args, "json", False):
            print(format_json({"error": error.to_document()}))
        else:
            print(error.render(), file=sys.stderr)
            if error.checkpoint_path:
                print(
                    f"resume with: repro analyze {args.source} "
                    f"--resume {error.checkpoint_path}",
                    file=sys.stderr,
                )
        return error.exit_code
    except ReproError as error:
        if getattr(args, "json", False):
            print(format_json({"error": error.to_document()}))
        else:
            print(error.render(), file=sys.stderr)
        return error.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
