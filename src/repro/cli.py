"""Command-line front end for the toolflow.

Mirrors how the paper's tool is used: point it at an application source,
get the verdict, the diagnostics and (optionally) the repaired binary.

    python -m repro.cli analyze  app.s43
    python -m repro.cli repair   app.s43 -o app_secure.s43
    python -m repro.cli run      app.s43 --max-cycles 20000
    python -m repro.cli disasm   app.s43
    python -m repro.cli stats
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import TaintTracker, default_policy, secret_policy
from repro.cpu import cpu_stats
from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble_program
from repro.isasim.executor import run_concrete
from repro.transform import FundamentalViolation, secure_compile


def _policy(name: str):
    if name == "untrusted":
        return default_policy()
    if name == "secret":
        return secret_policy()
    raise SystemExit(f"unknown policy {name!r} (untrusted|secret)")


def _load(path: str) -> tuple:
    source = Path(path).read_text()
    name = Path(path).stem
    return source, assemble(source, name=name), name


def cmd_analyze(args) -> int:
    _, program, _ = _load(args.source)
    result = TaintTracker(
        program,
        policy=_policy(args.policy),
        max_cycles=args.max_cycles,
    ).run()
    print(result.report())
    if args.tree:
        print()
        print(result.tree.render())
    return 0 if result.secure else 1


def cmd_repair(args) -> int:
    source, _, name = _load(args.source)
    try:
        repaired = secure_compile(
            source,
            name=name,
            policy=_policy(args.policy),
            max_cycles=args.max_cycles,
        )
    except FundamentalViolation as error:
        print(error.diagnostics, file=sys.stderr)
        return 2
    print(repaired.diagnostics())
    print(repaired.analysis.report())
    if args.output:
        Path(args.output).write_text(repaired.source)
        print(f"repaired source written to {args.output}")
    return 0


def cmd_run(args) -> int:
    _, program, _ = _load(args.source)
    run = run_concrete(
        program, max_cycles=args.max_cycles, follow_watchdog=False
    )
    print(
        f"halted={run.halted} cycles={run.cycles} "
        f"instructions={run.steps} stores={run.dynamic_stores} "
        f"resets={run.resets}"
    )
    for port, word in run.port_writes:
        value = f"0x{word.bits:04x}" if word.is_concrete else repr(word)
        print(f"  {port} <- {value}")
    return 0


def cmd_disasm(args) -> int:
    _, program, _ = _load(args.source)
    print(disassemble_program(program))
    return 0


def cmd_stats(args) -> int:
    print(cpu_stats().format())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="software-based gate-level information flow security",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("source", help="LP430 assembly source file")
        p.add_argument(
            "--policy",
            default="untrusted",
            help="taint kind: untrusted (default) or secret",
        )
        p.add_argument(
            "--max-cycles",
            type=int,
            default=1_000_000,
            help="analysis/simulation cycle budget",
        )

    p = sub.add_parser("analyze", help="run the gate-level analysis")
    common(p)
    p.add_argument(
        "--tree", action="store_true", help="print the execution tree"
    )
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("repair", help="analyse, repair, verify")
    common(p)
    p.add_argument("-o", "--output", help="write the repaired source here")
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("run", help="cycle-accurate concrete run")
    common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("disasm", help="annotated disassembly")
    common(p)
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("stats", help="LP430 netlist statistics")
    p.set_defaults(func=cmd_stats)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
