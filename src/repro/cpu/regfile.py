"""The LP430 register file (R1 and R4..R15 physically; R0/R2/R3 remapped).

R0 (PC), R2 (SR) and R3 (constant generator) are architecturally registers
but live outside the array: reads are remapped onto the PC/SR registers or a
constant zero, and writes to them are routed by the datapath.

Construction is two-phase (like :class:`~repro.netlist.builder.Reg` itself):
``RegFileBuilder`` allocates the flip-flops so read ports can feed the ALU,
and :meth:`RegFileBuilder.connect_write_port` wires the single write port
once the datapath has produced the write data.
"""

from __future__ import annotations

from typing import Dict, List

from repro.netlist.builder import CircuitBuilder, Sig

PHYSICAL_REGS: List[int] = [1] + list(range(4, 16))


class RegFileBuilder:
    """Two-phase register-file elaboration."""

    def __init__(self, b: CircuitBuilder, pc_q: Sig, sr_q: Sig):
        self._b = b
        self._pc_q = pc_q
        self._sr_q = sr_q
        with b.scope("rf"):
            self.regs: Dict[int, object] = {
                index: b.reg(f"r{index}", 16) for index in PHYSICAL_REGS
            }
        self._zero = b.const(0, 16)

    @property
    def sp(self) -> Sig:
        """Direct (un-muxed) view of R1 for push/call address math."""
        return self.regs[1].q

    def read(self, raddr: Sig) -> Sig:
        """One combinational read port (R0 -> PC, R2 -> SR, R3 -> 0)."""
        options = []
        for index in range(16):
            if index == 0:
                options.append(self._pc_q)
            elif index == 2:
                options.append(self._sr_q)
            elif index == 3:
                options.append(self._zero)
            else:
                options.append(self.regs[index].q)
        return self._b.muxn(raddr, options)

    def connect_write_port(
        self, waddr: Sig, wdata: Sig, wen: int, rst: int
    ) -> None:
        b = self._b
        write_select = b.decode(waddr)
        for index in PHYSICAL_REGS:
            enable = b.and_bit(write_select[index], wen)
            b.drive(self.regs[index], wdata, en=enable, rst=rst)
