"""Instruction decode and the multi-cycle FSM for the gate-level LP430.

The FSM phases follow :mod:`repro.isa.spec`: F, SE, SL, DE, DL, E, J.  Six
phase bits are registered (SE..J); F is *derived* as the NOR of the six, so
a power-on reset (which clears every flip-flop) lands the machine in F with
no special cases -- and, per the Figure 7 reset rule the builder implements,
a tainted reset leaves the phase bits tainted exactly as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.netlist.builder import CircuitBuilder, Sig


@dataclass
class Decode:
    """Combinational decode of the live instruction word."""

    insn: Sig
    fmt_jump: int
    fmt2: int
    fmt1: int
    src_reg: Sig
    dst_reg: Sig
    ad: int
    src_is_reg: int  # As == 00
    src_indexed: int  # As == 01
    src_is_imm: int
    src_needs_ext: int
    src_reads_mem: int
    autoinc: int
    dst_ext: int
    needs_dl: int
    op1: List[int]  # one-hot over IR[15:12]
    op2: List[int]  # one-hot over IR[9:7] (format II)
    writes_result: int
    flags_en: int
    is_push: int
    is_call: int
    fmt2_shift: int
    fmt2_mem: int
    fmt2_reg_write: int
    fmt2_mem_write: int
    pc_write_e: int
    sr_write_e: int
    regfile_write_e: int
    cond: Sig  # IR[12:10]
    jump_offset: Sig  # sign-extended to 16


def build_decode(b: CircuitBuilder, insn: Sig) -> Decode:
    """Elaborate the decoder for the instruction word *insn*."""
    with b.scope("dec"):
        fmt_jump = b.eq_const(b.slice_(insn, 13, 3), 0b001)
        fmt2 = b.eq_const(b.slice_(insn, 10, 6), 0b000100)
        fmt1 = b.nor_bit(fmt_jump, fmt2)

        src_reg = b.mux(fmt2, b.slice_(insn, 8, 4), b.slice_(insn, 0, 4))
        dst_reg = b.slice_(insn, 0, 4)
        ad = insn[7]
        as_lo, as_hi = insn[4], insn[5]
        as00 = b.nor_bit(as_lo, as_hi)
        as11 = b.and_bit(as_lo, as_hi)
        as01 = b.and_bit(as_lo, b.not_bit(as_hi))

        src_reg_is_pc = b.eq_const(src_reg, 0)
        src_is_imm = b.and_bit(as11, src_reg_is_pc)
        src_needs_ext = b.or_bit(as01, src_is_imm)
        src_reads_mem = b.and_bit(
            b.not_bit(as00), b.not_bit(src_is_imm)
        )
        autoinc = b.and_bit(as11, b.not_bit(src_is_imm))

        op1 = b.decode(b.slice_(insn, 12, 4))
        op2 = b.decode(b.slice_(insn, 7, 3))

        is_mov = b.and_bit(fmt1, op1[0x4])
        dst_ext = b.and_bit(fmt1, ad)
        needs_dl = b.and_bit(dst_ext, b.not_bit(op1[0x4]))

        no_writeback = b.or_bit(op1[0x9], op1[0xB])  # cmp, bit
        writes_result = b.and_bit(fmt1, b.not_bit(no_writeback))

        fmt1_flags = b.and_bit(
            fmt1,
            b.not_bit(b.or_bit(op1[0x4], op1[0xC], op1[0xD])),
        )
        fmt2_shift = b.and_bit(
            fmt2, b.or_bit(op2[0], op2[1], op2[2])
        )
        fmt2_carry_shift = b.and_bit(fmt2, b.or_bit(op2[0], op2[2]))
        flags_en = b.or_bit(fmt1_flags, fmt2_carry_shift)

        is_push = b.and_bit(fmt2, op2[4])
        is_call = b.and_bit(fmt2, op2[5])

        fmt2_mem = b.and_bit(fmt2, src_reads_mem)
        fmt2_reg_write = b.and_bit(fmt2_shift, as00)
        fmt2_mem_write = b.and_bit(fmt2_shift, src_reads_mem)

        dst_is_pc = b.eq_const(dst_reg, 0)
        dst_is_sr = b.eq_const(dst_reg, 2)
        dst_is_cg = b.eq_const(dst_reg, 3)
        reg_dst = b.and_bit(writes_result, b.not_bit(ad))
        pc_write_e = b.and_bit(reg_dst, dst_is_pc)
        sr_write_e = b.and_bit(reg_dst, dst_is_sr)
        plain_dst = b.nor_bit(dst_is_pc, dst_is_sr, dst_is_cg)
        regfile_write_e = b.or_bit(
            b.and_bit(reg_dst, plain_dst),
            b.and_bit(fmt2_reg_write, plain_dst),
        )

        cond = b.slice_(insn, 10, 3)
        jump_offset = b.sext(b.slice_(insn, 0, 10), 16)

    return Decode(
        insn=insn,
        fmt_jump=fmt_jump,
        fmt2=fmt2,
        fmt1=fmt1,
        src_reg=src_reg,
        dst_reg=dst_reg,
        ad=ad,
        src_is_reg=as00,
        src_indexed=as01,
        src_is_imm=src_is_imm,
        src_needs_ext=src_needs_ext,
        src_reads_mem=src_reads_mem,
        autoinc=autoinc,
        dst_ext=dst_ext,
        needs_dl=needs_dl,
        op1=op1,
        op2=op2,
        writes_result=writes_result,
        flags_en=flags_en,
        is_push=is_push,
        is_call=is_call,
        fmt2_shift=fmt2_shift,
        fmt2_mem=fmt2_mem,
        fmt2_reg_write=fmt2_reg_write,
        fmt2_mem_write=fmt2_mem_write,
        pc_write_e=pc_write_e,
        sr_write_e=sr_write_e,
        regfile_write_e=regfile_write_e,
        cond=cond,
        jump_offset=jump_offset,
    )


@dataclass
class Phases:
    """The FSM phase bits (F derived from the registered six)."""

    f: int
    se: int
    sl: int
    de: int
    dl: int
    e: int
    j: int


def begin_fsm(b: CircuitBuilder, registers: dict) -> Phases:
    """Create the phase registers and derive F before decode exists.

    The FSM's next-state logic depends on the decode of the *live*
    instruction word, which in turn needs the in-F bit (to mux IR vs the
    freshly fetched word), so construction is split: ``begin_fsm`` allocates
    the registers, :func:`finish_fsm` wires their next states.
    """
    with b.scope("fsm"):
        for name in ("se", "sl", "de", "dl", "e", "j"):
            registers[name] = b.reg(name, 1)
        se = registers["se"].q[0]
        sl = registers["sl"].q[0]
        de = registers["de"].q[0]
        dl = registers["dl"].q[0]
        e = registers["e"].q[0]
        j = registers["j"].q[0]
        in_f = b.nor_bit(se, sl, de, dl, e, j)
    return Phases(f=in_f, se=se, sl=sl, de=de, dl=dl, e=e, j=j)


def finish_fsm(
    b: CircuitBuilder,
    registers: dict,
    phases: Phases,
    decode: Decode,
    rst: int,
) -> None:
    """Wire the phase-sequencing next-state logic."""
    with b.scope("fsm"):
        d = decode
        in_f, se, sl = phases.f, phases.se, phases.sl
        de, dl = phases.de, phases.dl
        not_jump = b.not_bit(d.fmt_jump)
        no_src_ext = b.not_bit(d.src_needs_ext)
        no_src_mem = b.not_bit(d.src_reads_mem)
        no_dst_ext = b.not_bit(d.dst_ext)

        next_se = b.and_bit(in_f, not_jump, d.src_needs_ext)
        next_sl = b.or_bit(
            b.and_bit(in_f, not_jump, no_src_ext, d.src_reads_mem),
            b.and_bit(se, d.src_reads_mem),
        )
        next_de = b.or_bit(
            b.and_bit(in_f, not_jump, no_src_ext, no_src_mem, d.dst_ext),
            b.and_bit(se, no_src_mem, d.dst_ext),
            b.and_bit(sl, d.dst_ext),
        )
        next_dl = b.and_bit(de, d.needs_dl)
        next_e = b.or_bit(
            b.and_bit(in_f, not_jump, no_src_ext, no_src_mem, no_dst_ext),
            b.and_bit(se, no_src_mem, no_dst_ext),
            b.and_bit(sl, no_dst_ext),
            b.and_bit(de, b.not_bit(d.needs_dl)),
            dl,
        )
        next_j = b.and_bit(in_f, d.fmt_jump)

        b.drive(registers["se"], Sig([next_se]), rst=rst)
        b.drive(registers["sl"], Sig([next_sl]), rst=rst)
        b.drive(registers["de"], Sig([next_de]), rst=rst)
        b.drive(registers["dl"], Sig([next_dl]), rst=rst)
        b.drive(registers["e"], Sig([next_e]), rst=rst)
        b.drive(registers["j"], Sig([next_j]), rst=rst)
