"""The LP430 ALU: one shared add/sub plus logic and shift units.

Flag semantics follow :mod:`repro.isa.spec` (MSP430 conventions): the carry
of AND/BIT/XOR is *not Z*; BIC/BIS/MOV/SWPB leave flags alone (gated by the
decoder's ``flags_en``); V is the signed overflow for the adder family,
``src[15] & dst[15]`` for XOR and 0 otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cpu.control import Decode
from repro.netlist.builder import CircuitBuilder, Sig


@dataclass
class AluOutputs:
    result: Sig
    carry: int
    zero: int
    negative: int
    overflow: int


def build_alu(
    b: CircuitBuilder,
    decode: Decode,
    src: Sig,
    dst: Sig,
    carry_flag: int,
) -> AluOutputs:
    """Elaborate the ALU over source/destination operand words."""
    d = decode
    with b.scope("alu"):
        # --- adder family -------------------------------------------------
        is_sub = b.or_bit(d.op1[0x7], d.op1[0x8], d.op1[0x9])  # subc sub cmp
        use_carry = b.or_bit(d.op1[0x6], d.op1[0x7])  # addc subc
        base_cin = is_sub  # add: 0, sub/cmp: 1
        cin = b.mux_bit(use_carry, base_cin, carry_flag)
        adder_out, adder_cout, adder_ovf = b.addsub(dst, src, is_sub, cin=cin)

        # --- logic family -------------------------------------------------
        and_out = b.and_(src, dst)
        bic_out = b.and_(dst, b.not_(src))
        bis_out = b.or_(src, dst)
        xor_out = b.xor_(src, dst)

        # --- format II shifts (operate on the operand in `dst`) -----------
        rrc_out = Sig(list(dst[1:]) + [carry_flag])
        rra_out = Sig(list(dst[1:]) + [dst[15]])
        swpb_out = Sig(list(dst[8:16]) + list(dst[0:8]))

        adder_sel = b.or_bit(
            d.op1[0x5], d.op1[0x6], d.op1[0x7], d.op1[0x8], d.op1[0x9]
        )
        mov_sel = d.op1[0x4]
        and_sel = b.or_bit(d.op1[0xF], d.op1[0xB])
        rrc_sel = b.and_bit(d.fmt2, d.op2[0])
        swpb_sel = b.and_bit(d.fmt2, d.op2[1])
        rra_sel = b.and_bit(d.fmt2, d.op2[2])
        # During fmt2/jump cycles the fmt1 one-hots can still fire (IR bits
        # alias); qualify them with fmt1 so exactly one select is active.
        fmt1_q = d.fmt1
        selects = [
            b.and_bit(mov_sel, fmt1_q),
            b.and_bit(adder_sel, fmt1_q),
            b.and_bit(and_sel, fmt1_q),
            b.and_bit(d.op1[0xC], fmt1_q),
            b.and_bit(d.op1[0xD], fmt1_q),
            b.and_bit(d.op1[0xE], fmt1_q),
            rrc_sel,
            rra_sel,
            swpb_sel,
        ]
        options = [
            src,
            adder_out,
            and_out,
            bic_out,
            bis_out,
            xor_out,
            rrc_out,
            rra_out,
            swpb_out,
        ]
        result = b.onehot_mux(selects, options)

        # --- flags ---------------------------------------------------------
        zero = b.is_zero(result)
        negative = result[15]
        not_zero = b.not_bit(zero)
        logic_flags_sel = b.and_bit(
            b.or_bit(d.op1[0xB], d.op1[0xE], d.op1[0xF]), fmt1_q
        )
        shift_sel = b.or_bit(rrc_sel, rra_sel)
        adder_sel_q = b.and_bit(adder_sel, fmt1_q)
        carry = b.or_bit(
            b.and_bit(adder_sel_q, adder_cout),
            b.and_bit(logic_flags_sel, not_zero),
            b.and_bit(shift_sel, dst[0]),
        )
        xor_sel = b.and_bit(d.op1[0xE], fmt1_q)
        overflow = b.or_bit(
            b.and_bit(adder_sel_q, adder_ovf),
            b.and_bit(xor_sel, b.and_bit(src[15], dst[15])),
        )

    return AluOutputs(
        result=result,
        carry=carry,
        zero=zero,
        negative=negative,
        overflow=overflow,
    )
