"""Top-level elaboration of the gate-level LP430 CPU.

Wires the decoder, FSM, register file and ALU into the multi-cycle
datapath, exposing the SoC port contract documented in
:mod:`repro.sim.soc`.  The one structural invariant the SoC's two-pass
evaluation relies on -- memory-facing outputs never combinationally depend
on the same cycle's read-data inputs -- holds because:

* ``pmem_addr`` is the PC register's Q pins, verbatim;
* ``dmem_addr``/``dmem_wdata`` derive from registers (regfile, SEXT/DEXT,
  SADDR, SRCV, SP) and the *registered* IR; the live-instruction mux only
  selects fresh ``pmem_rdata`` during F, a phase in which ``dmem_ren`` and
  ``dmem_wen`` (pure functions of the registered phase bits) are 0.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cpu.alu import build_alu
from repro.cpu.control import begin_fsm, build_decode, finish_fsm
from repro.cpu.regfile import RegFileBuilder
from repro.netlist.builder import CircuitBuilder, Sig
from repro.netlist.netlist import Netlist
from repro.netlist.stats import NetlistStats, netlist_stats
from repro.sim.compiled import CompiledCircuit


def build_cpu() -> Netlist:
    """Elaborate the LP430 to a flat gate-level netlist."""
    b = CircuitBuilder("lp430")
    rst = b.input("rst", 1)[0]
    pmem_rdata = b.input("pmem_rdata", 16)
    dmem_rdata = b.input("dmem_rdata", 16)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    pc = b.reg("pc", 16)
    sr = b.reg("sr", 16)
    ir = b.reg("ir", 16)
    sext_r = b.reg("sext", 16)
    dext_r = b.reg("dext", 16)
    srcv_r = b.reg("srcv", 16)
    dstv_r = b.reg("dstv", 16)
    saddr_r = b.reg("saddr", 16)

    fsm_regs: dict = {}
    ph = begin_fsm(b, fsm_regs)

    # The live instruction: freshly fetched during F, registered elsewhere.
    live_insn = b.mux(ph.f, ir.q, pmem_rdata)
    dec = build_decode(b, live_insn)
    finish_fsm(b, fsm_regs, ph, dec, rst)

    # ------------------------------------------------------------------
    # Register file and operand address math
    # ------------------------------------------------------------------
    # Two-phase: flip-flops first so read ports can feed the ALU; the
    # write port is connected once the ALU result exists.
    rf = RegFileBuilder(b, pc_q=pc.q, sr_q=sr.q)
    sp_q = rf.sp
    src_reg_val = rf.read(dec.src_reg)
    dst_reg_val = rf.read(dec.dst_reg)

    src_offset = b.mask(sext_r.q, dec.src_indexed)
    src_addr, _ = b.add(src_reg_val, src_offset)
    dst_addr, _ = b.add(dst_reg_val, dext_r.q)
    sp_minus_1, _ = b.add(sp_q, b.const(0xFFFF, 16))

    # ------------------------------------------------------------------
    # Operand selection and ALU
    # ------------------------------------------------------------------
    src_operand = b.mux(dec.src_is_reg, srcv_r.q, src_reg_val)
    dst_old_fmt1 = b.mux(dec.ad, dst_reg_val, dstv_r.q)
    dst_old = b.mux(dec.fmt2, dst_old_fmt1, src_operand)

    alu = build_alu(b, dec, src_operand, dst_old, carry_flag=sr.q[0])

    # ------------------------------------------------------------------
    # Register-file write port
    # ------------------------------------------------------------------
    push_or_call = b.or_bit(dec.is_push, dec.is_call)
    autoinc_wen = b.and_bit(ph.sl, dec.autoinc)
    e_wen = b.and_bit(
        ph.e, b.or_bit(dec.regfile_write_e, push_or_call)
    )
    rf_wen = b.or_bit(autoinc_wen, e_wen)
    waddr_e = b.mux(push_or_call, dec.dst_reg, b.const(1, 4))
    rf_waddr = b.mux(ph.sl, waddr_e, dec.src_reg)
    src_plus_1 = b.inc(src_reg_val)
    wdata_e = b.mux(push_or_call, alu.result, sp_minus_1)
    rf_wdata = b.mux(ph.sl, wdata_e, src_plus_1)
    rf.connect_write_port(rf_waddr, rf_wdata, rf_wen, rst)

    # ------------------------------------------------------------------
    # Status register
    # ------------------------------------------------------------------
    flagged = Sig(
        [
            alu.carry,
            alu.zero,
            alu.negative,
        ]
        + list(sr.q[3:8])
        + [alu.overflow]
        + list(sr.q[9:16])
    )
    sr_e = b.mux(dec.flags_en, sr.q, flagged)
    sr_e = b.mux(dec.sr_write_e, sr_e, alu.result)
    sr_next = b.mux(ph.e, sr.q, sr_e)
    b.drive(sr, sr_next, rst=rst)

    # ------------------------------------------------------------------
    # Program counter
    # ------------------------------------------------------------------
    pc_plus_1 = b.inc(pc.q)
    jump_target, _ = b.add(pc.q, dec.jump_offset)
    flag_c, flag_z, flag_n = sr.q[0], sr.q[1], sr.q[2]
    flag_v = sr.q[8]
    n_xor_v = b.xor_bit(flag_n, flag_v)
    cond_true = b.muxn(
        dec.cond,
        [
            Sig([b.not_bit(flag_z)]),  # jnz
            Sig([flag_z]),  # jz
            Sig([b.not_bit(flag_c)]),  # jnc
            Sig([flag_c]),  # jc
            Sig([flag_n]),  # jn
            Sig([b.not_bit(n_xor_v)]),  # jge
            Sig([n_xor_v]),  # jl
            Sig([b.bit1()]),  # jmp
        ],
    )[0]
    j_pc = b.mux(cond_true, pc.q, jump_target)
    e_pc = b.mux(dec.pc_write_e, pc.q, alu.result)
    e_pc = b.mux(dec.is_call, e_pc, src_operand)
    fetchy = b.or_bit(ph.f, ph.se, ph.de)
    pc_next = b.mux(fetchy, pc.q, pc_plus_1)
    pc_next = b.mux(ph.j, pc_next, j_pc)
    pc_next = b.mux(ph.e, pc_next, e_pc)
    pc_d = b.drive(pc, pc_next, rst=rst)

    # ------------------------------------------------------------------
    # Instruction-stream registers
    # ------------------------------------------------------------------
    b.drive(ir, pmem_rdata, en=ph.f, rst=rst)
    b.drive(sext_r, pmem_rdata, en=ph.se, rst=rst)
    b.drive(dext_r, pmem_rdata, en=ph.de, rst=rst)
    srcv_next = b.mux(ph.sl, pmem_rdata, dmem_rdata)
    b.drive(srcv_r, srcv_next, en=b.or_bit(ph.se, ph.sl), rst=rst)
    b.drive(saddr_r, src_addr, en=ph.sl, rst=rst)
    b.drive(dstv_r, dmem_rdata, en=ph.dl, rst=rst)

    # ------------------------------------------------------------------
    # Memory interface
    # ------------------------------------------------------------------
    fmt1_mem_write = b.and_bit(dec.writes_result, dec.ad)
    e_mem_addr = b.mux(dec.fmt2_mem_write, dst_addr, saddr_r.q)
    e_mem_addr = b.mux(push_or_call, e_mem_addr, sp_minus_1)
    dmem_addr = b.mux(ph.dl, e_mem_addr, dst_addr)
    dmem_addr = b.mux(ph.sl, dmem_addr, src_addr)
    dmem_ren = b.or_bit(ph.sl, ph.dl)
    dmem_wen = b.and_bit(
        ph.e,
        b.or_bit(fmt1_mem_write, dec.fmt2_mem_write, push_or_call),
    )
    dmem_wdata = b.mux(dec.is_call, alu.result, pc.q)
    dmem_wdata = b.mux(dec.is_push, dmem_wdata, src_operand)

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    b.output("pmem_addr", pc.q)
    b.output("dmem_addr", dmem_addr)
    b.output("dmem_wdata", dmem_wdata)
    b.output("dmem_wen", Sig([dmem_wen]))
    b.output("dmem_ren", Sig([dmem_ren]))
    b.output("dbg_pc", pc.q)
    b.output("dbg_pc_next", pc_d)
    b.output("dbg_ir", ir.q)
    b.output("dbg_sr", sr.q)
    b.output(
        "dbg_phase",
        Sig([ph.f, ph.se, ph.sl, ph.de, ph.dl, ph.e, ph.j]),
    )

    return b.build()


@lru_cache(maxsize=2)
def compiled_cpu(engine: str = "dense") -> CompiledCircuit:
    """The compiled LP430 (cached -- elaboration takes a moment).

    One cache slot per evaluation engine: the dense and event circuits
    share nothing mutable, so analyses with different ``--engine`` flags
    can coexist in one process.
    """
    return CompiledCircuit(build_cpu(), engine=engine)


def cpu_stats() -> NetlistStats:
    """Synthesis-report style statistics for the LP430 netlist."""
    return netlist_stats(build_cpu())
