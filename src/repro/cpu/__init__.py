"""The gate-level LP430 microcontroller.

A complete multi-cycle CPU implementing the :mod:`repro.isa.spec` contract,
elaborated to library gates with the :class:`~repro.netlist.builder.
CircuitBuilder` -- the reproduction's stand-in for the paper's synthesised
openMSP430 netlist.  ``build_cpu()`` returns the netlist; ``compiled_cpu()``
returns a cached :class:`~repro.sim.compiled.CompiledCircuit` ready to drop
into a :class:`~repro.sim.soc.SoC`.
"""

from repro.cpu.build import build_cpu, compiled_cpu, cpu_stats

__all__ = ["build_cpu", "compiled_cpu", "cpu_stats"]
