"""Convenience harness for running programs on the gate-level SoC.

Used by the test-suite's gate-vs-architectural cross-validation and by the
evaluation harness when it wants ground-truth gate-level runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.encode import EncodeError, decode
from repro.isa.program import Program
from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import TWord
from repro.sim.compiled import CompiledCircuit
from repro.sim.soc import AddressSpace, CycleEvents, Rom, SoC

#: dbg_phase bit indices (matches the build order in repro.cpu.build).
PHASE_F, PHASE_SE, PHASE_SL, PHASE_DE, PHASE_DL, PHASE_E, PHASE_J = range(7)


class GateRunner:
    """Loads a program into a gate-level SoC and steps it."""

    def __init__(
        self,
        circuit: CompiledCircuit,
        program: Program,
        space: Optional[AddressSpace] = None,
        inputs: Optional[Callable[[str], int]] = None,
    ):
        self.program = program
        rom = Rom()
        program.load_rom(rom)
        self.soc = SoC(circuit, rom=rom, space=space)
        program.load_ram(self.soc.space.ram)
        if inputs is not None:
            for port in self.soc.space.input_ports:
                port.driver = lambda name=port.name: inputs(name)
        self._net_ids: Dict[str, int] = {
            name: index
            for index, name in enumerate(circuit.netlist.net_names)
        }
        self.soc.reset()
        self.events: List[CycleEvents] = []

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def read_named(self, prefix: str, width: int = 16) -> TWord:
        """Read an internal register by its net-name prefix (e.g. 'rf/r4')."""
        nets = [self._net_ids[f"{prefix}[{i}]"] for i in range(width)]
        return self.soc.circuit.read_nets(self.soc.state, nets)

    def register(self, index: int) -> TWord:
        if index == 0:
            return self.soc.pc()
        if index == 2:
            return self.soc.read_debug("dbg_sr")
        if index == 3:
            return TWord.const(0)
        return self.read_named(f"rf/r{index}")

    def phase(self) -> int:
        """Current FSM phase, read from the *registered* bits only.

        After a clock edge the combinational nets (including the derived F
        bit) are stale until the next evaluation, but the six registered
        phase bits are fresh; F is the all-zero case.
        """
        word = self.soc.read_debug("dbg_phase")
        unknown = False
        for bit in range(1, 7):
            value, _ = word.bit(bit)
            if value == ONE:
                return bit
            if value != ZERO:
                unknown = True
        if unknown:
            return -1  # the FSM itself has unknown state bits
        return PHASE_F

    def at_halt(self) -> bool:
        """True when executing the idle self-loop (``jmp $``)."""
        if self.phase() != PHASE_J:
            return False
        ir = self.soc.instruction_register()
        if not ir.is_concrete:
            return False
        try:
            instruction = decode([ir.value, 0, 0], 0)
        except EncodeError:
            return False
        return instruction.mnemonic == "jmp" and instruction.offset == -1

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> CycleEvents:
        events = self.soc.step()
        self.events.append(events)
        return events

    def run(
        self, max_cycles: int = 100_000, stop_at_halt: bool = True
    ) -> int:
        """Step until the idle loop (or *max_cycles*); returns cycles run."""
        start = self.soc.cycle
        while self.soc.cycle - start < max_cycles:
            if stop_at_halt and self.at_halt():
                break
            self.step()
        return self.soc.cycle - start
