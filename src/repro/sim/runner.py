"""Convenience harness for running programs on the gate-level SoC.

Used by the test-suite's gate-vs-architectural cross-validation and by the
evaluation harness when it wants ground-truth gate-level runs.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.isa.encode import EncodeError, decode
from repro.isa.program import Program
from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import TWord
from repro.obs import get_observer
from repro.obs.provenance import get_recorder
from repro.obs.timeline import get_timeline
from repro.sim.compiled import CompiledCircuit
from repro.sim.soc import AddressSpace, CycleEvents, Rom, SoC

#: dbg_phase bit indices (matches the build order in repro.cpu.build).
PHASE_F, PHASE_SE, PHASE_SL, PHASE_DE, PHASE_DL, PHASE_E, PHASE_J = range(7)

#: Symbolic names of the FSM phases, indexed by the values above.
PHASE_NAMES = ("F", "SE", "SL", "DE", "DL", "E", "J")

InputSpec = Union[
    Callable[[str], int], Mapping[str, Union[int, Callable[[], int]]]
]


class GateRunner:
    """Loads a program into a gate-level SoC and steps it.

    *inputs* drives the GPIO input ports for concrete runs.  It is either

    * a mapping ``{port_name: value_or_callable}`` -- validated eagerly,
      so an unknown port name fails here with the known names listed,
      rather than cycles later inside the simulation; or
    * a callable ``inputs(port_name) -> int`` polled on every port read
      (kept for stateful drivers); lookup errors it raises are re-raised
      with the offending port named.
    """

    def __init__(
        self,
        circuit: CompiledCircuit,
        program: Program,
        space: Optional[AddressSpace] = None,
        inputs: Optional[InputSpec] = None,
        trace_interval: int = 1,
    ):
        self.program = program
        rom = Rom()
        program.load_rom(rom)
        self.soc = SoC(circuit, rom=rom, space=space)
        program.load_ram(self.soc.space.ram)
        if inputs is not None:
            self._wire_inputs(inputs)
        self._net_ids: Dict[str, int] = {
            name: index
            for index, name in enumerate(circuit.netlist.net_names)
        }
        self.trace_interval = trace_interval
        self.soc.reset()
        self.events: List[CycleEvents] = []

    def _wire_inputs(self, inputs: InputSpec) -> None:
        ports = self.soc.space.input_ports
        known = [port.name for port in ports]
        if isinstance(inputs, Mapping):
            unknown = sorted(set(inputs) - set(known))
            if unknown:
                raise ValueError(
                    f"unknown input port name(s) {unknown}; "
                    f"this SoC has input ports {known}"
                )
            for port in ports:
                if port.name not in inputs:
                    continue
                value = inputs[port.name]
                if callable(value):
                    port.driver = value
                else:
                    port.driver = lambda value=int(value): value
            return
        if not callable(inputs):
            raise TypeError(
                "inputs must be a mapping {port_name: value} or a "
                f"callable inputs(port_name) -> int, got {type(inputs)!r}"
            )
        for port in ports:

            def driver(name=port.name):
                try:
                    return inputs(name)
                except LookupError as error:
                    raise ValueError(
                        f"inputs callback has no value for port "
                        f"{name!r} (known ports: {known})"
                    ) from error

            port.driver = driver

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def read_named(self, prefix: str, width: int = 16) -> TWord:
        """Read an internal register by its net-name prefix (e.g. 'rf/r4')."""
        nets = [self._net_ids[f"{prefix}[{i}]"] for i in range(width)]
        return self.soc.circuit.read_nets(self.soc.state, nets)

    def register(self, index: int) -> TWord:
        if index == 0:
            return self.soc.pc()
        if index == 2:
            return self.soc.read_debug("dbg_sr")
        if index == 3:
            return TWord.const(0)
        return self.read_named(f"rf/r{index}")

    def phase(self) -> int:
        """Current FSM phase, read from the *registered* bits only.

        After a clock edge the combinational nets (including the derived F
        bit) are stale until the next evaluation, but the six registered
        phase bits are fresh; F is the all-zero case.
        """
        word = self.soc.read_debug("dbg_phase")
        unknown = False
        for bit in range(1, 7):
            value, _ = word.bit(bit)
            if value == ONE:
                return bit
            if value != ZERO:
                unknown = True
        if unknown:
            return -1  # the FSM itself has unknown state bits
        return PHASE_F

    def at_halt(self) -> bool:
        """True when executing the idle self-loop (``jmp $``)."""
        if self.phase() != PHASE_J:
            return False
        ir = self.soc.instruction_register()
        if not ir.is_concrete:
            return False
        try:
            instruction = decode([ir.value, 0, 0], 0)
        except EncodeError:
            return False
        return instruction.mnemonic == "jmp" and instruction.offset == -1

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> CycleEvents:
        events = self.soc.step()
        self.events.append(events)
        obs = get_observer()
        if obs.enabled and obs.trace is not None:
            cycle = self.soc.cycle
            if self.trace_interval and cycle % self.trace_interval == 0:
                self._emit_step(obs, cycle, events)
        return events

    def _emit_step(self, obs, cycle: int, events: CycleEvents) -> None:
        """One per-cycle summary trace event."""
        phase = self.phase()
        fields = {}
        recorder = get_recorder()
        if recorder is not None:
            fields["provenance_edges"] = recorder.edges_this_cycle
        timeline = get_timeline()
        if timeline is not None:
            fields["timeline_frames"] = timeline.num_frames
        obs.emit(
            "step",
            cycle=cycle,
            phase=PHASE_NAMES[phase] if phase >= 0 else "X",
            pc=events.pc.bits if not events.pc.xmask else None,
            reset=events.reset[0] == ONE,
            read=events.read is not None,
            write=events.write is not None,
            port_events=len(events.port_events),
            **fields,
        )

    def run(
        self, max_cycles: int = 100_000, stop_at_halt: bool = True
    ) -> int:
        """Step until the idle loop (or *max_cycles*); returns cycles run."""
        start = self.soc.cycle
        with get_observer().span("gate_run"):
            while self.soc.cycle - start < max_cycles:
                if stop_at_halt and self.at_halt():
                    break
                self.step()
        return self.soc.cycle - start
