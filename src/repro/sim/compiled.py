"""Compiled gate-level GLIFT simulator.

A :class:`CompiledCircuit` turns a :class:`~repro.netlist.netlist.Netlist`
into vectorised evaluation kernels:

* the netlist is levelised once (:mod:`repro.netlist.levelize`);
* within each level, gates are grouped by cell type;
* each cell type's full ternary+taint behaviour -- the GLIFT semantics of
  :func:`repro.logic.glift.glift_eval` -- is baked into a lookup table over
  per-net *codes*.

A net's code packs its ternary value and taint into one byte::

    code = value * 2 + taint        # value in {0, 1, X=2}, taint in {0, 1}

so a k-input gate's LUT has ``6**k`` entries, and evaluating a group of N
same-type gates is one gather ``lut[idx]`` over an N-vector of base-6 packed
input codes.  The per-cycle cost is a few dozen numpy operations regardless
of gate count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.logic.glift import GATE_FUNCTIONS, glift_eval
from repro.logic.ternary import UNKNOWN
from repro.logic.words import TWord
from repro.netlist.cells import CONSTANT_CELLS
from repro.netlist.levelize import levelize
from repro.netlist.netlist import Netlist
from repro.obs import get_observer
from repro.obs.perf import get_perf
from repro.obs.provenance import get_recorder

#: Codes for common states.
CODE_0 = 0  # value 0, untainted
CODE_1 = 2  # value 1, untainted
CODE_X = 4  # value X, untainted


def code_of(value: int, taint: int) -> int:
    """Pack a ternary value and a taint bit into a net code."""
    return value * 2 + taint


def decode_code(code: int) -> Tuple[int, int]:
    """Unpack a net code into ``(ternary value, taint)``."""
    return code >> 1, code & 1


def unpack_codes(codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`decode_code`: ``(values, taints)`` arrays.

    Values are ternary (0, 1, or 2 for X); taints are 0/1.  Used by the
    timeline scrub API and viewer, which reconstruct whole code arrays
    per frame.
    """
    return codes >> 1, codes & 1


def _lut_for(cell_type: str, taint_mode: str = "glift") -> np.ndarray:
    """Exhaustive taint lookup table for one cell type, indexed base-6.

    ``taint_mode="glift"`` uses the value-aware semantics of
    :func:`repro.logic.glift.glift_eval` (the paper's Figure 1);
    ``taint_mode="naive"`` uses conservative DIFT-style propagation --
    the output is tainted whenever *any* input is -- used by the ablation
    study to show why value-awareness is load-bearing (a naive tracker
    can never verify the masking repair: AND with an untainted constant
    would stay tainted).
    """
    func = GATE_FUNCTIONS[cell_type]
    arity = 1 if cell_type in ("BUF", "NOT") else (
        3 if cell_type == "MUX2" else int(cell_type[-1])
    )
    lut = np.zeros(6 ** arity, dtype=np.uint8)
    for codes in itertools.product(range(6), repeat=arity):
        values = [c >> 1 for c in codes]
        taints = [c & 1 for c in codes]
        index = 0
        for code in codes:
            index = index * 6 + code
        value, taint = glift_eval(func, values, taints)
        if taint_mode == "naive":
            taint = 1 if any(taints) else 0
        elif taint_mode != "glift":
            raise ValueError(f"unknown taint mode {taint_mode!r}")
        lut[index] = code_of(value, taint)
    return lut


_LUT_CACHE: Dict[Tuple[str, str], np.ndarray] = {}


def _cached_lut(cell_type: str, taint_mode: str = "glift") -> np.ndarray:
    key = (cell_type, taint_mode)
    if key not in _LUT_CACHE:
        _LUT_CACHE[key] = _lut_for(cell_type, taint_mode)
    return _LUT_CACHE[key]


@dataclass
class _Group:
    """All gates of one cell type within one level."""

    lut: np.ndarray
    inputs: List[np.ndarray]  # arity arrays of net ids
    outputs: np.ndarray
    cell_type: str = ""


class CircuitState:
    """Per-net codes for one simulation state (mutable, cheap to copy)."""

    __slots__ = ("codes",)

    def __init__(self, codes: np.ndarray):
        self.codes = codes

    def copy(self) -> "CircuitState":
        return CircuitState(self.codes.copy())


class CompiledCircuit:
    """A netlist compiled for fast ternary+taint cycle simulation."""

    def __init__(self, netlist: Netlist, taint_mode: str = "glift"):
        netlist.validate()
        self.netlist = netlist
        self.taint_mode = taint_mode
        self.num_nets = netlist.num_nets

        self._const_nets: List[int] = []
        self._const_codes: List[int] = []
        for gate in netlist.gates:
            if gate.cell_type in CONSTANT_CELLS:
                self._const_nets.append(gate.output)
                self._const_codes.append(
                    CODE_1 if gate.cell_type == "TIE1" else CODE_0
                )
        self._const_nets_arr = np.array(self._const_nets, dtype=np.int64)
        self._const_codes_arr = np.array(self._const_codes, dtype=np.uint8)

        self._levels: List[List[_Group]] = []
        with get_observer().span("levelize"):
            for level in levelize(netlist)[1:]:
                by_type: Dict[str, List] = {}
                for gate in level:
                    by_type.setdefault(gate.cell_type, []).append(gate)
                groups = []
                for cell_type, gates in sorted(by_type.items()):
                    arity = len(gates[0].inputs)
                    inputs = [
                        np.array(
                            [g.inputs[position] for g in gates],
                            dtype=np.int64,
                        )
                        for position in range(arity)
                    ]
                    outputs = np.array(
                        [g.output for g in gates], dtype=np.int64
                    )
                    groups.append(
                        _Group(
                            _cached_lut(cell_type, taint_mode),
                            inputs,
                            outputs,
                            cell_type,
                        )
                    )
                self._levels.append(groups)

        #: per-cell-type gate totals for one full combinational pass,
        #: used by the gate-eval counters
        self._gates_by_type: Dict[str, int] = {}
        for groups in self._levels:
            for group in groups:
                self._gates_by_type[group.cell_type] = (
                    self._gates_by_type.get(group.cell_type, 0)
                    + len(group.outputs)
                )
        self._total_gates = sum(self._gates_by_type.values())
        #: cached per-plan gate totals, keyed by plan identity
        self._plan_totals: Dict[int, Tuple[Dict[str, int], int]] = {}
        #: cached (Counter, amount) increment lists keyed by
        #: (registry id, totals id) -- avoids name lookups per eval pass
        self._counter_cache: Dict[Tuple[int, int], list] = {}

        self._dff_q = np.array([d.q for d in netlist.dffs], dtype=np.int64)
        self._dff_d = np.array([d.d for d in netlist.dffs], dtype=np.int64)

        self._inputs = {p.name: p.nets for p in netlist.inputs}
        self._outputs = {p.name: p.nets for p in netlist.outputs}

    # ------------------------------------------------------------------
    # Pickling (parallel-worker support)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop the id-keyed memo caches: their keys are object ids from
        *this* process, meaningless (and potentially colliding) after a
        round-trip into a worker.  Everything else -- levelized groups,
        LUTs, net arrays -- is plain data and ships as-is, so a worker
        pays no re-levelization cost."""
        state = self.__dict__.copy()
        state["_plan_totals"] = {}
        state["_counter_cache"] = {}
        state.pop("_prod_tables", None)  # lazily rebuilt on demand
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def new_state(self) -> CircuitState:
        """Fresh state: every net (including all flip-flops) untainted X.

        This is Algorithm 1 line 2: "initialize all memory cells and all
        gates in design_netlist to untainted X".
        """
        codes = np.full(self.num_nets, CODE_X, dtype=np.uint8)
        return CircuitState(codes)

    def dff_state(self, state: CircuitState) -> np.ndarray:
        """The flip-flop snapshot (copy) -- the circuit's true state."""
        return state.codes[self._dff_q].copy()

    def set_dff_state(self, state: CircuitState, snapshot: np.ndarray) -> None:
        state.codes[self._dff_q] = snapshot

    @property
    def num_dffs(self) -> int:
        return len(self._dff_q)

    # ------------------------------------------------------------------
    # Port access
    # ------------------------------------------------------------------
    def set_input(self, state: CircuitState, name: str, word: TWord) -> None:
        nets = self._inputs[name]
        if len(nets) != word.width:
            raise ValueError(
                f"port {name} is {len(nets)} bits, got {word.width}"
            )
        self.set_nets(state, nets, word)

    def read_output(self, state: CircuitState, name: str) -> TWord:
        return self.read_nets(state, self._outputs[name])

    def set_nets(
        self, state: CircuitState, nets: Sequence[int], word: TWord
    ) -> None:
        codes = state.codes
        for index, net in enumerate(nets):
            value, taint = word.bit(index)
            codes[net] = code_of(value, taint)

    def read_nets(self, state: CircuitState, nets: Sequence[int]) -> TWord:
        bits = 0
        xmask = 0
        tmask = 0
        codes = state.codes
        for index, net in enumerate(nets):
            code = int(codes[net])
            value, taint = code >> 1, code & 1
            probe = 1 << index
            if value == UNKNOWN:
                xmask |= probe
            elif value:
                bits |= probe
            if taint:
                tmask |= probe
        return TWord(bits, xmask, tmask, len(nets))

    def input_nets(self, name: str) -> Tuple[int, ...]:
        return self._inputs[name]

    def output_nets(self, name: str) -> Tuple[int, ...]:
        return self._outputs[name]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def eval_combinational(self, state: CircuitState) -> None:
        """Propagate codes through all combinational logic (one pass)."""
        codes = state.codes
        if len(self._const_nets_arr):
            codes[self._const_nets_arr] = self._const_codes_arr
        recorder = get_recorder()
        perf = get_perf() if recorder is None else None
        if recorder is not None:
            self._eval_levels_recording(codes, self._levels, recorder)
        elif perf is not None:
            self._eval_levels_timed(codes, self._levels, perf, "full")
            perf.ensure_bound(self)
            perf.sample(codes)
        else:
            for groups in self._levels:
                for group in groups:
                    index = codes[group.inputs[0]].astype(np.int32)
                    for column in group.inputs[1:]:
                        index *= 6
                        index += codes[column]
                    codes[group.outputs] = group.lut[index]
        obs = get_observer()
        if obs.enabled:
            self._count_gate_evals(obs, self._gates_by_type,
                                   self._total_gates)

    def _producer_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-net fan-in table and topological rank for provenance.

        ``table`` is ``(num_nets, max_arity)``: row *n* holds the input
        net ids of the gate driving net *n* (-1 padded; nets without a
        combinational producer -- DFF Qs, ports, constants -- stay all
        -1).  ``rank[n]`` is the driving gate's position in evaluation
        order, used to emit a pass's edges cause-before-effect.  Built
        lazily on the first provenance-recording pass.
        """
        cached = getattr(self, "_prod_tables", None)
        if cached is None:
            max_arity = 1
            for groups in self._levels:
                for group in groups:
                    max_arity = max(max_arity, len(group.inputs))
            table = np.full((self.num_nets, max_arity), -1, dtype=np.int64)
            rank = np.zeros(self.num_nets, dtype=np.int64)
            counter = 0
            for groups in self._levels:
                for group in groups:
                    for position, column in enumerate(group.inputs):
                        table[group.outputs, position] = column
                    rank[group.outputs] = np.arange(
                        counter, counter + len(group.outputs)
                    )
                    counter += len(group.outputs)
            cached = self._prod_tables = (table, rank)
        return cached

    def _eval_levels_recording(
        self, codes: np.ndarray, levels: List[List[_Group]], recorder
    ) -> None:
        """The evaluation loop with per-gate taint-provenance capture.

        The inner gate loop is identical to the plain path; provenance
        costs two whole-array operations per pass -- snapshot the codes
        before, diff the taint bits after -- plus fan-in resolution for
        just the newly-tainted nets.  Each net is written at most once
        per pass and its fan-ins come from earlier levels, so the
        post-pass codes are exactly what the producing gate read, and
        the diff attributes every new taint bit to the right edges.
        Edges are emitted in the gates' evaluation order: the backward
        slicer relies on a cause being recorded before its effect.
        """
        before = codes.copy()
        for groups in levels:
            for group in groups:
                index = codes[group.inputs[0]].astype(np.int32)
                for column in group.inputs[1:]:
                    index *= 6
                    index += codes[column]
                codes[group.outputs] = group.lut[index]
        fresh = np.nonzero(codes & ~before & 1)[0]
        if len(fresh) == 0:
            return
        table, rank = self._producer_tables()
        fresh = fresh[np.argsort(rank[fresh])]
        fan_in = table[fresh]  # (n, max_arity)
        # Row-major ravel keeps each gate's fan-in edges consecutive, so
        # the stream stays topologically ordered within the pass.
        src_flat = fan_in.ravel()
        dst_flat = np.repeat(fresh, fan_in.shape[1])
        mask = (src_flat >= 0) & (
            (codes[np.maximum(src_flat, 0)] & 1).astype(bool)
        )
        if mask.any():
            recorder.record_gate(dst_flat[mask], src_flat[mask])

    def _eval_levels_timed(
        self, codes: np.ndarray, levels: List[List[_Group]], perf, kind: str
    ) -> None:
        """The evaluation loop with per-(rank, cell-type) timing.

        Identical numpy work to the plain path plus two ``perf_counter``
        calls and one accumulator add per group (eval counts are
        reconstructed from pass counts at report time) -- the overhead
        is benched under 15% by
        ``benchmarks/bench_perf_attribution.py``.
        The pass total is timed separately so the dispatch overhead
        (loop bookkeeping between groups) is attributable too.
        """
        slots = perf.group_slots(levels, kind)
        pass_start = perf_counter()
        for groups, level_slots in zip(levels, slots):
            for group, slot in zip(groups, level_slots):
                group_start = perf_counter()
                index = codes[group.inputs[0]].astype(np.int32)
                for column in group.inputs[1:]:
                    index *= 6
                    index += codes[column]
                codes[group.outputs] = group.lut[index]
                slot[0] += perf_counter() - group_start
        perf.note_pass(kind, perf_counter() - pass_start)

    def _count_gate_evals(self, obs, by_type: Dict[str, int],
                          total: int) -> None:
        metrics = obs.metrics
        key = (id(metrics), id(by_type))
        increments = self._counter_cache.get(key)
        if increments is None:
            increments = [
                (metrics.counter("sim.eval_passes"), 1),
                (metrics.counter("sim.gate_evals"), total),
            ]
            increments.extend(
                (metrics.counter(f"sim.gate_evals.{cell_type}"), count)
                for cell_type, count in by_type.items()
            )
            self._counter_cache[key] = increments
        for counter, amount in increments:
            counter.value += amount

    def _totals_of_plan(
        self, plan: List[List[_Group]]
    ) -> Tuple[Dict[str, int], int]:
        key = id(plan)
        cached = self._plan_totals.get(key)
        if cached is None:
            by_type: Dict[str, int] = {}
            for groups in plan:
                for group in groups:
                    by_type[group.cell_type] = (
                        by_type.get(group.cell_type, 0) + len(group.outputs)
                    )
            cached = (by_type, sum(by_type.values()))
            self._plan_totals[key] = cached
        return cached

    def cone_plan(self, port_names: Sequence[str]) -> List[List[_Group]]:
        """Pre-group only the gates feeding the named output ports.

        Used by the SoC's first evaluation pass, which only needs the
        memory-interface signals; the full pass runs after read data is
        applied.
        """
        wanted = set()
        for name in port_names:
            wanted.update(self._outputs[name])
        producers: Dict[int, object] = {}
        for groups in self._levels:
            for group in groups:
                for position, output in enumerate(group.outputs):
                    producers[int(output)] = (group, position)
        needed = set()
        stack = list(wanted)
        while stack:
            net = stack.pop()
            if net in needed:
                continue
            needed.add(net)
            producer = producers.get(net)
            if producer is None:
                continue
            group, position = producer
            for column in group.inputs:
                stack.append(int(column[position]))
        plan: List[List[_Group]] = []
        for groups in self._levels:
            level_plan: List[_Group] = []
            for group in groups:
                keep = [
                    i
                    for i, output in enumerate(group.outputs)
                    if int(output) in needed
                ]
                if not keep:
                    continue
                if len(keep) == len(group.outputs):
                    level_plan.append(group)
                else:
                    level_plan.append(
                        _Group(
                            group.lut,
                            [column[keep] for column in group.inputs],
                            group.outputs[keep],
                            group.cell_type,
                        )
                    )
            if level_plan:
                plan.append(level_plan)
        return plan

    def eval_plan(
        self, state: CircuitState, plan: List[List[_Group]]
    ) -> None:
        """Evaluate a pre-grouped cone (see :meth:`cone_plan`)."""
        codes = state.codes
        if len(self._const_nets_arr):
            codes[self._const_nets_arr] = self._const_codes_arr
        recorder = get_recorder()
        perf = get_perf() if recorder is None else None
        if recorder is not None:
            self._eval_levels_recording(codes, plan, recorder)
        elif perf is not None:
            self._eval_levels_timed(codes, plan, perf, "interface")
        else:
            for groups in plan:
                for group in groups:
                    index = codes[group.inputs[0]].astype(np.int32)
                    for column in group.inputs[1:]:
                        index *= 6
                        index += codes[column]
                    codes[group.outputs] = group.lut[index]
        obs = get_observer()
        if obs.enabled:
            by_type, total = self._totals_of_plan(plan)
            self._count_gate_evals(obs, by_type, total)

    def clock_edge(self, state: CircuitState) -> None:
        """Latch every flip-flop: ``Q <= D``."""
        perf = get_perf()
        edge_start = perf_counter() if perf is not None else 0.0
        recorder = get_recorder()
        if recorder is not None:
            codes = state.codes
            newly = (codes[self._dff_d] & 1) & (codes[self._dff_q] & 1 ^ 1)
            picks = np.nonzero(newly)[0]
            if len(picks):
                recorder.record_latch(
                    self._dff_q[picks], self._dff_d[picks]
                )
        state.codes[self._dff_q] = state.codes[self._dff_d]
        if perf is not None:
            perf.note_clock_edge(perf_counter() - edge_start)

    def dff_nets(self) -> np.ndarray:
        """Net ids of every flip-flop Q (read-only view)."""
        return self._dff_q

    def taint_fraction(self, state: CircuitState) -> float:
        """Fraction of nets currently tainted (used by the *-logic study)."""
        return float(np.mean(state.codes & 1))

    def unknown_fraction(self, state: CircuitState) -> float:
        """Fraction of nets currently unknown."""
        return float(np.mean(state.codes >= 4))
