"""Compiled gate-level GLIFT simulator.

A :class:`CompiledCircuit` turns a :class:`~repro.netlist.netlist.Netlist`
into vectorised evaluation kernels:

* the netlist is levelised once (:mod:`repro.netlist.levelize`);
* within each level, gates are grouped by cell type;
* each cell type's full ternary+taint behaviour -- the GLIFT semantics of
  :func:`repro.logic.glift.glift_eval` -- is baked into a lookup table over
  per-net *codes*.

A net's code packs its ternary value and taint into one byte::

    code = value * 2 + taint        # value in {0, 1, X=2}, taint in {0, 1}

so a k-input gate's LUT has ``6**k`` entries, and evaluating a group of N
same-type gates is one gather ``lut[idx]`` over an N-vector of base-6 packed
input codes.  The per-cycle cost is a few dozen numpy operations regardless
of gate count.

Two evaluation engines share these kernels (DESIGN.md section 13):

* ``engine="dense"`` (the default) evaluates every gate group each pass
  -- simple, and the correctness anchor;
* ``engine="event"`` evaluates only gates whose inputs actually changed:
  per-state dirty sets are seeded from changed boundary nets (ports,
  flip-flop Qs, constants), a fanout index maps changed nets to affected
  gates, and a write-back that detects "output unchanged" stops
  propagation, so quiescent cones cost zero evaluations.  The engines
  are lockstep bit-identical (``tests/sim/test_engine_equivalence.py``);
  the event engine's external-write contract is that between evaluation
  passes only *boundary* nets are written (true of every caller: ports
  via :meth:`CompiledCircuit.set_input`, DFF Qs via
  :meth:`CompiledCircuit.set_dff_state` / ``force_pc`` / clock edges).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.logic.glift import GATE_FUNCTIONS, glift_eval
from repro.logic.ternary import UNKNOWN
from repro.logic.words import TWord
from repro.netlist.cells import CONSTANT_CELLS
from repro.netlist.levelize import build_fanout_index, levelize
from repro.netlist.netlist import Netlist
from repro.obs import get_observer
from repro.obs.perf import get_perf
from repro.obs.provenance import get_recorder

#: Codes for common states.
CODE_0 = 0  # value 0, untainted
CODE_1 = 2  # value 1, untainted
CODE_X = 4  # value X, untainted

#: The evaluation engines :class:`CompiledCircuit` supports.
ENGINES = ("dense", "event")


def code_of(value: int, taint: int) -> int:
    """Pack a ternary value and a taint bit into a net code."""
    return value * 2 + taint


def decode_code(code: int) -> Tuple[int, int]:
    """Unpack a net code into ``(ternary value, taint)``."""
    return code >> 1, code & 1


def unpack_codes(codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`decode_code`: ``(values, taints)`` arrays.

    Values are ternary (0, 1, or 2 for X); taints are 0/1.  Used by the
    timeline scrub API and viewer, which reconstruct whole code arrays
    per frame.
    """
    return codes >> 1, codes & 1


def _lut_for(cell_type: str, taint_mode: str = "glift") -> np.ndarray:
    """Exhaustive taint lookup table for one cell type, indexed base-6.

    ``taint_mode="glift"`` uses the value-aware semantics of
    :func:`repro.logic.glift.glift_eval` (the paper's Figure 1);
    ``taint_mode="naive"`` uses conservative DIFT-style propagation --
    the output is tainted whenever *any* input is -- used by the ablation
    study to show why value-awareness is load-bearing (a naive tracker
    can never verify the masking repair: AND with an untainted constant
    would stay tainted).
    """
    func = GATE_FUNCTIONS[cell_type]
    arity = 1 if cell_type in ("BUF", "NOT") else (
        3 if cell_type == "MUX2" else int(cell_type[-1])
    )
    lut = np.zeros(6 ** arity, dtype=np.uint8)
    for codes in itertools.product(range(6), repeat=arity):
        values = [c >> 1 for c in codes]
        taints = [c & 1 for c in codes]
        index = 0
        for code in codes:
            index = index * 6 + code
        value, taint = glift_eval(func, values, taints)
        if taint_mode == "naive":
            taint = 1 if any(taints) else 0
        elif taint_mode != "glift":
            raise ValueError(f"unknown taint mode {taint_mode!r}")
        lut[index] = code_of(value, taint)
    return lut


_LUT_CACHE: Dict[Tuple[str, str], np.ndarray] = {}


def _cached_lut(cell_type: str, taint_mode: str = "glift") -> np.ndarray:
    key = (cell_type, taint_mode)
    if key not in _LUT_CACHE:
        _LUT_CACHE[key] = _lut_for(cell_type, taint_mode)
    return _LUT_CACHE[key]


@dataclass
class _Group:
    """All gates of one cell type within one level."""

    lut: np.ndarray
    inputs: List[np.ndarray]  # arity arrays of net ids
    outputs: np.ndarray
    cell_type: str = ""


class _EventScratch:
    """Per-state dirty bookkeeping for the event engine.

    Travels with the :class:`CircuitState` (forks copy it, so each fork
    propagates its own changes), never with the circuit: the circuit's
    event tables are shared read-only across every state.

    * ``shadow`` mirrors the boundary nets' codes as of the last
      evaluation pass; diffing against it at pass start detects every
      external write (ports, DFF restores, clock edges) without hooks.
    * ``pending`` is one flag per global gate id: the gate's output may
      be stale and it must be re-evaluated before it can be trusted.  A
      cone-plan pass clears only its own gates' flags; the rest stay
      pending for the next full pass.
    * ``level_flags`` (a plain list -- scalar indexing is hotter than
      numpy here) marks levels owning at least one pending gate, so a
      quiescent level costs one boolean test.
    """

    __slots__ = (
        "shadow", "pending", "level_flags",
        "last_evals", "last_groups",
    )

    def __init__(self, boundary_codes: np.ndarray, num_gates: int,
                 num_levels: int):
        self.shadow = boundary_codes.copy()
        self.pending = np.ones(num_gates, dtype=bool)
        self.level_flags = [True] * num_levels
        #: diagnostics: gates / groups evaluated by the most recent pass
        self.last_evals = 0
        self.last_groups = 0

    def copy(self) -> "_EventScratch":
        clone = _EventScratch.__new__(_EventScratch)
        clone.shadow = self.shadow.copy()
        clone.pending = self.pending.copy()
        clone.level_flags = list(self.level_flags)
        clone.last_evals = self.last_evals
        clone.last_groups = self.last_groups
        return clone


class _EventTables:
    """Shared, derived lookup structure for the event engine.

    Built lazily on first event-mode evaluation and dropped by
    ``__getstate__`` (cheap to rebuild, and id-keyed plan masks must not
    cross process boundaries).
    """

    __slots__ = (
        "levels", "fanout", "gate_level", "boundary",
        "num_gates", "num_levels", "gid_of_net", "plan_masks",
        "meta_memo", "burst_limit",
    )

    def __init__(self, circuit: "CompiledCircuit"):
        # Global gate numbering: (level, group, row) in evaluation order.
        # Each level entry is ``(lstart, lend, offsets, groups)``: the
        # level's contiguous gid range, its groups' start offsets inside
        # that range (numpy for searchsorted, +sentinel), and per-group
        # ``(lut, inputs, outputs, cell_type, offset, size)`` tuples --
        # shaped so one flatnonzero over the level's pending window plus
        # one searchsorted splits the active rows between groups.
        levels = []
        edges = []
        base = 0
        gate_level_parts = []
        gid_of_net = np.full(circuit.num_nets, -1, dtype=np.int64)
        for level_index, groups in enumerate(circuit._levels):
            lstart = base
            entries = []
            offsets = []
            for group in groups:
                size = len(group.outputs)
                gids = np.arange(base, base + size, dtype=np.int64)
                for column in group.inputs:
                    edges.append((column, gids))
                gid_of_net[group.outputs] = gids
                offsets.append(base - lstart)
                entries.append(
                    (group.lut, group.inputs, group.outputs,
                     group.cell_type, base - lstart, size)
                )
                gate_level_parts.append(
                    np.full(size, level_index, dtype=np.int64)
                )
                base += size
            offsets.append(base - lstart)
            levels.append(
                (lstart, base,
                 np.array(offsets, dtype=np.int64), entries)
            )
        self.levels = levels
        self.num_gates = base
        self.num_levels = len(levels)
        self.fanout = build_fanout_index(circuit.num_nets, edges)
        self.gate_level = (
            np.concatenate(gate_level_parts)
            if gate_level_parts
            else np.empty(0, dtype=np.int64)
        )
        self.gid_of_net = gid_of_net
        # Boundary nets: everything not produced by a combinational
        # gate -- input ports, DFF Qs, constants, dangling nets.  These
        # are the only nets external code writes between passes.
        produced = np.zeros(circuit.num_nets, dtype=bool)
        produced[gid_of_net >= 0] = True
        self.boundary = np.nonzero(~produced)[0]
        #: id(plan) -> (plan ref, bool mask over global gate ids);
        #: the ref pins the plan so ids cannot be recycled
        self.plan_masks: Dict[int, tuple] = {}
        #: perf-attribution meta memo, same keying discipline
        self.meta_memo: Dict[Optional[int], list] = {}
        #: once a pass has evaluated this many gates, the sparse
        #: bookkeeping (nonzero scans, fanout marking) costs more than
        #: it saves; the rest of the pass completes densely.  ~6% of
        #: the circuit is where the two engines' per-gate costs cross
        #: over on the LP430 (measured; see DESIGN.md section 13).
        self.burst_limit = max(64, self.num_gates // 16)

    def plan_mask(self, plan) -> np.ndarray:
        """Global-gate membership mask for a :meth:`cone_plan` plan."""
        key = id(plan)
        cached = self.plan_masks.get(key)
        if cached is not None and cached[0] is plan:
            return cached[1]
        mask = np.zeros(self.num_gates, dtype=bool)
        for groups in plan:
            for group in groups:
                gids = self.gid_of_net[group.outputs]
                mask[gids] = True
        self.plan_masks[key] = (plan, mask)
        return mask


class CircuitState:
    """Per-net codes for one simulation state (mutable, cheap to copy).

    ``ev`` is the event engine's per-state dirty bookkeeping (None until
    the first event-mode evaluation, and always None under the dense
    engine); forking a state with :meth:`copy` carries it along so both
    branches keep propagating only their own changes.
    """

    __slots__ = ("codes", "ev")

    def __init__(self, codes: np.ndarray,
                 ev: Optional[_EventScratch] = None):
        self.codes = codes
        self.ev = ev

    def copy(self) -> "CircuitState":
        return CircuitState(
            self.codes.copy(),
            self.ev.copy() if self.ev is not None else None,
        )


class CompiledCircuit:
    """A netlist compiled for fast ternary+taint cycle simulation."""

    def __init__(
        self,
        netlist: Netlist,
        taint_mode: str = "glift",
        engine: str = "dense",
    ):
        netlist.validate()
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        self.netlist = netlist
        self.taint_mode = taint_mode
        self.engine = engine
        self.num_nets = netlist.num_nets

        self._const_nets: List[int] = []
        self._const_codes: List[int] = []
        for gate in netlist.gates:
            if gate.cell_type in CONSTANT_CELLS:
                self._const_nets.append(gate.output)
                self._const_codes.append(
                    CODE_1 if gate.cell_type == "TIE1" else CODE_0
                )
        self._const_nets_arr = np.array(self._const_nets, dtype=np.int64)
        self._const_codes_arr = np.array(self._const_codes, dtype=np.uint8)

        self._levels: List[List[_Group]] = []
        with get_observer().span("levelize"):
            for level in levelize(netlist)[1:]:
                by_type: Dict[str, List] = {}
                for gate in level:
                    by_type.setdefault(gate.cell_type, []).append(gate)
                groups = []
                for cell_type, gates in sorted(by_type.items()):
                    arity = len(gates[0].inputs)
                    inputs = [
                        np.array(
                            [g.inputs[position] for g in gates],
                            dtype=np.int64,
                        )
                        for position in range(arity)
                    ]
                    outputs = np.array(
                        [g.output for g in gates], dtype=np.int64
                    )
                    groups.append(
                        _Group(
                            _cached_lut(cell_type, taint_mode),
                            inputs,
                            outputs,
                            cell_type,
                        )
                    )
                self._levels.append(groups)

        #: per-cell-type gate totals for one full combinational pass,
        #: used by the gate-eval counters
        self._gates_by_type: Dict[str, int] = {}
        for groups in self._levels:
            for group in groups:
                self._gates_by_type[group.cell_type] = (
                    self._gates_by_type.get(group.cell_type, 0)
                    + len(group.outputs)
                )
        self._total_gates = sum(self._gates_by_type.values())
        #: cached per-plan gate totals, keyed by plan identity
        self._plan_totals: Dict[int, Tuple[Dict[str, int], int]] = {}
        #: cached (Counter, amount) increment lists keyed by
        #: (registry id, totals id) -- avoids name lookups per eval pass
        self._counter_cache: Dict[Tuple[int, int], list] = {}

        self._dff_q = np.array([d.q for d in netlist.dffs], dtype=np.int64)
        self._dff_d = np.array([d.d for d in netlist.dffs], dtype=np.int64)

        self._inputs = {p.name: p.nets for p in netlist.inputs}
        self._outputs = {p.name: p.nets for p in netlist.outputs}
        #: per-port net-id arrays for one-gather port reads/writes
        self._input_arrays = {
            name: np.array(nets, dtype=np.int64)
            for name, nets in self._inputs.items()
        }
        self._output_arrays = {
            name: np.array(nets, dtype=np.int64)
            for name, nets in self._outputs.items()
        }

    # ------------------------------------------------------------------
    # Pickling (parallel-worker support)
    # ------------------------------------------------------------------

    #: Derived attributes that must NOT ship across a pickle boundary:
    #: either their keys are object ids from *this* process (meaningless
    #: and potentially colliding in a worker) or they embed such ids
    #: (the event tables' plan-mask memo).  All are rebuilt lazily, so a
    #: worker pays at most one cheap reconstruction -- never a
    #: re-levelization.  Auditing note: every new id-keyed or lazily
    #: built cache added to this class belongs in this tuple;
    #: ``tests/sim/test_engine_equivalence.py`` pins the round-trip.
    _DERIVED_CACHES = ("_prod_tables", "_ev_tables")

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_plan_totals"] = {}
        state["_counter_cache"] = {}
        for name in self._DERIVED_CACHES:
            state.pop(name, None)
        return state

    def __setstate__(self, state: dict) -> None:
        # Defensive re-reset: tolerate documents pickled by older code
        # that did not strip a cache this version knows about.
        state["_plan_totals"] = {}
        state["_counter_cache"] = {}
        for name in self._DERIVED_CACHES:
            state.pop(name, None)
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def new_state(self) -> CircuitState:
        """Fresh state: every net (including all flip-flops) untainted X.

        This is Algorithm 1 line 2: "initialize all memory cells and all
        gates in design_netlist to untainted X".
        """
        codes = np.full(self.num_nets, CODE_X, dtype=np.uint8)
        return CircuitState(codes)

    def dff_state(self, state: CircuitState) -> np.ndarray:
        """The flip-flop snapshot (copy) -- the circuit's true state."""
        return state.codes[self._dff_q].copy()

    def set_dff_state(self, state: CircuitState, snapshot: np.ndarray) -> None:
        state.codes[self._dff_q] = snapshot

    @property
    def num_dffs(self) -> int:
        return len(self._dff_q)

    # ------------------------------------------------------------------
    # Port access
    # ------------------------------------------------------------------
    def set_input(self, state: CircuitState, name: str, word: TWord) -> None:
        nets = self._input_arrays[name]
        if len(nets) != word.width:
            raise ValueError(
                f"port {name} is {len(nets)} bits, got {word.width}"
            )
        self._scatter_word(state, nets, word)

    def read_output(self, state: CircuitState, name: str) -> TWord:
        return self._gather_word(state, self._output_arrays[name])

    def set_nets(
        self, state: CircuitState, nets: Sequence[int], word: TWord
    ) -> None:
        if not isinstance(nets, np.ndarray):
            nets = np.array(nets, dtype=np.int64)
        self._scatter_word(state, nets, word)

    def read_nets(self, state: CircuitState, nets: Sequence[int]) -> TWord:
        if not isinstance(nets, np.ndarray):
            nets = np.array(nets, dtype=np.int64)
        return self._gather_word(state, nets)

    def _scatter_word(
        self, state: CircuitState, nets: np.ndarray, word: TWord
    ) -> None:
        """One fancy-indexed write instead of a per-bit scalar loop."""
        width = len(nets)
        bits, xmask, tmask = word.bits, word.xmask, word.tmask
        buffer = bytearray(width)
        for index in range(width):
            probe = 1 << index
            if xmask & probe:
                value = UNKNOWN
            else:
                value = 1 if bits & probe else 0
            buffer[index] = value * 2 + (1 if tmask & probe else 0)
        state.codes[nets] = np.frombuffer(bytes(buffer), dtype=np.uint8)

    def _gather_word(
        self, state: CircuitState, nets: np.ndarray
    ) -> TWord:
        """One gather + a bytes loop: numpy scalar indexing is ~10x the
        cost of iterating a ``bytes`` of the same codes."""
        bits = 0
        xmask = 0
        tmask = 0
        probe = 1
        for code in state.codes[nets].tobytes():
            value = code >> 1
            if value == UNKNOWN:
                xmask |= probe
            elif value:
                bits |= probe
            if code & 1:
                tmask |= probe
            probe <<= 1
        return TWord(bits, xmask, tmask, len(nets))

    def input_nets(self, name: str) -> Tuple[int, ...]:
        return self._inputs[name]

    def output_nets(self, name: str) -> Tuple[int, ...]:
        return self._outputs[name]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def eval_combinational(self, state: CircuitState) -> None:
        """Propagate codes through all combinational logic (one pass)."""
        if self.engine == "event":
            self._eval_event(state, plan=None)
            return
        codes = state.codes
        if len(self._const_nets_arr):
            codes[self._const_nets_arr] = self._const_codes_arr
        recorder = get_recorder()
        perf = get_perf() if recorder is None else None
        if recorder is not None:
            self._eval_levels_recording(codes, self._levels, recorder)
        elif perf is not None:
            self._eval_levels_timed(codes, self._levels, perf, "full")
            perf.ensure_bound(self)
            perf.sample(codes)
        else:
            for groups in self._levels:
                for group in groups:
                    index = codes[group.inputs[0]].astype(np.int32)
                    for column in group.inputs[1:]:
                        index *= 6
                        index += codes[column]
                    codes[group.outputs] = group.lut[index]
        obs = get_observer()
        if obs.enabled:
            self._count_gate_evals(obs, self._gates_by_type,
                                   self._total_gates)

    # ------------------------------------------------------------------
    # Event-driven evaluation
    # ------------------------------------------------------------------
    def _event_tables(self) -> _EventTables:
        tables = getattr(self, "_ev_tables", None)
        if tables is None:
            tables = self._ev_tables = _EventTables(self)
        return tables

    def _event_scratch(
        self, state: CircuitState, tables: _EventTables
    ) -> _EventScratch:
        """The state's dirty bookkeeping, created on first event pass.

        Creation applies the constant cells (they are boundary nets the
        dense engine rewrites every pass; here they are written exactly
        once) and marks every gate pending, so the first pass is a full
        one regardless of what the codes array currently holds.
        """
        scratch = state.ev
        if (
            scratch is None
            or len(scratch.pending) != tables.num_gates
            or len(scratch.shadow) != len(tables.boundary)
        ):
            if len(self._const_nets_arr):
                state.codes[self._const_nets_arr] = self._const_codes_arr
            scratch = state.ev = _EventScratch(
                state.codes[tables.boundary],
                tables.num_gates,
                tables.num_levels,
            )
        return scratch

    def _mark_fanout(
        self,
        tables: _EventTables,
        scratch: _EventScratch,
        changed_nets: np.ndarray,
    ) -> None:
        """Flag every gate reading a changed net (and its level).

        Level flags live in a plain python list (scalar reads in the
        sweep are ~3x cheaper than numpy element access), so small
        batches loop directly while large ones -- fanout lists repeat
        gates heavily during bursts -- are deduplicated to at most one
        flag write per level via bincount, keeping the mark cost
        O(batch) instead of O(batch) *python* iterations.
        """
        gids = tables.fanout.gather(changed_nets)
        if len(gids) == 0:
            return
        scratch.pending[gids] = True
        flags = scratch.level_flags
        if len(gids) <= 16:
            for level in tables.gate_level[gids].tolist():
                flags[level] = True
        else:
            hit = np.bincount(
                tables.gate_level[gids], minlength=tables.num_levels
            )
            for level in np.flatnonzero(hit).tolist():
                flags[level] = True

    def _eval_event(self, state: CircuitState, plan) -> None:
        """One event-driven pass (full when *plan* is None, else the
        cone-plan subset).

        Phases: (1) seed -- diff the boundary nets against the shadow
        snapshot and flag the fanout of every changed net; (2) sweep --
        walk flagged levels in rank order evaluating only pending gates
        (restricted to the plan's gates for a cone pass; non-plan gates
        stay pending for the next full pass), writing back and flagging
        fanout only where an output actually changed.  A provenance
        recorder forces a dense recording pass over the same plan --
        provenance is an explicitly paid-for diagnostic mode -- which
        settles every gate it covers, so the pending flags it clears
        keep the sparse invariant exact.
        """
        tables = self._event_tables()
        scratch = self._event_scratch(state, tables)
        codes = state.codes

        # Phase 1: seed from externally written boundary nets.
        boundary = tables.boundary
        current = codes[boundary]
        diff = current != scratch.shadow
        if diff.any():
            scratch.shadow[diff] = current[diff]
            self._mark_fanout(tables, scratch, boundary[diff])

        recorder = get_recorder()
        if recorder is not None:
            self._eval_levels_recording(
                codes, self._levels if plan is None else plan, recorder
            )
            if plan is None:
                scratch.pending[:] = False
                scratch.level_flags = [False] * tables.num_levels
            else:
                scratch.pending &= ~tables.plan_mask(plan)
            self._count_event_pass(plan, None, dense=True)
            return

        perf = get_perf()
        kind = "full" if plan is None else "interface"
        slots = None
        if perf is not None:
            slots = perf.group_slots(
                tables.levels if plan is None else plan,
                kind,
                counted=True,
                meta=self._event_perf_meta(tables, plan),
            )
            perf.ensure_bound(self)
            pass_start = perf_counter()

        plan_mask = None if plan is None else tables.plan_mask(plan)
        pending = scratch.pending
        flags = scratch.level_flags
        evals = 0
        groups_run = 0
        by_type: Optional[Dict[str, int]] = None
        if get_observer().enabled:
            by_type = {}
        for level_index, (lstart, lend, offsets, entries) in enumerate(
            tables.levels
        ):
            if not flags[level_index]:
                continue
            if plan is None:
                flags[level_index] = False
            window = pending[lstart:lend]
            rows_all = np.flatnonzero(window)
            if plan_mask is not None and len(rows_all):
                rows_all = rows_all[plan_mask[lstart:lend][rows_all]]
            if not len(rows_all):
                continue
            window[rows_all] = False
            cuts = np.searchsorted(rows_all, offsets).tolist()
            changed_lists = []
            for group_index, (lut, inputs, outputs, cell_type,
                              offset, size) in enumerate(entries):
                start, stop = cuts[group_index], cuts[group_index + 1]
                active = stop - start
                if not active:
                    continue
                if slots is not None:
                    group_start = perf_counter()
                if active == size:
                    rows = slice(None)  # whole group: skip the gathers
                else:
                    rows = rows_all[start:stop] - offset
                index = codes[inputs[0][rows]].astype(np.int32)
                for column in inputs[1:]:
                    index *= 6
                    index += codes[column[rows]]
                new_codes = lut[index]
                outs = outputs[rows]
                delta = codes[outs] != new_codes
                codes[outs] = new_codes
                if delta.any():
                    changed_lists.append(outs[delta])
                evals += active
                groups_run += 1
                if by_type is not None:
                    by_type[cell_type] = (
                        by_type.get(cell_type, 0) + active
                    )
                if slots is not None:
                    slot = slots[level_index][group_index]
                    slot[0] += perf_counter() - group_start
                    slot[1] += active
            if (
                evals >= tables.burst_limit
                and level_index + 1 < tables.num_levels
            ):
                # Activity burst: the sparse bookkeeping has stopped
                # paying for itself; finish the pass densely.
                if plan is None:
                    # Evaluate the remaining levels in full (no marking
                    # needed -- everything downstream runs) and settle
                    # all their pending flags at once.
                    evals, groups_run = self._finish_dense(
                        tables, scratch, codes, level_index + 1,
                        slots, by_type, evals, groups_run,
                    )
                    break
                if slots is None:
                    # Cone-plan burst: settle the *entire* circuit
                    # densely.  Finishing just the cone would need
                    # delta tracking to keep non-cone consumers of
                    # changed cone nets pending; a full settle clears
                    # every obligation at once, and the gates outside
                    # the cone compute from already-settled inputs, so
                    # the result is the same fixpoint the dense engine
                    # reaches by the end of the cycle.  (Not taken
                    # under perf attribution: a plan pass's counted
                    # slots do not map onto a full sweep, and perf runs
                    # are diagnostic anyway.)
                    evals, groups_run = self._finish_dense(
                        tables, scratch, codes, 0,
                        None, by_type, evals, groups_run,
                    )
                    plan = None  # count against the full circuit
                    break
            if changed_lists:
                self._mark_fanout(
                    tables,
                    scratch,
                    changed_lists[0]
                    if len(changed_lists) == 1
                    else np.concatenate(changed_lists),
                )
        scratch.last_evals = evals
        scratch.last_groups = groups_run
        if perf is not None:
            perf.note_pass(kind, perf_counter() - pass_start)
            if plan is None:
                perf.sample(codes)
        self._count_event_pass(plan, (by_type, evals), dense=False)

    def _finish_dense(
        self, tables, scratch, codes, start, slots, by_type,
        evals, groups_run,
    ):
        """Dense completion of a bursting full pass, from level *start*.

        Every gate of every remaining level is evaluated (the plain
        dense inner loop), which makes the pending flags for those
        levels vacuously satisfied: they are cleared wholesale.  Levels
        before *start* were already settled by the sparse sweep, so the
        whole pass ends with the same invariant a quiet pass leaves --
        no pending gate anywhere.
        """
        for level_index in range(start, tables.num_levels):
            _lstart, _lend, _offsets, entries = tables.levels[level_index]
            for group_index, (lut, inputs, outputs, cell_type,
                              _offset, size) in enumerate(entries):
                if slots is not None:
                    group_start = perf_counter()
                index = codes[inputs[0]].astype(np.int32)
                for column in inputs[1:]:
                    index *= 6
                    index += codes[column]
                codes[outputs] = lut[index]
                evals += size
                groups_run += 1
                if by_type is not None:
                    by_type[cell_type] = (
                        by_type.get(cell_type, 0) + size
                    )
                if slots is not None:
                    slot = slots[level_index][group_index]
                    slot[0] += perf_counter() - group_start
                    slot[1] += size
        scratch.pending[tables.levels[start][0]:] = False
        flags = scratch.level_flags
        for level_index in range(start, tables.num_levels):
            flags[level_index] = False
        return evals, groups_run

    def _event_perf_meta(self, tables: _EventTables, plan):
        """(cell type, gates-per-pass) meta aligned with the event
        sweep's (level, group) structure, for attribution reports.

        For a cone plan the gate count is the number of *plan* gates in
        each group, so the skipped-eval reconstruction compares actual
        evaluations against what a dense pass over the same plan would
        have cost.  Memoised: the perf recorder only reads it on first
        sight, but it is requested every pass.
        """
        key = None if plan is None else id(plan)
        meta = tables.meta_memo.get(key)
        if meta is not None:
            return meta
        if plan is None:
            meta = [
                [(cell_type, size)
                 for (_l, _i, _o, cell_type, _off, size) in entries]
                for (_s, _e, _offs, entries) in tables.levels
            ]
        else:
            mask = tables.plan_mask(plan)  # also pins the plan ref
            meta = [
                [
                    (
                        cell_type,
                        int(mask[lstart + off:lstart + off + size].sum()),
                    )
                    for (_l, _i, _o, cell_type, off, size) in entries
                ]
                for (lstart, _e, _offs, entries) in tables.levels
            ]
        tables.meta_memo[key] = meta
        return meta

    def _count_event_pass(self, plan, counted, dense: bool) -> None:
        """Gate-eval counters for an event pass.

        The dense engine's counters reconstruct ``gates x passes``; the
        event engine reports what actually ran plus an explicit
        ``sim.gate_evals_skipped`` so the quiescence win is visible in
        every metrics snapshot.
        """
        obs = get_observer()
        if not obs.enabled:
            return
        if plan is None:
            total_by_type, total = self._gates_by_type, self._total_gates
        else:
            total_by_type, total = self._totals_of_plan(plan)
        if dense:
            # Provenance fallback evaluated the whole plan.
            self._count_gate_evals(obs, total_by_type, total)
            return
        by_type, evals = counted
        metrics = obs.metrics
        metrics.counter("sim.eval_passes").inc()
        metrics.counter("sim.gate_evals").value += evals
        # A burst-escalated pass can re-evaluate a few gates the sparse
        # sweep already ran, pushing evals past the dense-pass total.
        metrics.counter("sim.gate_evals_skipped").value += max(
            0, total - evals
        )
        if by_type:
            for cell_type, count in by_type.items():
                metrics.counter(
                    f"sim.gate_evals.{cell_type}"
                ).value += count

    def _producer_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-net fan-in table and topological rank for provenance.

        ``table`` is ``(num_nets, max_arity)``: row *n* holds the input
        net ids of the gate driving net *n* (-1 padded; nets without a
        combinational producer -- DFF Qs, ports, constants -- stay all
        -1).  ``rank[n]`` is the driving gate's position in evaluation
        order, used to emit a pass's edges cause-before-effect.  Built
        lazily on the first provenance-recording pass.
        """
        cached = getattr(self, "_prod_tables", None)
        if cached is None:
            max_arity = 1
            for groups in self._levels:
                for group in groups:
                    max_arity = max(max_arity, len(group.inputs))
            table = np.full((self.num_nets, max_arity), -1, dtype=np.int64)
            rank = np.zeros(self.num_nets, dtype=np.int64)
            counter = 0
            for groups in self._levels:
                for group in groups:
                    for position, column in enumerate(group.inputs):
                        table[group.outputs, position] = column
                    rank[group.outputs] = np.arange(
                        counter, counter + len(group.outputs)
                    )
                    counter += len(group.outputs)
            cached = self._prod_tables = (table, rank)
        return cached

    def _eval_levels_recording(
        self, codes: np.ndarray, levels: List[List[_Group]], recorder
    ) -> None:
        """The evaluation loop with per-gate taint-provenance capture.

        The inner gate loop is identical to the plain path; provenance
        costs two whole-array operations per pass -- snapshot the codes
        before, diff the taint bits after -- plus fan-in resolution for
        just the newly-tainted nets.  Each net is written at most once
        per pass and its fan-ins come from earlier levels, so the
        post-pass codes are exactly what the producing gate read, and
        the diff attributes every new taint bit to the right edges.
        Edges are emitted in the gates' evaluation order: the backward
        slicer relies on a cause being recorded before its effect.
        """
        before = codes.copy()
        for groups in levels:
            for group in groups:
                index = codes[group.inputs[0]].astype(np.int32)
                for column in group.inputs[1:]:
                    index *= 6
                    index += codes[column]
                codes[group.outputs] = group.lut[index]
        fresh = np.nonzero(codes & ~before & 1)[0]
        if len(fresh) == 0:
            return
        table, rank = self._producer_tables()
        fresh = fresh[np.argsort(rank[fresh])]
        fan_in = table[fresh]  # (n, max_arity)
        # Row-major ravel keeps each gate's fan-in edges consecutive, so
        # the stream stays topologically ordered within the pass.
        src_flat = fan_in.ravel()
        dst_flat = np.repeat(fresh, fan_in.shape[1])
        mask = (src_flat >= 0) & (
            (codes[np.maximum(src_flat, 0)] & 1).astype(bool)
        )
        if mask.any():
            recorder.record_gate(dst_flat[mask], src_flat[mask])

    def _eval_levels_timed(
        self, codes: np.ndarray, levels: List[List[_Group]], perf, kind: str
    ) -> None:
        """The evaluation loop with per-(rank, cell-type) timing.

        Identical numpy work to the plain path plus two ``perf_counter``
        calls and one accumulator add per group (eval counts are
        reconstructed from pass counts at report time) -- the overhead
        is benched under 15% by
        ``benchmarks/bench_perf_attribution.py``.
        The pass total is timed separately so the dispatch overhead
        (loop bookkeeping between groups) is attributable too.
        """
        slots = perf.group_slots(levels, kind)
        pass_start = perf_counter()
        for groups, level_slots in zip(levels, slots):
            for group, slot in zip(groups, level_slots):
                group_start = perf_counter()
                index = codes[group.inputs[0]].astype(np.int32)
                for column in group.inputs[1:]:
                    index *= 6
                    index += codes[column]
                codes[group.outputs] = group.lut[index]
                slot[0] += perf_counter() - group_start
        perf.note_pass(kind, perf_counter() - pass_start)

    def _count_gate_evals(self, obs, by_type: Dict[str, int],
                          total: int) -> None:
        metrics = obs.metrics
        key = (id(metrics), id(by_type))
        increments = self._counter_cache.get(key)
        if increments is None:
            increments = [
                (metrics.counter("sim.eval_passes"), 1),
                (metrics.counter("sim.gate_evals"), total),
            ]
            increments.extend(
                (metrics.counter(f"sim.gate_evals.{cell_type}"), count)
                for cell_type, count in by_type.items()
            )
            self._counter_cache[key] = increments
        for counter, amount in increments:
            counter.value += amount

    def _totals_of_plan(
        self, plan: List[List[_Group]]
    ) -> Tuple[Dict[str, int], int]:
        key = id(plan)
        cached = self._plan_totals.get(key)
        if cached is None:
            by_type: Dict[str, int] = {}
            for groups in plan:
                for group in groups:
                    by_type[group.cell_type] = (
                        by_type.get(group.cell_type, 0) + len(group.outputs)
                    )
            cached = (by_type, sum(by_type.values()))
            self._plan_totals[key] = cached
        return cached

    def cone_plan(self, port_names: Sequence[str]) -> List[List[_Group]]:
        """Pre-group only the gates feeding the named output ports.

        Used by the SoC's first evaluation pass, which only needs the
        memory-interface signals; the full pass runs after read data is
        applied.
        """
        wanted = set()
        for name in port_names:
            wanted.update(self._outputs[name])
        producers: Dict[int, object] = {}
        for groups in self._levels:
            for group in groups:
                for position, output in enumerate(group.outputs):
                    producers[int(output)] = (group, position)
        needed = set()
        stack = list(wanted)
        while stack:
            net = stack.pop()
            if net in needed:
                continue
            needed.add(net)
            producer = producers.get(net)
            if producer is None:
                continue
            group, position = producer
            for column in group.inputs:
                stack.append(int(column[position]))
        plan: List[List[_Group]] = []
        for groups in self._levels:
            level_plan: List[_Group] = []
            for group in groups:
                keep = [
                    i
                    for i, output in enumerate(group.outputs)
                    if int(output) in needed
                ]
                if not keep:
                    continue
                if len(keep) == len(group.outputs):
                    level_plan.append(group)
                else:
                    level_plan.append(
                        _Group(
                            group.lut,
                            [column[keep] for column in group.inputs],
                            group.outputs[keep],
                            group.cell_type,
                        )
                    )
            if level_plan:
                plan.append(level_plan)
        return plan

    def eval_plan(
        self, state: CircuitState, plan: List[List[_Group]]
    ) -> None:
        """Evaluate a pre-grouped cone (see :meth:`cone_plan`)."""
        if self.engine == "event":
            self._eval_event(state, plan)
            return
        codes = state.codes
        if len(self._const_nets_arr):
            codes[self._const_nets_arr] = self._const_codes_arr
        recorder = get_recorder()
        perf = get_perf() if recorder is None else None
        if recorder is not None:
            self._eval_levels_recording(codes, plan, recorder)
        elif perf is not None:
            self._eval_levels_timed(codes, plan, perf, "interface")
        else:
            for groups in plan:
                for group in groups:
                    index = codes[group.inputs[0]].astype(np.int32)
                    for column in group.inputs[1:]:
                        index *= 6
                        index += codes[column]
                    codes[group.outputs] = group.lut[index]
        obs = get_observer()
        if obs.enabled:
            by_type, total = self._totals_of_plan(plan)
            self._count_gate_evals(obs, by_type, total)

    def clock_edge(self, state: CircuitState) -> None:
        """Latch every flip-flop: ``Q <= D``."""
        perf = get_perf()
        edge_start = perf_counter() if perf is not None else 0.0
        recorder = get_recorder()
        if recorder is not None:
            codes = state.codes
            newly = (codes[self._dff_d] & 1) & (codes[self._dff_q] & 1 ^ 1)
            picks = np.nonzero(newly)[0]
            if len(picks):
                recorder.record_latch(
                    self._dff_q[picks], self._dff_d[picks]
                )
        state.codes[self._dff_q] = state.codes[self._dff_d]
        if perf is not None:
            perf.note_clock_edge(perf_counter() - edge_start)

    def dff_nets(self) -> np.ndarray:
        """Net ids of every flip-flop Q (read-only view)."""
        return self._dff_q

    def taint_fraction(self, state: CircuitState) -> float:
        """Fraction of nets currently tainted (used by the *-logic study)."""
        return float(np.mean(state.codes & 1))

    def unknown_fraction(self, state: CircuitState) -> float:
        """Fraction of nets currently unknown."""
        return float(np.mean(state.codes >= 4))
