"""Behavioural peripheral models with full taint accounting.

Ports model the paper's ``P1``/``P3`` (inputs) and ``P2``/``P4`` (outputs):
an input port read yields a fresh unknown word whose taint is the port's
security label; an output port write is recorded so the policy checker can
flag tainted data leaving an untainted port (sufficient condition 5) or
untainted code touching a tainted port (condition 4).

All peripherals implement a tiny uniform interface used by the SoC's
address decoder:

* ``read_reg(address) -> TWord``
* ``write_reg(address, data, wen) -> None``  (*wen* covers maybe-writes
  coming from smeared store addresses)
* ``snapshot()`` / ``restore(state)`` / ``merge(state)`` / ``covers(state)``
  so the symbolic tracker can fork and merge execution paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.logic.ternary import ONE, ZERO
from repro.logic.words import TWord


@dataclass(frozen=True)
class PortEvent:
    """One observed port access (produced per cycle, consumed by checker)."""

    port: str
    kind: str  # "read" or "write"
    data: TWord
    address_taint: int  # taint mask of the address used to reach the port
    definite: bool  # False when reached only via a smeared address


class InputPort:
    """A memory-mapped GPIO input.

    Every read returns a fresh fully-unknown word; the taint is the port's
    label (1 for untrusted/secret ports under the active policy).
    """

    def __init__(self, name: str, address: int, tainted: bool = False):
        self.name = name
        self.address = address
        self.tainted = tainted
        self.events: List[PortEvent] = []
        #: When set, reads return ``driver()`` instead of X (concrete runs).
        self.driver: Optional[Callable[[], int]] = None

    def read_reg(self, address: int, address_taint: int = 0, definite: bool = True) -> TWord:
        taint = 0xFFFF if self.tainted else 0
        if self.driver is not None and definite:
            word = TWord.const(self.driver() & 0xFFFF, tmask=taint)
        else:
            word = TWord.unknown(16, tmask=taint)
        self.events.append(
            PortEvent(self.name, "read", word, address_taint, definite)
        )
        return word

    def write_reg(
        self,
        address: int,
        data: TWord,
        wen: Tuple[int, int],
        address_taint: int = 0,
    ) -> None:
        # Writing an input port has no architectural effect; still record it
        # so the checker can flag suspicious accesses.
        self.events.append(
            PortEvent(
                self.name,
                "write",
                data,
                address_taint,
                wen == (ONE, 0) and address_taint == 0,
            )
        )

    # Ports are stateless between cycles (events drain per cycle).
    def snapshot(self):
        return None

    def restore(self, state) -> None:
        pass

    def merge(self, state) -> None:
        pass

    def covers(self, state) -> bool:
        return True


class OutputPort:
    """A memory-mapped GPIO output; remembers its last driven value."""

    def __init__(self, name: str, address: int, tainted: bool = False):
        self.name = name
        self.address = address
        self.tainted = tainted
        self.value = TWord.const(0)
        self.events: List[PortEvent] = []

    def read_reg(self, address: int, address_taint: int = 0, definite: bool = True) -> TWord:
        return self.value.or_taint(
            0xFFFF if address_taint else 0
        )

    def write_reg(
        self,
        address: int,
        data: TWord,
        wen: Tuple[int, int],
        address_taint: int = 0,
    ) -> None:
        wen_value, wen_taint = wen
        if wen_value == ZERO:
            return
        smear = 0xFFFF if (wen_taint or address_taint) else 0
        if wen_value == ONE:
            # The write happens on this path.
            self.value = data.or_taint(smear)
            definite = smear == 0
        else:
            # Maybe-written (unknown strobe or smeared address).
            self.value = self.value.merge(data).or_taint(smear)
            definite = False
        self.events.append(
            PortEvent(self.name, "write", self.value, address_taint, definite)
        )

    def snapshot(self) -> TWord:
        return self.value

    def restore(self, state: TWord) -> None:
        self.value = state

    def merge(self, state: TWord) -> None:
        self.value = self.value.merge(state)

    def covers(self, state: TWord) -> bool:
        return self.value.covers(state)


class AuxTimer:
    """A small auxiliary up-counting timer (``TACTL`` / ``TAR``).

    Section 5.2 notes that a tainted task that itself needs the watchdog can
    often be given "a different timer"; this is that timer.  ``TACTL`` bit 0
    enables counting; reading ``TAR`` returns the current count.
    """

    def __init__(self, tactl_address: int, tar_address: int):
        self.tactl_address = tactl_address
        self.tar_address = tar_address
        self.control = TWord.const(0)
        self.counter = 0
        self.counter_taint = 0
        self.counter_x = 0

    def read_reg(self, address: int, address_taint: int = 0, definite: bool = True) -> TWord:
        if address == self.tactl_address:
            return self.control
        return TWord(
            self.counter & 0xFFFF,
            0xFFFF if self.counter_x else 0,
            0xFFFF if self.counter_taint else 0,
            16,
        )

    def write_reg(
        self,
        address: int,
        data: TWord,
        wen: Tuple[int, int],
        address_taint: int = 0,
    ) -> None:
        wen_value, wen_taint = wen
        if wen_value == ZERO and not wen_taint:
            return
        definite = wen == (ONE, 0) and address_taint == 0
        if address == self.tactl_address:
            if definite:
                self.control = data
            else:
                self.control = self.control.merge(data).or_taint(0xFFFF)
        elif address == self.tar_address:
            if definite and data.is_concrete:
                self.counter = data.value
                self.counter_taint = 1 if data.tmask else 0
                self.counter_x = 0
            else:
                self.counter_taint = 1
                self.counter_x = 1

    def tick(self) -> None:
        enabled, enabled_taint = self.control.bit(0)
        if enabled == ONE:
            self.counter = (self.counter + 1) & 0xFFFF
        if enabled_taint:
            self.counter_taint = 1
        if self.control.xmask & 1:
            self.counter_x = 1

    def fast_forward(self, cycles: int) -> None:
        enabled, enabled_taint = self.control.bit(0)
        if enabled == ONE:
            self.counter = (self.counter + cycles) & 0xFFFF
        if enabled_taint:
            self.counter_taint = 1
        if self.control.xmask & 1:
            self.counter_x = 1

    def snapshot(self):
        return (self.control, self.counter, self.counter_taint, self.counter_x)

    def restore(self, state) -> None:
        (
            self.control,
            self.counter,
            self.counter_taint,
            self.counter_x,
        ) = state

    def merge(self, state) -> None:
        control, counter, counter_taint, counter_x = state
        self.control = self.control.merge(control)
        if counter != self.counter:
            self.counter_x = 1
        self.counter_taint |= counter_taint
        self.counter_x |= counter_x

    def covers(self, state) -> bool:
        control, counter, counter_taint, counter_x = state
        if not self.control.covers(control):
            return False
        if counter_taint and not self.counter_taint:
            return False
        if counter_x and not self.counter_x:
            return False
        return self.counter == counter or bool(self.counter_x)
