"""Gate-level GLIFT simulation and SoC behavioural models.

* :mod:`repro.sim.compiled`    -- the netlist is compiled once into
  levelised, cell-type-grouped lookup-table kernels; per-cycle evaluation is
  a handful of vectorised numpy gathers.  This plays the role of the paper's
  "custom gate-level simulator that implements application-specific
  gate-level information flow tracking".
* :mod:`repro.sim.memory`      -- word-addressed memory with per-bit ternary
  values and taints, including the conservative *smearing* of stores/loads
  through unknown or tainted addresses.
* :mod:`repro.sim.peripherals` -- GPIO input/output ports and the auxiliary
  timer.
* :mod:`repro.sim.watchdog`    -- the watchdog timer whose untainted reset is
  the paper's control-flow recovery mechanism.
* :mod:`repro.sim.soc`         -- glues CPU netlist + memories + peripherals
  into a steppable system-on-chip with full taint accounting and per-cycle
  event records.
"""

from repro.sim.compiled import CircuitState, CompiledCircuit, code_of, decode_code
from repro.sim.memory import TaintedMemory
from repro.sim.peripherals import InputPort, OutputPort, AuxTimer
from repro.sim.watchdog import Watchdog, WDT_INTERVALS
from repro.sim.soc import SoC, SoCState, CycleEvents

__all__ = [
    "CompiledCircuit",
    "CircuitState",
    "code_of",
    "decode_code",
    "TaintedMemory",
    "InputPort",
    "OutputPort",
    "AuxTimer",
    "Watchdog",
    "WDT_INTERVALS",
    "SoC",
    "SoCState",
    "CycleEvents",
]
