"""The watchdog timer -- the paper's untainted control-flow recovery anchor.

Section 5.2: "we propose using the watchdog timer that is common to many
microcontrollers to reset the entire processor after a deterministic-length
period of tainted execution.  We use our symbolic simulation-based analysis
to guarantee that the watchdog remains untainted."

Model (MSP430-flavoured):

* ``WDTCTL`` is written with a password in the high byte (``0x5A``); a
  write with a wrong concrete password triggers an immediate power-on
  reset, as on real hardware.
* Low byte: bits ``1:0`` select the interval (``00``: 32768, ``01``: 8192,
  ``10``: 512, ``11``: 64 cycles -- the four intervals the paper's slicing
  optimisation chooses from), bit 7 is ``WDTHOLD`` (1 stops the timer).
* Any valid write reloads the down-counter with the selected interval.
* When the counter reaches zero the watchdog drives a one-cycle power-on
  reset (POR) and reloads.  The POR's *taint* is the taint of ``WDTCTL``:
  per Figure 7's flip-flop rule, a tainted reset clears values but cannot
  clear taints, so only an untainted watchdog de-taints the pipeline.

If ``WDTCTL`` is ever written with unknown or tainted contents (including
via a smeared store address), the watchdog is marked *corrupted*: its POR
is tainted from then on and the policy checker reports the paper's
"watchdog tainted" violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.logic.ternary import ONE, ZERO
from repro.logic.words import TWord
from repro.memmap import WDT_PASSWORD

#: Interval select encodings, cycles.  Index = WDTCTL[1:0].
WDT_INTERVALS = (32768, 8192, 512, 64)

HOLD_BIT = 7


@dataclass
class WatchdogState:
    control: TWord
    counter: int
    corrupted: bool
    pending_reset: bool
    pending_reset_taint: int


class Watchdog:
    """Down-counting watchdog with taint-aware reset generation."""

    def __init__(self, address: int):
        self.address = address
        # Out of power-on reset the watchdog is held (unlike the MSP430's
        # default-active watchdog) so unprotected programs run untouched;
        # system code arms it explicitly, as in the paper's Figure 8.
        self.control = TWord.const(1 << HOLD_BIT)
        self.counter = WDT_INTERVALS[0]
        self.corrupted = False
        self.pending_reset = False
        self.pending_reset_taint = 0

    # ------------------------------------------------------------------
    # Register interface
    # ------------------------------------------------------------------
    def read_reg(self, address: int, address_taint: int = 0, definite: bool = True) -> TWord:
        return self.control.or_taint(0xFFFF if address_taint else 0)

    def write_reg(
        self,
        address: int,
        data: TWord,
        wen: Tuple[int, int],
        address_taint: int = 0,
    ) -> None:
        wen_value, wen_taint = wen
        if wen_value == ZERO and not wen_taint:
            return
        definite = wen == (ONE, 0) and address_taint == 0
        if not definite or not data.is_concrete or data.tmask:
            # An adversary-influenced or unknown write: the watchdog can no
            # longer be trusted to generate an untainted reset.
            self.corrupted = True
            self.control = self.control.merge(data).or_taint(0xFFFF)
            return
        if (data.value >> 8) != WDT_PASSWORD:
            # Wrong password: immediate reset (untainted -- it is a known,
            # deterministic consequence of this instruction).
            self.pending_reset = True
            return
        self.control = TWord.const(data.value & 0x00FF)
        self.counter = WDT_INTERVALS[data.value & 0x3]

    def power_on_reset(self, taint: int = 0) -> None:
        """Apply a POR to the watchdog itself: back to held.

        An *untainted* reset restores trust (clears ``corrupted``); a
        tainted one cannot -- Figure 7's rule applied to the watchdog's own
        state.
        """
        self.counter = WDT_INTERVALS[0]
        self.pending_reset = False
        self.pending_reset_taint = 0
        if taint == 0:
            self.control = TWord.const(1 << HOLD_BIT)
            self.corrupted = False
        else:
            self.control = TWord.const(1 << HOLD_BIT, tmask=0xFFFF)

    # ------------------------------------------------------------------
    # Cycle behaviour
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        hold, _ = self.control.bit(HOLD_BIT)
        return hold == ZERO and not self.corrupted

    def tick(self) -> Tuple[int, int]:
        """Advance one cycle; returns the POR value/taint for *next* cycle."""
        if self.pending_reset:
            self.pending_reset = False
            taint = self.pending_reset_taint
            self.pending_reset_taint = 0
            return ONE, taint
        if self.corrupted:
            # Expiry time is adversary-influenced; any reset it produces is
            # tainted, and so (conservatively) is the absence of one.
            return ZERO, 1
        if not self.running:
            return ZERO, 0
        self.counter -= 1
        if self.counter <= 0:
            self.counter = WDT_INTERVALS[self.control.bits & 0x3]
            return ONE, 1 if self.control.tmask else 0
        return ZERO, 0

    def cycles_until_expiry(self) -> Optional[int]:
        """Deterministic cycles left before the next POR (None if idle).

        Used by the tracker to fast-forward padding idle loops.
        """
        if self.pending_reset:
            return 0
        if not self.running:
            return None
        return self.counter

    def fast_forward(self, cycles: int) -> Tuple[int, int]:
        """Advance *cycles* ticks at once; returns the final tick's POR."""
        por = (ZERO, 0)
        for _ in range(cycles):
            por = self.tick()
        return por

    # ------------------------------------------------------------------
    # Tracker state management
    # ------------------------------------------------------------------
    def snapshot(self) -> WatchdogState:
        return WatchdogState(
            self.control,
            self.counter,
            self.corrupted,
            self.pending_reset,
            self.pending_reset_taint,
        )

    def restore(self, state: WatchdogState) -> None:
        self.control = state.control
        self.counter = state.counter
        self.corrupted = state.corrupted
        self.pending_reset = state.pending_reset
        self.pending_reset_taint = state.pending_reset_taint

    def merge(self, state: WatchdogState) -> None:
        """Most-conservative merge (the deterministic-timer abstraction).

        Execution paths forked at a branch take different numbers of
        cycles, so their *remaining* counters differ at the merge point
        even though the expiry is deterministic in absolute time (armed at
        T0, fires at T0+I on every path).  Merging keeps the **latest**
        remaining time: the merged exploration runs at least as long as
        any merged-in path before the POR, and the post-reset states all
        converge at the tracker's POR merge key.  The counter stays
        untainted -- which is precisely the property the paper's
        "deterministic-length period of tainted execution" provides.
        """
        self.control = self.control.merge(state.control)
        self.corrupted = self.corrupted or state.corrupted
        self.pending_reset = self.pending_reset or state.pending_reset
        self.pending_reset_taint |= state.pending_reset_taint
        self.counter = max(self.counter, state.counter)

    def covers(self, state: WatchdogState) -> bool:
        if not self.control.covers(state.control):
            return False
        if state.corrupted and not self.corrupted:
            return False
        if self.corrupted:
            return True
        if state.pending_reset and not self.pending_reset:
            return False
        return self.counter >= state.counter
