"""System-on-chip model: CPU netlist + memories + peripherals.

The :class:`SoC` steps a compiled CPU netlist one clock cycle at a time,
servicing its Harvard memory interface against behavioural models with full
taint accounting, and returning a :class:`CycleEvents` record that the
policy checker consumes.

CPU port contract (any netlist with these ports can be driven):

=================  ===  =====================================================
``rst``            in   power-on reset (watchdog POR ORed in by the SoC)
``pmem_rdata``     in   instruction word at ``pmem_addr``
``dmem_rdata``     in   data word at ``dmem_addr``
``pmem_addr``      out  program-memory word address (register-sourced)
``dmem_addr``      out  data-memory word address (register-sourced)
``dmem_wdata``     out  store data (register-sourced)
``dmem_wen``       out  store strobe
``dmem_ren``       out  load strobe
``dbg_pc``         out  the PC register (wired straight to its DFF Qs, so
                        writing this port *forces* the PC -- used when the
                        tracker concretises an unknown PC)
``dbg_pc_next``    out  the PC register's D inputs (next-cycle PC)
``dbg_ir``         out  instruction register
``dbg_sr``         out  status register
``dbg_phase``      out  one-hot FSM phase
=================  ===  =====================================================

The memory-facing outputs must not combinationally depend on the same
cycle's ``*_rdata`` inputs (the LP430 datapath guarantees this by sourcing
them from registers), which lets the SoC evaluate each cycle with exactly
two combinational passes: one to observe the addresses/strobes, one after
read data is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import memmap
from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import TWord
from repro.obs import get_observer
from repro.obs.provenance import get_recorder
from repro.obs.timeline import get_timeline
from repro.resilience.faults import get_injector
from repro.sim.compiled import CircuitState, CompiledCircuit
from repro.sim.memory import TaintedMemory
from repro.sim.peripherals import AuxTimer, InputPort, OutputPort, PortEvent
from repro.sim.watchdog import Watchdog


class Rom:
    """Program memory: concrete words, optionally tainted per word."""

    def __init__(self, size: int = memmap.PMEM_SIZE):
        self.size = size
        self.words = np.zeros(size, dtype=np.uint32)
        self.tmask = np.zeros(size, dtype=np.uint32)
        self._indices = np.arange(size, dtype=np.uint32)
        # Smeared-fetch results keyed by (known address bits, xmask).
        # The ROM only changes via load(), which clears this, so the
        # merge over each match footprint can be computed once per
        # address pattern instead of every fetch.
        self._read_memo: Dict[Tuple[int, int], Tuple[int, int, int]] = {}

    def load(self, base: int, words: Sequence[int], tmask: int = 0) -> None:
        for offset, word in enumerate(words):
            self.words[base + offset] = word & 0xFFFF
            self.tmask[base + offset] = tmask
        self._read_memo.clear()

    def read(self, address: TWord) -> TWord:
        """Instruction fetch: value follows the unknown bits of the
        address; a tainted (attacker-steerable) address fully taints the
        fetched word even when concrete here."""
        taint = 0xFFFF if address.tmask else 0
        if address.xmask == 0:
            index = address.bits % self.size
            return TWord(
                int(self.words[index]), 0, int(self.tmask[index]) | taint, 16
            )
        known = 0xFFFF & ~address.xmask
        key = (address.bits & known, address.xmask)
        memo = self._read_memo.get(key)
        if memo is None:
            match = (self._indices & known) == (address.bits & known)
            if not match.any():
                memo = (0, 0xFFFF, 0)
            else:
                and_bits = int(np.bitwise_and.reduce(self.words[match]))
                or_bits = int(np.bitwise_or.reduce(self.words[match]))
                rom_taint = int(np.bitwise_or.reduce(self.tmask[match]))
                known1 = and_bits
                known0 = ~or_bits & 0xFFFF
                xmask = 0xFFFF & ~(known0 | known1)
                memo = (known1, xmask, rom_taint)
            if len(self._read_memo) >= 4096:
                self._read_memo.clear()
            self._read_memo[key] = memo
        known1, xmask, rom_taint = memo
        return TWord(known1, xmask, rom_taint | taint, 16)


@dataclass
class MemWrite:
    """One (possible) data-memory store observed this cycle."""

    address: TWord
    data: TWord
    wen: Tuple[int, int]
    ram_match: np.ndarray  # boolean mask over RAM words possibly written


@dataclass
class MemRead:
    """One (possible) data-memory load observed this cycle."""

    address: TWord
    data: TWord
    ren: Tuple[int, int]


@dataclass
class CycleEvents:
    """Everything observable about one simulated cycle."""

    cycle: int
    pc: TWord
    instruction: TWord
    reset: Tuple[int, int]
    read: Optional[MemRead] = None
    write: Optional[MemWrite] = None
    port_events: List[PortEvent] = field(default_factory=list)
    por_next: Tuple[int, int] = (ZERO, 0)


class AddressSpace:
    """Routes data-space accesses to RAM, GPIO ports and timers.

    Shared by the gate-level SoC and the architectural simulator so both
    observe identical memory/peripheral semantics.
    """

    def __init__(
        self,
        tainted_input_ports: Sequence[str] = ("P1IN",),
        tainted_output_ports: Sequence[str] = ("P2OUT",),
    ):
        self.ram = TaintedMemory(memmap.DMEM_SIZE)
        self.watchdog = Watchdog(memmap.WDTCTL)
        self.timer = AuxTimer(memmap.TACTL, memmap.TAR)
        self.ports: Dict[int, object] = {}
        self.input_ports: List[InputPort] = []
        self.output_ports: List[OutputPort] = []
        for name, address in (
            ("P1IN", memmap.P1IN),
            ("P3IN", memmap.P3IN),
            ("P5IN", memmap.P5IN),
        ):
            port = InputPort(name, address, tainted=name in tainted_input_ports)
            self.ports[address] = port
            self.input_ports.append(port)
        for name, address in (
            ("P2OUT", memmap.P2OUT),
            ("P4OUT", memmap.P4OUT),
            ("P6OUT", memmap.P6OUT),
        ):
            port = OutputPort(
                name, address, tainted=name in tainted_output_ports
            )
            self.ports[address] = port
            self.output_ports.append(port)
        self.ports[memmap.WDTCTL] = self.watchdog
        self.ports[memmap.TACTL] = self.timer
        self.ports[memmap.TAR] = self.timer

    # ------------------------------------------------------------------
    def _matching_peripherals(self, address: TWord) -> List[Tuple[int, object]]:
        """Peripherals reachable through the address's *unknown* bits."""
        known = 0xFFFF & ~address.xmask
        if known == 0:
            return list(self.ports.items())
        return [
            (reg_address, peripheral)
            for reg_address, peripheral in self.ports.items()
            if (reg_address & known) == (address.bits & known)
        ]

    def read(self, address: TWord, ren: Tuple[int, int] = (ONE, 0)) -> TWord:
        """Load from the data space (RAM merged with matching peripherals).

        A concrete address routes to exactly one device for the *value*
        (even when tainted -- the attacker-steerability is carried by the
        taint smear, not by merging in other devices' values).
        """
        address_taint = 0xFFFF if address.tmask else 0
        if address.xmask == 0:
            definite = ren == (ONE, 0) and address_taint == 0
            index = address.bits
            if index in self.ports:
                word = self.ports[index].read_reg(
                    index, address_taint, definite
                )
            else:
                word = self.ram.read(address)
            return word.or_taint(address_taint)
        # Smeared load: merge RAM view with any reachable peripheral.
        result = self.ram.read(address)
        for reg_address, peripheral in self._matching_peripherals(address):
            word = peripheral.read_reg(reg_address, address_taint, False)
            result = result.merge(word)
        return result

    def write(
        self, address: TWord, data: TWord, wen: Tuple[int, int] = (ONE, 0)
    ) -> np.ndarray:
        """Store into the data space; returns the RAM possibly-written mask.

        Value effects follow the concrete/unknown address bits; taint
        effects (the "shadow worlds" an attacker can steer) reach every
        device matching the address's unknown *or tainted* bits.
        """
        wen_value, wen_taint = wen
        if wen_value == ZERO:
            # No store on this path (see TaintedMemory.write).
            return np.zeros(self.ram.size, dtype=bool)
        address_taint = 0xFFFF if address.tmask else 0

        if address.xmask == 0:
            index = address.bits
            if index in self.ports:
                self.ports[index].write_reg(index, data, wen, address_taint)
                return np.zeros(self.ram.size, dtype=bool)
            return self.ram.write(address, data, wen)

        # Unknown address: maybe-effects on every matching device.
        maybe_wen = (UNKNOWN, wen_taint | (1 if address.tmask else 0))
        for reg_address, peripheral in self._matching_peripherals(address):
            peripheral.write_reg(reg_address, data, maybe_wen, address_taint)
        return self.ram.write(address, data, wen)

    def drain_port_events(self) -> List[PortEvent]:
        events: List[PortEvent] = []
        for port in self.input_ports + self.output_ports:
            events.extend(port.events)
            port.events.clear()
        return events

    # ------------------------------------------------------------------
    # Tracker state management
    # ------------------------------------------------------------------
    def snapshot(self):
        return (
            self.ram.bits.copy(),
            self.ram.xmask.copy(),
            self.ram.tmask.copy(),
            self.watchdog.snapshot(),
            self.timer.snapshot(),
            tuple(port.snapshot() for port in self.output_ports),
        )

    def restore(self, state) -> None:
        bits, xmask, tmask, wdt, timer, outputs = state
        self.ram.bits[:] = bits
        self.ram.xmask[:] = xmask
        self.ram.tmask[:] = tmask
        self.watchdog.restore(wdt)
        self.timer.restore(timer)
        for port, value in zip(self.output_ports, outputs):
            port.restore(value)

    def merge(self, state) -> None:
        bits, xmask, tmask, wdt, timer, outputs = state
        differ = (self.ram.bits ^ bits) | self.ram.xmask | xmask
        self.ram.bits &= ~differ
        self.ram.xmask = differ
        self.ram.tmask |= tmask
        self.watchdog.merge(wdt)
        self.timer.merge(timer)
        for port, value in zip(self.output_ports, outputs):
            port.merge(value)

    def covers(self, state) -> bool:
        bits, xmask, tmask, wdt, timer, outputs = state
        if (tmask & ~self.ram.tmask).any():
            return False
        differ = ((self.ram.bits ^ bits) | xmask) & ~self.ram.xmask
        if differ.any():
            return False
        if not self.watchdog.covers(wdt):
            return False
        if not self.timer.covers(timer):
            return False
        return all(
            port.covers(value)
            for port, value in zip(self.output_ports, outputs)
        )


@dataclass
class SoCState:
    """A forkable snapshot of the full system state."""

    dff_codes: np.ndarray
    space_state: tuple
    pending_por: Tuple[int, int]
    cycle: int


class SoC:
    """A steppable LP430 system with gate-level GLIFT tracking."""

    def __init__(
        self,
        circuit: CompiledCircuit,
        rom: Optional[Rom] = None,
        space: Optional[AddressSpace] = None,
    ):
        self.circuit = circuit
        self.rom = rom if rom is not None else Rom()
        self.space = space if space is not None else AddressSpace()
        self.state: CircuitState = circuit.new_state()
        self.pending_por: Tuple[int, int] = (ZERO, 0)
        self.cycle = 0
        # Pass 1 only needs the (register-sourced) memory interface.
        self._interface_plan = circuit.cone_plan(
            ["pmem_addr", "dmem_addr", "dmem_ren"]
        )

    # ------------------------------------------------------------------
    # Observation helpers
    # ------------------------------------------------------------------
    def read_debug(self, name: str) -> TWord:
        return self.circuit.read_output(self.state, name)

    def pc(self) -> TWord:
        return self.read_debug("dbg_pc")

    def pc_next(self) -> TWord:
        """The PC register's D inputs (valid after the cycle's evaluation)."""
        return self.read_debug("dbg_pc_next")

    def instruction_register(self) -> TWord:
        return self.read_debug("dbg_ir")

    def status_register(self) -> TWord:
        return self.read_debug("dbg_sr")

    def force_pc(self, value: int, tmask: int = 0) -> None:
        """Concretise the PC (tracker fork support; keeps supplied taint)."""
        nets = self.circuit.output_nets("dbg_pc")
        self.circuit.set_nets(self.state, nets, TWord(value, 0, tmask, 16))

    # ------------------------------------------------------------------
    # Reset / cycle stepping
    # ------------------------------------------------------------------
    def reset(self, cycles: int = 2) -> None:
        """Propagate an untainted power-on reset (Algorithm 1 line 5)."""
        for _ in range(cycles):
            self.step(external_reset=(ONE, 0))

    def step(
        self, external_reset: Tuple[int, int] = (ZERO, 0)
    ) -> CycleEvents:
        """Advance one clock cycle; returns everything observable about it."""
        injector = get_injector()
        if injector is not None:
            # Fault-injection hook (gate-eval exceptions, clock skew);
            # a single None check when no injector is installed.
            injector.on_step(self)
        circuit = self.circuit
        state = self.state
        recorder = get_recorder()
        if recorder is not None:
            recorder.ensure_bound(circuit)
            recorder.begin_cycle(self.cycle)

        por_value, por_taint = self.pending_por
        ext_value, ext_taint = external_reset
        if ext_value == ONE or por_value == ONE:
            reset_value = ONE
        elif ext_value == UNKNOWN or por_value == UNKNOWN:
            reset_value = UNKNOWN
        else:
            reset_value = ZERO
        reset = (reset_value, por_taint | ext_taint)
        if reset[0] == ONE:
            self.space.watchdog.power_on_reset(reset[1])
        circuit.set_input(state, "rst", TWord(
            1 if reset[0] == ONE else 0,
            1 if reset[0] == UNKNOWN else 0,
            reset[1],
            1,
        ))

        # Pass 1: addresses and strobes become valid (register-sourced).
        circuit.eval_plan(state, self._interface_plan)
        pmem_addr = circuit.read_output(state, "pmem_addr")
        instruction = self.rom.read(pmem_addr)
        circuit.set_input(state, "pmem_rdata", instruction)
        if recorder is not None and instruction.tmask:
            # Tainted instruction bits were introduced at the fetch
            # interface: label them with their program-memory origin.
            label = (
                f"rom[0x{pmem_addr.bits:04x}]"
                if pmem_addr.xmask == 0
                else "rom"
            )
            recorder.record_input(
                circuit.input_nets("pmem_rdata"), instruction.tmask, label
            )

        # While reset is asserted the FSM outputs are not yet meaningful
        # (they are X out of power-on); a real POR gates the memory
        # interface, so the SoC suppresses data-memory side effects.
        in_reset = reset[0] == ONE

        dmem_addr = circuit.read_output(state, "dmem_addr")
        ren_word = circuit.read_output(state, "dmem_ren")
        ren = ren_word.bit(0)
        read_event: Optional[MemRead] = None
        if not in_reset and ren[0] != ZERO:
            data = self.space.read(dmem_addr, ren)
            read_event = MemRead(dmem_addr, data, ren)
            circuit.set_input(state, "dmem_rdata", data)
            if recorder is not None and data.tmask:
                self._record_read_provenance(recorder, dmem_addr, data)
        else:
            circuit.set_input(state, "dmem_rdata", TWord.unknown(16))

        # Pass 2: read data propagates to every register's D input.
        circuit.eval_combinational(state)

        wen_word = circuit.read_output(state, "dmem_wen")
        wen = wen_word.bit(0)
        write_event: Optional[MemWrite] = None
        if not in_reset and wen[0] != ZERO:
            wdata = circuit.read_output(state, "dmem_wdata")
            waddr = circuit.read_output(state, "dmem_addr")
            ram_match = self.space.write(waddr, wdata, wen)
            write_event = MemWrite(waddr, wdata, wen, ram_match)
            if recorder is not None and (wdata.tmask or waddr.tmask):
                self._record_write_provenance(
                    recorder, waddr, wdata, ram_match
                )

        self.space.timer.tick()
        self.pending_por = self.space.watchdog.tick()

        events = CycleEvents(
            cycle=self.cycle,
            pc=pmem_addr,
            instruction=instruction,
            reset=reset,
            read=read_event,
            write=write_event,
            port_events=self.space.drain_port_events(),
            por_next=self.pending_por,
        )

        circuit.clock_edge(state)
        self.cycle += 1
        timeline = get_timeline()
        if timeline is not None:
            # Post-edge codes: combinational nets still hold this
            # cycle's settled values (what the checker saw), DFF Q nets
            # hold next-cycle state -- one frame per step.
            timeline.ensure_bound(circuit)
            timeline.on_step(events.cycle, state.codes)
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("sim.cycles").inc()
        return events

    def _record_read_provenance(
        self, recorder, address: TWord, data: TWord
    ) -> None:
        """Explain tainted load data arriving at ``dmem_rdata``.

        Concrete loads link to their device (tainted input port by name,
        RAM word by pseudo-net so store->load flows stay connected); an
        attacker-steerable address additionally links the data bits to
        the tainted address bits; smeared loads fall back to a
        ``dmem[smeared]`` label.
        """
        circuit = self.circuit
        rdata_nets = circuit.input_nets("dmem_rdata")
        if address.tmask:
            addr_nets = circuit.output_nets("dmem_addr")
            srcs = [
                net
                for bit, net in enumerate(addr_nets)
                if (address.tmask >> bit) & 1
            ]
            dsts = [
                net
                for bit, net in enumerate(rdata_nets)
                if (data.tmask >> bit) & 1
            ]
            recorder.record_cross(dsts, srcs)
        if address.xmask == 0:
            index = address.bits
            port = self.space.ports.get(index)
            if port is None:
                recorder.record_ram_read(rdata_nets, data.tmask, index)
            elif getattr(port, "tainted", False) or not address.tmask:
                recorder.record_input(
                    rdata_nets, data.tmask, getattr(port, "name", "port")
                )
        else:
            recorder.record_input(rdata_nets, data.tmask, "dmem[smeared]")

    def _record_write_provenance(
        self, recorder, address: TWord, data: TWord, ram_match: np.ndarray
    ) -> None:
        """Link possibly-written RAM words to the tainted store nets."""
        circuit = self.circuit
        srcs: List[int] = []
        for bit, net in enumerate(circuit.output_nets("dmem_wdata")):
            if (data.tmask >> bit) & 1:
                srcs.append(net)
        for bit, net in enumerate(circuit.output_nets("dmem_addr")):
            if (address.tmask >> bit) & 1:
                srcs.append(net)
        recorder.record_ram_write(np.nonzero(ram_match)[0], srcs)

    # ------------------------------------------------------------------
    # Tracker state management
    # ------------------------------------------------------------------
    def snapshot(self) -> SoCState:
        snapshot = SoCState(
            dff_codes=self.circuit.dff_state(self.state),
            space_state=self.space.snapshot(),
            pending_por=self.pending_por,
            cycle=self.cycle,
        )
        injector = get_injector()
        if injector is not None:
            # Snapshot-corruption fault hook (models bit-rot in stored
            # fork states as conservative loss of knowledge).
            snapshot = injector.on_snapshot(snapshot)
        return snapshot

    def restore(self, snapshot: SoCState) -> None:
        self.circuit.set_dff_state(self.state, snapshot.dff_codes.copy())
        self.space.restore(snapshot.space_state)
        self.pending_por = snapshot.pending_por
        self.cycle = snapshot.cycle
