"""Word-addressed memory with per-bit ternary values and taints.

This is the behavioural memory model the gate-level (and architectural)
simulators attach to the processor's memory interface.  Its defining feature
is the conservative handling of *unknown or tainted addresses*:

* a **store** through an address with unknown/tainted bits may land on any
  word matching the address's known untainted bits, so every such word is
  *merged* with the stored data (differing bits become ``X``) and picks up
  the data's taint plus the address's taint;
* a **load** through such an address returns the merge of every matching
  word, tainted if any matching word (or the address itself) is tainted.

This is exactly the mechanism behind the paper's Figure 9: an unmasked
store whose address derives from a tainted input "ends up tainting the
whole data memory space", while inserting ``AND #0x03FF`` / ``BIS #0x0400``
mask instructions confines the match region to the tainted partition.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import TWord

FULL16 = 0xFFFF


class TaintedMemory:
    """A bank of *size* words, each ``width`` bits of ternary+taint state."""

    def __init__(self, size: int, width: int = 16):
        self.size = size
        self.width = width
        self._full = (1 << width) - 1
        self.bits = np.zeros(size, dtype=np.uint32)
        self.xmask = np.full(size, self._full, dtype=np.uint32)
        self.tmask = np.zeros(size, dtype=np.uint32)
        self._indices = np.arange(size, dtype=np.uint32)

    # ------------------------------------------------------------------
    # Direct (concrete-index) access
    # ------------------------------------------------------------------
    def get(self, index: int) -> TWord:
        return TWord(
            int(self.bits[index]),
            int(self.xmask[index]),
            int(self.tmask[index]),
            self.width,
        )

    def set(self, index: int, word: TWord) -> None:
        self.bits[index] = word.bits
        self.xmask[index] = word.xmask
        self.tmask[index] = word.tmask

    def load(self, base: int, values: Sequence[int], tmask: int = 0) -> None:
        """Load a concrete image (e.g. a binary's data section)."""
        for offset, value in enumerate(values):
            self.bits[base + offset] = value & self._full
            self.xmask[base + offset] = 0
            self.tmask[base + offset] = tmask

    def clear(self, tainted: bool = False) -> None:
        """Reset every word to (un)tainted ``X``."""
        self.bits[:] = 0
        self.xmask[:] = self._full
        self.tmask[:] = self._full if tainted else 0

    # ------------------------------------------------------------------
    # Address-pattern machinery
    # ------------------------------------------------------------------
    def match_mask(self, address: TWord) -> np.ndarray:
        """Words a load/store through *address* may touch on this path.

        Only *unknown* address bits wildcard.  A tainted-but-concrete
        address names a definite location here: the analysis concretises
        control flow per path (Algorithm 1's PC handling), so the attacker's
        cross-world steering is covered by exploring the other paths, and
        within a path the taint travels on the *data* (see
        ``_address_smear_taint``), not by widening the footprint.  This is
        precisely what separates the paper's per-path analysis from
        *-logic's everything-goes-unknown collapse (footnote 8).
        """
        known = self._full & ~(address.xmask & self._full)
        return (self._indices & known) == (address.bits & known)

    def _address_smear_taint(self, address: TWord) -> int:
        return self._full if address.tmask else 0

    # ------------------------------------------------------------------
    # Load / store through symbolic addresses
    # ------------------------------------------------------------------
    def read(self, address: TWord) -> TWord:
        """Load through a possibly unknown/tainted address.

        The value and taint both follow the unknown-bit footprint (a single
        word when the address is concrete, tainted or not); a tainted
        address additionally taints the whole result, since *which* word
        was read is attacker-influenced.
        """
        taint = self._address_smear_taint(address)
        if address.xmask == 0:
            word = self.get(address.bits % self.size)
            return word.or_taint(taint)
        known = self._full & ~(address.xmask & self._full)
        if known == 0:
            # Fully unknown address: the footprint is the whole bank.
            # Reducing the contiguous arrays directly skips the
            # match-mask allocation and three boolean gathers.
            any_x = int(np.bitwise_or.reduce(self.xmask))
            and_bits = int(np.bitwise_and.reduce(self.bits))
            or_bits = int(np.bitwise_or.reduce(self.bits))
            taint |= int(np.bitwise_or.reduce(self.tmask))
        else:
            match = self.match_mask(address)
            if not match.any():
                # Address provably outside this bank.
                return TWord.unknown(self.width, tmask=taint)
            any_x = int(np.bitwise_or.reduce(self.xmask[match]))
            and_bits = int(np.bitwise_and.reduce(self.bits[match]))
            or_bits = int(np.bitwise_or.reduce(self.bits[match]))
            taint |= int(np.bitwise_or.reduce(self.tmask[match]))
        known1 = and_bits & ~any_x
        known0 = ~or_bits & ~any_x & self._full
        xmask = self._full & ~(known0 | known1)
        return TWord(known1, xmask, taint, self.width)

    def write(
        self,
        address: TWord,
        data: TWord,
        wen: Tuple[int, int] = (ONE, 0),
    ) -> np.ndarray:
        """Store through a possibly unknown/tainted address.

        *wen* is the (ternary value, taint) of the write strobe.  Returns
        the boolean mask of words that may have been affected (used by the
        policy checker to detect writes into untainted partitions).
        """
        wen_value, wen_taint = wen
        if wen_value == ZERO:
            # No store happens on this path.  A tainted strobe reflects
            # attacker-chosen control flow, and the paths where the store
            # *does* happen are explored separately.
            return np.zeros(self.size, dtype=bool)

        smear = self._address_smear_taint(address) | (
            self._full if wen_taint else 0
        )
        if address.xmask == 0 and wen_value == ONE:
            # Definite write: the word's taint becomes the data's taint
            # (plus the smear for attacker-influenced address/strobe) -- an
            # untainted definite overwrite *cleans* the word, matching the
            # gate-level semantics.
            index = address.bits % self.size
            self.set(index, data.or_taint(smear))
            mask = np.zeros(self.size, dtype=bool)
            mask[index] = True
            return mask
        # Unknown address and/or maybe-strobe: merge into the footprint.
        known = self._full & ~(address.xmask & self._full)
        if known == 0:
            # Fully unknown address: the footprint is the whole bank, so
            # merge in place with whole-array operations instead of the
            # (much slower) boolean gather/scatter below.
            differ = (
                (self.bits ^ np.uint32(data.bits))
                | self.xmask
                | np.uint32(data.xmask)
            )
            self.bits &= ~differ
            self.xmask = differ
            self.tmask |= np.uint32(data.tmask | smear)
            return np.ones(self.size, dtype=bool)
        match = self.match_mask(address)
        if not match.any():
            return np.zeros(self.size, dtype=bool)
        differ = (
            (self.bits[match] ^ np.uint32(data.bits))
            | self.xmask[match]
            | np.uint32(data.xmask)
        )
        self.bits[match] &= ~differ
        self.xmask[match] = differ
        self.tmask[match] |= data.tmask | smear
        return match

    # ------------------------------------------------------------------
    # Region / policy queries
    # ------------------------------------------------------------------
    def tainted_words(self) -> np.ndarray:
        return self.tmask != 0

    def region_taint_count(self, low: int, high: int) -> int:
        """Number of tainted words in ``[low, high)``."""
        return int(np.count_nonzero(self.tmask[low:high]))

    def region_tainted(self, low: int, high: int) -> bool:
        return bool((self.tmask[low:high] != 0).any())

    def taint_region(self, low: int, high: int) -> None:
        self.tmask[low:high] = self._full

    def untaint_region(self, low: int, high: int) -> None:
        self.tmask[low:high] = 0

    # ------------------------------------------------------------------
    # State management (tracker support)
    # ------------------------------------------------------------------
    def copy(self) -> "TaintedMemory":
        clone = TaintedMemory.__new__(TaintedMemory)
        clone.size = self.size
        clone.width = self.width
        clone._full = self._full
        clone.bits = self.bits.copy()
        clone.xmask = self.xmask.copy()
        clone.tmask = self.tmask.copy()
        clone._indices = self._indices
        return clone

    def merge_from(self, other: "TaintedMemory") -> None:
        """In-place most-conservative merge with *other*."""
        differ = (self.bits ^ other.bits) | self.xmask | other.xmask
        self.bits &= ~differ
        self.xmask = differ
        self.tmask |= other.tmask

    def covers(self, other: "TaintedMemory") -> bool:
        """True when every word of *self* covers the matching word of *other*."""
        if (other.tmask & ~self.tmask).any():
            return False
        differ = ((self.bits ^ other.bits) | other.xmask) & ~self.xmask
        return not differ.any()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaintedMemory):
            return NotImplemented
        return (
            self.size == other.size
            and bool((self.bits == other.bits).all())
            and bool((self.xmask == other.xmask).all())
            and bool((self.tmask == other.tmask).all())
        )
