"""Architectural (ISA-level) ternary+taint simulator for LP430.

This is the *golden model*: instruction-stepped, word-level GLIFT semantics
built on :class:`repro.logic.words.TWord`, sharing the exact behavioural
memory/peripheral models (:class:`repro.sim.soc.AddressSpace`) with the
gate-level SoC.  It serves three purposes:

1. cross-validation target for the gate-level LP430 CPU (concrete runs must
   match state-for-state; symbolic runs must be covered by the gate level);
2. fast cycle-accurate *concrete* simulation for the overhead measurements
   of Table 3 and Section 7.3 (the paper's "input-based gate-level
   simulations", substituted per DESIGN.md);
3. a fast ISA-level variant of the paper's analysis used for sanity checks.
"""

from repro.isasim.state import ArchState, flags_of_sr, zero_flag
from repro.isasim.executor import (
    Executor,
    ExecutorError,
    InstructionEvents,
    StepResult,
    UnknownPCError,
    run_concrete,
)

__all__ = [
    "ArchState",
    "zero_flag",
    "flags_of_sr",
    "Executor",
    "ExecutorError",
    "UnknownPCError",
    "StepResult",
    "InstructionEvents",
    "run_concrete",
]
