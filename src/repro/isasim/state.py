"""Architectural register state with ternary+taint words."""

from __future__ import annotations

from typing import List, Tuple

from repro.isa import spec
from repro.logic.ternary import ONE, UNKNOWN, ZERO, t_not
from repro.logic.words import TWord

_ZERO_WORD = TWord.const(0)


class ArchState:
    """The sixteen architectural registers (R3 reads as constant 0)."""

    __slots__ = ("regs",)

    def __init__(self):
        self.regs: List[TWord] = [TWord.unknown(16) for _ in range(16)]
        self.regs[spec.CG] = _ZERO_WORD

    def read(self, reg: int) -> TWord:
        if reg == spec.CG:
            return _ZERO_WORD
        return self.regs[reg]

    def write(self, reg: int, value: TWord) -> None:
        if reg == spec.CG:
            return
        self.regs[reg] = value

    def reset(self, taint: int = 0) -> None:
        """Power-on reset: every register cleared.

        A *tainted* reset (taint=1) clears the values but leaves every bit
        tainted -- the Figure 7 flip-flop rule lifted to word level.
        """
        cleared = TWord.const(0, tmask=0xFFFF if taint else 0)
        for reg in range(16):
            self.regs[reg] = cleared
        self.regs[spec.CG] = _ZERO_WORD

    # ------------------------------------------------------------------
    # Status-register helpers
    # ------------------------------------------------------------------
    @property
    def sr(self) -> TWord:
        return self.regs[spec.SR]

    def flag(self, position: int) -> Tuple[int, int]:
        return self.regs[spec.SR].bit(position)

    def set_flags(
        self,
        carry: Tuple[int, int],
        zero: Tuple[int, int],
        negative: Tuple[int, int],
        overflow: Tuple[int, int],
    ) -> None:
        sr = self.regs[spec.SR]
        bits = sr.bits & ~spec.FLAG_MASK
        xmask = sr.xmask & ~spec.FLAG_MASK
        tmask = sr.tmask & ~spec.FLAG_MASK
        for position, (value, taint) in (
            (spec.FLAG_C, carry),
            (spec.FLAG_Z, zero),
            (spec.FLAG_N, negative),
            (spec.FLAG_V, overflow),
        ):
            probe = 1 << position
            if value == UNKNOWN:
                xmask |= probe
            elif value == ONE:
                bits |= probe
            if taint:
                tmask |= probe
        self.regs[spec.SR] = TWord(bits, xmask, tmask, 16)

    # ------------------------------------------------------------------
    # Tracker lattice support
    # ------------------------------------------------------------------
    def copy(self) -> "ArchState":
        clone = ArchState.__new__(ArchState)
        clone.regs = list(self.regs)
        return clone

    def merge_from(self, other: "ArchState") -> None:
        self.regs = [
            mine.merge(theirs) for mine, theirs in zip(self.regs, other.regs)
        ]
        self.regs[spec.CG] = _ZERO_WORD

    def covers(self, other: "ArchState") -> bool:
        return all(
            mine.covers(theirs)
            for mine, theirs in zip(self.regs, other.regs)
        )

    def tainted_registers(self) -> List[int]:
        return [reg for reg in range(16) if self.regs[reg].tmask]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchState):
            return NotImplemented
        return self.regs == other.regs


def zero_flag(word: TWord) -> Tuple[int, int]:
    """Value-aware GLIFT zero detect (a wide NOR at gate level).

    A known *untainted* 1 anywhere forces Z = 0 untainted no matter how
    tainted the rest of the word is -- the same masking effect as Figure 1.
    """
    untainted_one = word.bits & ~word.tmask
    if untainted_one:
        return ZERO, 0
    if word.bits:
        value = ZERO
    elif word.xmask:
        value = UNKNOWN
    else:
        value = ONE
    return value, 1 if word.tmask else 0


def negative_flag(word: TWord) -> Tuple[int, int]:
    return word.bit(word.width - 1)


def not_flag(flag: Tuple[int, int]) -> Tuple[int, int]:
    return t_not(flag[0]), flag[1]


def flags_of_sr(sr: TWord) -> dict:
    """Decode the four flags from an SR word (diagnostics)."""
    return {
        "C": sr.bit(spec.FLAG_C),
        "Z": sr.bit(spec.FLAG_Z),
        "N": sr.bit(spec.FLAG_N),
        "V": sr.bit(spec.FLAG_V),
    }
