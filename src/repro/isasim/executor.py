"""Instruction-stepped LP430 executor with word-level GLIFT semantics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.isa import spec
from repro.isa.encode import DecodedInstruction, decode
from repro.isa.program import Program
from repro.isa.spec import (
    CG,
    FLAG_C,
    FLAG_N,
    FLAG_V,
    FLAG_Z,
    MODE_INDEXED,
    MODE_INDIRECT,
    MODE_INDIRECT_INC,
    MODE_REGISTER,
    PC,
    SP,
    SR,
)
from repro.isasim.state import ArchState, negative_flag, not_flag, zero_flag
from repro.logic.glift import GATE_FUNCTIONS, glift_eval
from repro.logic.ternary import ONE, UNKNOWN, ZERO, t_not, t_xor
from repro.logic.words import TWord
from repro.sim.soc import AddressSpace, MemRead, MemWrite, Rom


class ExecutorError(Exception):
    """Raised on architecturally unexecutable situations."""


class UnknownPCError(ExecutorError):
    """The PC contains unknown bits; the caller must concretise it."""


@dataclass
class InstructionEvents:
    """Everything observable about one executed instruction."""

    pc: int
    pc_taint: int
    instruction: Optional[DecodedInstruction]
    task: str
    reads: List[MemRead] = field(default_factory=list)
    writes: List[MemWrite] = field(default_factory=list)
    port_events: list = field(default_factory=list)
    por_next: Tuple[int, int] = (ZERO, 0)


@dataclass
class StepResult:
    """Outcome of :meth:`Executor.step`."""

    kind: str  # "ok" | "split" | "halt" | "reset"
    cycles: int
    events: InstructionEvents
    #: for kind == "split": candidate successor PCs (taken, fallthrough) or
    #: an enumeration of an unknown computed target
    targets: Tuple[int, ...] = ()
    #: taint to apply to the PC when forking on `targets`
    branch_taint: int = 0


_COND_FUNCS = {
    "jnz": lambda f: not_flag(f[FLAG_Z]),
    "jz": lambda f: f[FLAG_Z],
    "jnc": lambda f: not_flag(f[FLAG_C]),
    "jc": lambda f: f[FLAG_C],
    "jn": lambda f: f[FLAG_N],
    "jge": lambda f: (
        t_not(t_xor(f[FLAG_N][0], f[FLAG_V][0])),
        f[FLAG_N][1] | f[FLAG_V][1],
    ),
    "jl": lambda f: (
        t_xor(f[FLAG_N][0], f[FLAG_V][0]),
        f[FLAG_N][1] | f[FLAG_V][1],
    ),
    "jmp": lambda f: (ONE, 0),
}


class Executor:
    """Steps a :class:`Program` on the architectural state."""

    def __init__(
        self,
        program: Program,
        space: Optional[AddressSpace] = None,
        rom: Optional[Rom] = None,
        load_data: bool = True,
    ):
        self.program = program
        self.space = space if space is not None else AddressSpace()
        if rom is None:
            rom = Rom()
            program.load_rom(rom)
        self.rom = rom
        if load_data:
            program.load_ram(self.space.ram)
        self.state = ArchState()
        self.state.reset(0)
        self.cycle = 0
        self.pending_por: Tuple[int, int] = (ZERO, 0)
        self.halted = False

    # ------------------------------------------------------------------
    # Fetch helpers
    # ------------------------------------------------------------------
    def pc_word(self) -> TWord:
        return self.state.read(PC)

    def fetch_decode(self) -> Tuple[DecodedInstruction, int]:
        """Decode at the current PC; returns (instruction, code taint)."""
        pc = self.pc_word()
        if pc.xmask:
            raise UnknownPCError(f"PC is not concrete: {pc!r}")
        address = pc.value
        words = []
        taint = 0
        for offset in range(3):
            word = self.rom.read(TWord.const((address + offset) & 0xFFFF))
            words.append(word.bits)
            if offset == 0:
                taint = word.tmask
        instruction = decode(words, address)
        for offset in range(1, instruction.length):
            word = self.rom.read(TWord.const((address + offset) & 0xFFFF))
            taint |= word.tmask
        return instruction, taint

    # ------------------------------------------------------------------
    # The step function
    # ------------------------------------------------------------------
    def step(self) -> StepResult:
        if self.pending_por[0] == ONE:
            return self._apply_reset()

        instruction, code_taint = self.fetch_decode()
        pc = self.pc_word()
        control_taint = 0xFFFF if (pc.tmask or code_taint) else 0
        events = InstructionEvents(
            pc=pc.value,
            pc_taint=pc.tmask,
            instruction=instruction,
            task=self._task_name(pc.value),
        )

        if instruction.kind == "jump":
            return self._step_jump(instruction, pc, control_taint, events)
        if instruction.kind == "one":
            return self._step_format2(instruction, pc, control_taint, events)
        return self._step_format1(instruction, pc, control_taint, events)

    def _task_name(self, address: int) -> str:
        task = self.program.task_of(address)
        return task.name if task else ""

    def _apply_reset(self) -> StepResult:
        _, taint = self.pending_por
        self.state.reset(taint)
        self.space.watchdog.power_on_reset(taint)
        self.pending_por = (ZERO, 0)
        self.halted = False
        events = InstructionEvents(
            pc=0, pc_taint=0, instruction=None, task=""
        )
        self._tick_peripherals(1, events)
        self.cycle += 1
        return StepResult(kind="reset", cycles=1, events=events)

    # ------------------------------------------------------------------
    # Jumps
    # ------------------------------------------------------------------
    def _step_jump(
        self,
        instruction: DecodedInstruction,
        pc: TWord,
        control_taint: int,
        events: InstructionEvents,
    ) -> StepResult:
        cycles = 2  # F + J
        flags = {
            FLAG_C: self.state.flag(FLAG_C),
            FLAG_Z: self.state.flag(FLAG_Z),
            FLAG_N: self.state.flag(FLAG_N),
            FLAG_V: self.state.flag(FLAG_V),
        }
        value, taint = _COND_FUNCS[instruction.mnemonic](flags)

        if instruction.is_self_loop and value == ONE and not taint:
            # The idle loop: architecturally an infinite `jmp $`.
            self.halted = True
            self._tick_peripherals(cycles, events)
            self.cycle += cycles
            return StepResult(kind="halt", cycles=cycles, events=events)

        if value == UNKNOWN:
            # Input-dependent control flow: the caller forks (Algorithm 1's
            # possible_PC_next_vals), keeping the condition's taint on PC.
            self._tick_peripherals(cycles, events)
            self.cycle += cycles
            return StepResult(
                kind="split",
                cycles=cycles,
                events=events,
                targets=(instruction.jump_target, instruction.fallthrough),
                branch_taint=0xFFFF
                if (taint or pc.tmask or control_taint)
                else 0,
            )

        target = (
            instruction.jump_target if value == ONE else instruction.fallthrough
        )
        new_taint = pc.tmask | control_taint | (0xFFFF if taint else 0)
        self.state.write(PC, TWord(target, 0, new_taint, 16))
        self._tick_peripherals(cycles, events)
        self.cycle += cycles
        return StepResult(kind="ok", cycles=cycles, events=events)

    # ------------------------------------------------------------------
    # Operand plumbing
    # ------------------------------------------------------------------
    def _reg_read(self, reg: int, instruction: DecodedInstruction) -> TWord:
        if reg == PC:
            pc = self.pc_word()
            return TWord(instruction.fallthrough, 0, pc.tmask, 16)
        return self.state.read(reg)

    def _operand_address(
        self, operand, instruction: DecodedInstruction
    ) -> TWord:
        if operand.mode == MODE_INDEXED:
            base = self._reg_read(operand.reg, instruction)
            address, _, _ = base.add(TWord.const(operand.ext or 0))
            return address
        return self._reg_read(operand.reg, instruction)

    def _read_operand(
        self,
        operand,
        instruction: DecodedInstruction,
        events: InstructionEvents,
        control_taint: int,
    ) -> Tuple[TWord, int, Optional[TWord]]:
        """Returns (value, extra cycles, memory address or None)."""
        if operand.mode == MODE_REGISTER:
            return self._reg_read(operand.reg, instruction), 0, None
        if operand.is_immediate:
            word = self.rom.read(
                TWord.const((instruction.address + 1) & 0xFFFF)
            )
            return (
                TWord(operand.ext or 0, 0, word.tmask | control_taint, 16),
                1,  # SE
                None,
            )
        cycles = 1  # SL
        if operand.mode == MODE_INDEXED:
            cycles += 1  # SE (the offset word)
        address = self._operand_address(operand, instruction)
        value = self.space.read(address)
        events.reads.append(MemRead(address, value, (ONE, 0)))
        if operand.mode == MODE_INDIRECT_INC:
            bumped, _, _ = self.state.read(operand.reg).add(TWord.const(1))
            self.state.write(
                operand.reg, bumped.or_taint(control_taint)
            )
        return value.or_taint(control_taint), cycles, address

    def _write_memory(
        self,
        address: TWord,
        data: TWord,
        events: InstructionEvents,
        control_taint: int,
    ) -> None:
        wen = (ONE, 1 if control_taint else 0)
        data = data.or_taint(control_taint)
        ram_match = self.space.write(address, data, wen)
        events.writes.append(MemWrite(address, data, wen, ram_match))

    # ------------------------------------------------------------------
    # Format I (two-operand)
    # ------------------------------------------------------------------
    def _step_format1(
        self,
        instruction: DecodedInstruction,
        pc: TWord,
        control_taint: int,
        events: InstructionEvents,
    ) -> StepResult:
        cycles = 2  # F + E
        src, extra, _ = self._read_operand(
            instruction.src, instruction, events, control_taint
        )
        cycles += extra

        dst_operand = instruction.dst
        dst_address: Optional[TWord] = None
        needs_old = instruction.mnemonic != "mov"
        if dst_operand.mode == MODE_INDEXED:
            cycles += 1  # DE
            dst_address = self._operand_address(dst_operand, instruction)
            if needs_old:
                cycles += 1  # DL
                dst_old = self.space.read(dst_address)
                events.reads.append(MemRead(dst_address, dst_old, (ONE, 0)))
            else:
                dst_old = TWord.const(0)
        else:
            dst_old = self._reg_read(dst_operand.reg, instruction)

        result, flags = self._alu(instruction.mnemonic, src, dst_old)
        if flags is not None:
            carry, zero, negative, overflow = flags
            taint_bump = 1 if control_taint else 0
            self.state.set_flags(
                (carry[0], carry[1] | taint_bump),
                (zero[0], zero[1] | taint_bump),
                (negative[0], negative[1] | taint_bump),
                (overflow[0], overflow[1] | taint_bump),
            )

        wrote_pc = False
        if result is not None:
            result = result.or_taint(control_taint)
            if dst_operand.mode == MODE_REGISTER:
                if dst_operand.reg == PC:
                    wrote_pc = True
                    if result.xmask:
                        return self._computed_jump_split(
                            result, cycles, events
                        )
                    self.state.write(PC, result)
                else:
                    self.state.write(dst_operand.reg, result)
            else:
                self._write_memory(
                    dst_address, result, events, control_taint
                )

        if not wrote_pc:
            self._advance_pc(instruction, pc, control_taint)
        self._tick_peripherals(cycles, events)
        self.cycle += cycles
        return StepResult(kind="ok", cycles=cycles, events=events)

    def _computed_jump_split(
        self, target: TWord, cycles: int, events: InstructionEvents
    ) -> StepResult:
        try:
            candidates = tuple(target.possible_values(limit=64))
        except ValueError as error:
            raise ExecutorError(
                "computed jump through a widely unknown target "
                f"({target!r}); bound it in software"
            ) from error
        self._tick_peripherals(cycles, events)
        self.cycle += cycles
        return StepResult(
            kind="split",
            cycles=cycles,
            events=events,
            targets=candidates,
            branch_taint=0xFFFF if target.tmask else 0,
        )

    # ------------------------------------------------------------------
    # Format II (single-operand)
    # ------------------------------------------------------------------
    def _step_format2(
        self,
        instruction: DecodedInstruction,
        pc: TWord,
        control_taint: int,
        events: InstructionEvents,
    ) -> StepResult:
        mnemonic = instruction.mnemonic
        operand = instruction.src
        cycles = 2  # F + E
        value, extra, address = self._read_operand(
            operand, instruction, events, control_taint
        )
        cycles += extra

        if mnemonic == "push":
            new_sp, _, _ = self.state.read(SP).sub(TWord.const(1))
            new_sp = new_sp.or_taint(control_taint)
            self.state.write(SP, new_sp)
            self._write_memory(new_sp, value, events, control_taint)
            self._advance_pc(instruction, pc, control_taint)
        elif mnemonic == "call":
            return_address = TWord(
                instruction.fallthrough, 0, pc.tmask | control_taint, 16
            )
            new_sp, _, _ = self.state.read(SP).sub(TWord.const(1))
            new_sp = new_sp.or_taint(control_taint)
            self.state.write(SP, new_sp)
            self._write_memory(new_sp, return_address, events, control_taint)
            target = value.or_taint(control_taint)
            if target.xmask:
                return self._computed_jump_split(target, cycles, events)
            self.state.write(PC, target)
        else:
            if mnemonic == "rrc":
                result, carry = value.rrc(self.state.flag(FLAG_C))
            elif mnemonic == "rra":
                result, carry = value.rra()
            else:  # swpb
                result, carry = value.swpb(), None
            result = result.or_taint(control_taint)
            if carry is not None:
                taint_bump = 1 if control_taint else 0
                self.state.set_flags(
                    (carry[0], carry[1] | taint_bump),
                    _bump(zero_flag(result), taint_bump),
                    _bump(negative_flag(result), taint_bump),
                    (ZERO, taint_bump),
                )
            if operand.mode == MODE_REGISTER:
                self.state.write(operand.reg, result)
            else:
                self._write_memory(address, result, events, control_taint)
            self._advance_pc(instruction, pc, control_taint)

        self._tick_peripherals(cycles, events)
        self.cycle += cycles
        return StepResult(kind="ok", cycles=cycles, events=events)

    # ------------------------------------------------------------------
    # ALU
    # ------------------------------------------------------------------
    def _alu(self, mnemonic: str, src: TWord, dst: TWord):
        if mnemonic == "mov":
            return src, None
        if mnemonic in ("add", "addc"):
            carry_in = (
                self.state.flag(FLAG_C) if mnemonic == "addc" else (ZERO, 0)
            )
            result, carry, overflow = dst.add(src, carry_in=carry_in)
            return result, (
                carry,
                zero_flag(result),
                negative_flag(result),
                overflow,
            )
        if mnemonic in ("sub", "cmp", "subc"):
            if mnemonic == "subc":
                result, carry, overflow = dst.add(
                    ~src, carry_in=self.state.flag(FLAG_C)
                )
            else:
                result, carry, overflow = dst.sub(src)
            flags = (carry, zero_flag(result), negative_flag(result), overflow)
            if mnemonic == "cmp":
                return None, flags
            return result, flags
        if mnemonic in ("and", "bit"):
            result = src & dst
            zero = zero_flag(result)
            flags = (not_flag(zero), zero, negative_flag(result), (ZERO, 0))
            if mnemonic == "bit":
                return None, flags
            return result, flags
        if mnemonic == "xor":
            result = src ^ dst
            zero = zero_flag(result)
            overflow = glift_eval(
                GATE_FUNCTIONS["AND2"],
                (src.bit(15)[0], dst.bit(15)[0]),
                (src.bit(15)[1], dst.bit(15)[1]),
            )
            return result, (
                not_flag(zero),
                zero,
                negative_flag(result),
                overflow,
            )
        if mnemonic == "bic":
            return dst & ~src, None
        if mnemonic == "bis":
            return dst | src, None
        raise ExecutorError(f"unimplemented mnemonic {mnemonic!r}")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _advance_pc(
        self,
        instruction: DecodedInstruction,
        pc: TWord,
        control_taint: int,
    ) -> None:
        self.state.write(
            PC,
            TWord(
                instruction.fallthrough, 0, pc.tmask | control_taint, 16
            ),
        )

    def _tick_peripherals(
        self, cycles: int, events: InstructionEvents
    ) -> None:
        for _ in range(cycles):
            self.space.timer.tick()
            por = self.space.watchdog.tick()
            if por[0] == ONE:
                self.pending_por = por
            elif por[1] and self.pending_por[0] != ONE:
                self.pending_por = (self.pending_por[0], 1)
        events.por_next = self.pending_por
        events.port_events = self.space.drain_port_events()

    # ------------------------------------------------------------------
    # Fork/merge support
    # ------------------------------------------------------------------
    def force_pc(self, value: int, taint: int = 0) -> None:
        self.state.write(PC, TWord(value, 0, taint, 16))
        self.halted = False

    def snapshot(self):
        return (
            self.state.copy(),
            self.space.snapshot(),
            self.pending_por,
            self.cycle,
            self.halted,
        )

    def restore(self, snap) -> None:
        state, space, por, cycle, halted = snap
        self.state = state.copy()
        self.space.restore(space)
        self.pending_por = por
        self.cycle = cycle
        self.halted = halted


def _bump(flag: Tuple[int, int], taint: int) -> Tuple[int, int]:
    return flag[0], flag[1] | taint


def run_concrete(
    program: Program,
    inputs: Optional[Callable[[str], int]] = None,
    max_cycles: int = 2_000_000,
    follow_watchdog: bool = True,
    stop: Optional[Callable[["ConcreteRun"], bool]] = None,
) -> "ConcreteRun":
    """Cycle-accurate concrete run (the Table 3 measurement harness).

    *inputs* maps a port name to the next value read from it (called once
    per read); default feeds a small deterministic LCG per port.
    """
    space = AddressSpace()
    seeds = {}

    def default_inputs(port_name: str) -> int:
        seed = seeds.get(port_name, sum(map(ord, port_name)) | 1)
        seed = (seed * 75 + 74) % 65537
        seeds[port_name] = seed
        return seed & 0xFFFF

    provider = inputs if inputs is not None else default_inputs
    for port in space.input_ports:
        port.driver = (
            lambda name=port.name: provider(name)
        )
    executor = Executor(program, space=space)
    run = ConcreteRun()
    while executor.cycle < max_cycles:
        if executor.halted:
            remaining = space.watchdog.cycles_until_expiry()
            if not follow_watchdog or remaining is None:
                break
            # Fast-forward the idle loop to the watchdog expiry.
            executor.cycle += remaining
            por = space.watchdog.fast_forward(remaining)
            executor.pending_por = por
            executor.halted = False
        result = executor.step()
        run.steps += 1
        if result.kind == "split":
            raise ExecutorError(
                "concrete run encountered an unknown branch condition; "
                "provide concrete inputs for every port it reads"
            )
        if result.kind == "reset":
            run.resets += 1
        if result.events.writes:
            run.dynamic_stores += len(result.events.writes)
            for write in result.events.writes:
                address = write.address
                if address.is_concrete:
                    run.stores_by_pc[result.events.pc] = (
                        run.stores_by_pc.get(result.events.pc, 0) + 1
                    )
        for event in result.events.port_events:
            if event.kind == "write":
                run.port_writes.append((event.port, event.data))
        run.cycles = executor.cycle
        if stop is not None and stop(run):
            break
    run.cycles = executor.cycle
    run.halted = executor.halted
    run.executor = executor
    return run


@dataclass
class ConcreteRun:
    """Result of :func:`run_concrete`."""

    cycles: int = 0
    steps: int = 0
    resets: int = 0
    halted: bool = False
    dynamic_stores: int = 0
    stores_by_pc: dict = field(default_factory=dict)
    port_writes: List[Tuple[str, TWord]] = field(default_factory=list)
    executor: Optional[Executor] = None

    def writes_to(self, port: str) -> int:
        return sum(1 for name, _ in self.port_writes if name == port)
