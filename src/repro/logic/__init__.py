"""Ternary logic and GLIFT taint-propagation algebra.

This package implements the two value systems the whole reproduction is
built on:

* :mod:`repro.logic.ternary` -- three-valued (``0``, ``1``, ``X``) logic used
  for input-independent ("symbolic") simulation, where ``X`` stands for an
  unknown bit.
* :mod:`repro.logic.glift` -- gate-level information flow tracking (GLIFT)
  taint semantics in the style of Tiwari et al., extended to ternary values
  (Figure 1 of the paper is the NAND instance of these semantics).
* :mod:`repro.logic.words` -- word-level ternary+taint values (:class:`TWord`)
  used by the architectural simulator and the memory models.
"""

from repro.logic.ternary import (
    ONE,
    TERNARY_VALUES,
    UNKNOWN,
    ZERO,
    concretizations,
    t_and,
    t_buf,
    t_mux,
    t_nand,
    t_nor,
    t_not,
    t_or,
    t_xnor,
    t_xor,
    ternary_repr,
)
from repro.logic.glift import (
    GATE_FUNCTIONS,
    glift_eval,
    glift_nand_truth_table,
    glift_table,
)
from repro.logic.words import TWord

__all__ = [
    "ZERO",
    "ONE",
    "UNKNOWN",
    "TERNARY_VALUES",
    "concretizations",
    "ternary_repr",
    "t_not",
    "t_buf",
    "t_and",
    "t_or",
    "t_xor",
    "t_nand",
    "t_nor",
    "t_xnor",
    "t_mux",
    "GATE_FUNCTIONS",
    "glift_eval",
    "glift_table",
    "glift_nand_truth_table",
    "TWord",
]
