"""Word-level ternary + taint values.

:class:`TWord` is the architectural-state analogue of the per-net
``(value, taint)`` pairs the gate-level simulator tracks.  A ``TWord`` packs,
for a *width*-bit word:

* ``bits``  -- the known bit values (a bit under ``xmask`` is stored as 0),
* ``xmask`` -- which bits are unknown (``X``),
* ``tmask`` -- which bits are tainted.

All operations implement **value-aware** GLIFT taint propagation, i.e. the
word-level operators agree bit-for-bit with composing the per-gate semantics
of :mod:`repro.logic.glift` over the obvious gate decomposition (ripple-carry
adder for ``+``, per-bit gates for the logical operators).  The test-suite's
cross-validation between the architectural simulator and the gate-level
simulator leans on this.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Tuple

from repro.logic import glift
from repro.logic.ternary import ONE, UNKNOWN, ZERO


def _mask(width: int) -> int:
    return (1 << width) - 1


class EnumerationLimitError(ValueError):
    """More concrete values exist than the caller's enumeration limit.

    A distinct subclass so callers using :meth:`TWord.possible_values` as
    a tripwire (the tracker's fork-target enumeration) can tell the
    expected "too many successors" signal apart from an unexpected
    ``ValueError`` raised by a genuine bug.
    """


def _full_adder_tables() -> Tuple[Dict[int, Tuple[int, int]], Dict[int, Tuple[int, int]]]:
    """Precompute GLIFT tables for a full adder's sum and carry outputs.

    The table key packs ``(va, ta, vb, tb, vc, tc)`` as
    ``((va * 2 + ta) * 6 + (vb * 2 + tb)) * 6 + (vc * 2 + tc)``.
    """

    def sum_func(a: int, b: int, c: int) -> int:
        return a ^ b ^ c

    def carry_func(a: int, b: int, c: int) -> int:
        return (a & b) | (a & c) | (b & c)

    sum_table: Dict[int, Tuple[int, int]] = {}
    carry_table: Dict[int, Tuple[int, int]] = {}
    for va, vb, vc in itertools.product((ZERO, ONE, UNKNOWN), repeat=3):
        for ta, tb, tc in itertools.product((0, 1), repeat=3):
            key = ((va * 2 + ta) * 6 + (vb * 2 + tb)) * 6 + (vc * 2 + tc)
            sum_table[key] = glift.glift_eval(
                sum_func, (va, vb, vc), (ta, tb, tc)
            )
            carry_table[key] = glift.glift_eval(
                carry_func, (va, vb, vc), (ta, tb, tc)
            )
    return sum_table, carry_table


_SUM_TABLE, _CARRY_TABLE = _full_adder_tables()


class TWord:
    """An immutable *width*-bit word of ternary, taint-carrying bits."""

    __slots__ = ("bits", "xmask", "tmask", "width")

    def __init__(self, bits: int, xmask: int = 0, tmask: int = 0, width: int = 16):
        mask = _mask(width)
        xmask &= mask
        self.width = width
        self.xmask = xmask
        self.bits = bits & mask & ~xmask
        self.tmask = tmask & mask

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def const(cls, value: int, width: int = 16, tmask: int = 0) -> "TWord":
        """A fully known word."""
        return cls(value, 0, tmask, width)

    @classmethod
    def unknown(cls, width: int = 16, tmask: int = 0) -> "TWord":
        """A fully unknown (all ``X``) word."""
        mask = _mask(width)
        return cls(0, mask, tmask, width)

    # ------------------------------------------------------------------
    # Predicates and accessors
    # ------------------------------------------------------------------
    @property
    def is_concrete(self) -> bool:
        return self.xmask == 0

    @property
    def is_tainted(self) -> bool:
        return self.tmask != 0

    @property
    def value(self) -> int:
        """The concrete value; raises when any bit is unknown."""
        if self.xmask:
            raise ValueError(f"value of non-concrete word {self!r}")
        return self.bits

    def bit(self, index: int) -> Tuple[int, int]:
        """Return ``(ternary value, taint)`` of bit *index*."""
        probe = 1 << index
        if self.xmask & probe:
            value = UNKNOWN
        else:
            value = 1 if self.bits & probe else 0
        return value, 1 if self.tmask & probe else 0

    def known_mask(self) -> int:
        return _mask(self.width) & ~self.xmask

    def possible_values(self, limit: int = 1 << 16) -> Iterator[int]:
        """Enumerate every concrete value this word may take.

        Raises :class:`EnumerationLimitError` (a ``ValueError``) when more
        than *limit* values exist -- callers that enumerate successor PCs
        use this as a tripwire rather than silently exploding.
        """
        unknown_bits = [i for i in range(self.width) if self.xmask >> i & 1]
        count = 1 << len(unknown_bits)
        if count > limit:
            raise EnumerationLimitError(
                f"{count} possible values exceeds enumeration limit {limit}"
            )
        for combo in range(count):
            value = self.bits
            for position, bit_index in enumerate(unknown_bits):
                if combo >> position & 1:
                    value |= 1 << bit_index
            yield value

    # ------------------------------------------------------------------
    # Taint manipulation
    # ------------------------------------------------------------------
    def with_taint(self, tmask: int) -> "TWord":
        return TWord(self.bits, self.xmask, tmask, self.width)

    def taint_all(self) -> "TWord":
        return self.with_taint(_mask(self.width))

    def or_taint(self, tmask: int) -> "TWord":
        return self.with_taint(self.tmask | tmask)

    # ------------------------------------------------------------------
    # Bitwise operators (value-aware taint)
    # ------------------------------------------------------------------
    def _known0(self) -> int:
        return self.known_mask() & ~self.bits

    def _known1(self) -> int:
        return self.bits

    def __and__(self, other: "TWord") -> "TWord":
        known1 = self._known1() & other._known1()
        known0 = self._known0() | other._known0()
        xmask = _mask(self.width) & ~(known0 | known1)
        # A tainted input is masked only by an untainted known-0 other input.
        taint = (
            (self.tmask & other.tmask)
            | (self.tmask & ~(other._known0() & ~other.tmask))
            | (other.tmask & ~(self._known0() & ~self.tmask))
        ) & (self.tmask | other.tmask)
        return TWord(known1, xmask, taint, self.width)

    def __or__(self, other: "TWord") -> "TWord":
        known1 = self._known1() | other._known1()
        known0 = self._known0() & other._known0()
        xmask = _mask(self.width) & ~(known0 | known1)
        # A tainted input is masked only by an untainted known-1 other input.
        taint = (
            (self.tmask & other.tmask)
            | (self.tmask & ~(other._known1() & ~other.tmask))
            | (other.tmask & ~(self._known1() & ~self.tmask))
        ) & (self.tmask | other.tmask)
        return TWord(known1, xmask, taint, self.width)

    def __xor__(self, other: "TWord") -> "TWord":
        xmask = self.xmask | other.xmask
        bits = (self.bits ^ other.bits) & ~xmask
        return TWord(bits, xmask, self.tmask | other.tmask, self.width)

    def __invert__(self) -> "TWord":
        bits = ~self.bits & self.known_mask()
        return TWord(bits, self.xmask, self.tmask, self.width)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def add(
        self,
        other: "TWord",
        carry_in: Tuple[int, int] = (ZERO, 0),
    ) -> Tuple["TWord", Tuple[int, int], Tuple[int, int]]:
        """Ripple-carry addition with GLIFT taint.

        Returns ``(result, carry_out, overflow)`` where the carry and
        overflow are ``(ternary value, taint)`` pairs, matching the
        gate-level adder bit for bit.
        """
        assert self.width == other.width
        carry_value, carry_taint = carry_in
        bits = 0
        xmask = 0
        tmask = 0
        carry_into_msb: Tuple[int, int] = (ZERO, 0)
        for index in range(self.width):
            value_a, taint_a = self.bit(index)
            value_b, taint_b = other.bit(index)
            if index == self.width - 1:
                carry_into_msb = (carry_value, carry_taint)
            key = (
                (value_a * 2 + taint_a) * 6 + (value_b * 2 + taint_b)
            ) * 6 + (carry_value * 2 + carry_taint)
            sum_value, sum_taint = _SUM_TABLE[key]
            carry_value, carry_taint = _CARRY_TABLE[key]
            probe = 1 << index
            if sum_value == UNKNOWN:
                xmask |= probe
            elif sum_value == ONE:
                bits |= probe
            if sum_taint:
                tmask |= probe
        carry_out = (carry_value, carry_taint)
        # Signed overflow: carry into the MSB XOR carry out of the MSB.
        from repro.logic.ternary import t_xor

        overflow = (
            t_xor(carry_into_msb[0], carry_out[0]),
            carry_into_msb[1] | carry_out[1],
        )
        return TWord(bits, xmask, tmask, self.width), carry_out, overflow

    def sub(
        self, other: "TWord"
    ) -> Tuple["TWord", Tuple[int, int], Tuple[int, int]]:
        """``self - other`` as ``self + ~other + 1`` (MSP430 carry = !borrow)."""
        return self.add(~other, carry_in=(ONE, 0))

    # ------------------------------------------------------------------
    # Shifts / byte ops
    # ------------------------------------------------------------------
    def rra(self) -> Tuple["TWord", Tuple[int, int]]:
        """Arithmetic shift right by one; returns ``(result, carry_out)``."""
        msb_value, msb_taint = self.bit(self.width - 1)
        carry = self.bit(0)
        bits = self.bits >> 1
        xmask = self.xmask >> 1
        tmask = self.tmask >> 1
        top = 1 << (self.width - 1)
        if msb_value == UNKNOWN:
            xmask |= top
        elif msb_value == ONE:
            bits |= top
        if msb_taint:
            tmask |= top
        return TWord(bits, xmask, tmask, self.width), carry

    def rrc(self, carry_in: Tuple[int, int]) -> Tuple["TWord", Tuple[int, int]]:
        """Rotate right through carry; returns ``(result, carry_out)``."""
        carry_out = self.bit(0)
        bits = self.bits >> 1
        xmask = self.xmask >> 1
        tmask = self.tmask >> 1
        top = 1 << (self.width - 1)
        value_in, taint_in = carry_in
        if value_in == UNKNOWN:
            xmask |= top
        elif value_in == ONE:
            bits |= top
        if taint_in:
            tmask |= top
        return TWord(bits, xmask, tmask, self.width), carry_out

    def swpb(self) -> "TWord":
        """Swap the two bytes of a 16-bit word."""
        assert self.width == 16

        def swap(mask: int) -> int:
            return ((mask & 0xFF) << 8) | (mask >> 8)

        return TWord(swap(self.bits), swap(self.xmask), swap(self.tmask), 16)

    def shifted_left(self, count: int) -> "TWord":
        """Logical shift left (assembler/front-end helper, taint moves along)."""
        return TWord(
            self.bits << count,
            self.xmask << count,
            self.tmask << count,
            self.width,
        )

    # ------------------------------------------------------------------
    # Lattice operations used by the tracker
    # ------------------------------------------------------------------
    def merge(self, other: "TWord") -> "TWord":
        """Most conservative word covering both (differ -> ``X``, taints OR)."""
        assert self.width == other.width
        differ = (self.bits ^ other.bits) | self.xmask | other.xmask
        return TWord(
            self.bits & ~differ,
            differ,
            self.tmask | other.tmask,
            self.width,
        )

    def covers(self, other: "TWord") -> bool:
        """True when *self* is at least as conservative as *other*.

        Every bit where the two differ must be ``X`` in *self*, and *self*
        must carry at least the taint of *other*.
        """
        if self.width != other.width:
            return False
        if other.tmask & ~self.tmask:
            return False
        differ = (self.bits ^ other.bits) | other.xmask
        return not (differ & ~self.xmask)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TWord):
            return NotImplemented
        return (
            self.width == other.width
            and self.bits == other.bits
            and self.xmask == other.xmask
            and self.tmask == other.tmask
        )

    def __hash__(self) -> int:
        return hash((self.bits, self.xmask, self.tmask, self.width))

    def __repr__(self) -> str:
        digits: List[str] = []
        for index in reversed(range(self.width)):
            value, taint = self.bit(index)
            char = "X" if value == UNKNOWN else str(value)
            digits.append(char + ("'" if taint else ""))
        return "TWord(" + "".join(digits) + ")"
