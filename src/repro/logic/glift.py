"""Gate-level information flow tracking (GLIFT) taint semantics.

GLIFT augments every gate with *shadow logic* that decides whether the gate's
output is influenced by tainted inputs, **taking the logical values of the
inputs into account**.  The canonical example is the paper's Figure 1: a
NAND gate with ``A = 1`` tainted and ``B = 0`` untainted produces an
*untainted* 1, because the untainted ``B = 0`` fully controls the output and
the tainted input cannot affect it.

This module gives an executable definition of those semantics, extended to
ternary (``0/1/X``) values:

    The output of a gate is **tainted** iff there exists a concretization of
    the unknown *untainted* inputs under which varying the *tainted* inputs
    (jointly, over all boolean assignments) changes the gate output.

The output *value* is the ordinary ternary evaluation: the boolean function
is evaluated over every concretization of the unknown inputs and yields a
known value only when they all agree.

Everything is defined by exhaustive enumeration over a gate's boolean
function, which keeps the semantics obviously correct; the simulator
(:mod:`repro.sim.compiled`) bakes these semantics into lookup tables once at
circuit-compile time, so the enumeration cost is never paid per cycle.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Sequence, Tuple

from repro.logic.ternary import ONE, UNKNOWN, ZERO, concretizations

BoolFunc = Callable[..., int]


def _and(*inputs: int) -> int:
    out = 1
    for bit in inputs:
        out &= bit
    return out


def _or(*inputs: int) -> int:
    out = 0
    for bit in inputs:
        out |= bit
    return out


def _xor(*inputs: int) -> int:
    out = 0
    for bit in inputs:
        out ^= bit
    return out


def _nand(*inputs: int) -> int:
    return 1 - _and(*inputs)


def _nor(*inputs: int) -> int:
    return 1 - _or(*inputs)


def _xnor(*inputs: int) -> int:
    return 1 - _xor(*inputs)


def _not(a: int) -> int:
    return 1 - a


def _buf(a: int) -> int:
    return a


def _mux(sel: int, a: int, b: int) -> int:
    return b if sel else a


#: Boolean functions for every combinational cell type in the library.
#: MUX2 input order is ``(sel, a, b)``; output is ``a`` when ``sel == 0``.
GATE_FUNCTIONS: Dict[str, BoolFunc] = {
    "BUF": _buf,
    "NOT": _not,
    "AND2": _and,
    "AND3": _and,
    "AND4": _and,
    "OR2": _or,
    "OR3": _or,
    "OR4": _or,
    "NAND2": _nand,
    "NAND3": _nand,
    "NOR2": _nor,
    "NOR3": _nor,
    "XOR2": _xor,
    "XOR3": _xor,
    "XNOR2": _xnor,
    "MUX2": _mux,
}


def ternary_eval(func: BoolFunc, values: Sequence[int]) -> int:
    """Ternary evaluation of a boolean function by enumeration."""
    seen = set()
    for combo in itertools.product(*(concretizations(v) for v in values)):
        seen.add(func(*combo))
        if len(seen) == 2:
            return UNKNOWN
    (only,) = seen
    return only


def glift_eval(
    func: BoolFunc, values: Sequence[int], taints: Sequence[int]
) -> Tuple[int, int]:
    """Evaluate a gate under GLIFT semantics.

    Parameters
    ----------
    func:
        The gate's boolean function over concrete bits.
    values:
        Ternary input values (``0``, ``1`` or ``X``).
    taints:
        Input taint bits (1 = tainted).

    Returns
    -------
    (value, taint):
        The ternary output value and the output taint bit.
    """
    out_value = ternary_eval(func, values)

    tainted_positions = [i for i, t in enumerate(taints) if t]
    if not tainted_positions:
        return out_value, 0

    untainted_positions = [i for i, t in enumerate(taints) if not t]
    # Enumerate concretizations of unknown *untainted* inputs; a tainted
    # input ranges over both boolean values regardless of its current value
    # (the attacker controls it).
    untainted_choices = itertools.product(
        *(concretizations(values[i]) for i in untainted_positions)
    )
    for untainted_combo in untainted_choices:
        assignment: List[int] = [0] * len(values)
        for position, bit in zip(untainted_positions, untainted_combo):
            assignment[position] = bit
        outputs = set()
        for tainted_combo in itertools.product(
            (0, 1), repeat=len(tainted_positions)
        ):
            for position, bit in zip(tainted_positions, tainted_combo):
                assignment[position] = bit
            outputs.add(func(*assignment))
            if len(outputs) == 2:
                return out_value, 1
    return out_value, 0


def glift_table(cell_type: str) -> Dict[Tuple[int, ...], Tuple[int, int]]:
    """Exhaustive GLIFT truth table for a library cell.

    The key is ``(v0, t0, v1, t1, ...)`` -- interleaved ternary values and
    taints -- and the result is ``(out_value, out_taint)``.
    """
    func = GATE_FUNCTIONS[cell_type]
    arity = _cell_arity(cell_type)
    table: Dict[Tuple[int, ...], Tuple[int, int]] = {}
    for values in itertools.product((ZERO, ONE, UNKNOWN), repeat=arity):
        for taints in itertools.product((0, 1), repeat=arity):
            key = tuple(
                item for pair in zip(values, taints) for item in pair
            )
            table[key] = glift_eval(func, values, taints)
    return table


def _cell_arity(cell_type: str) -> int:
    if cell_type in ("BUF", "NOT"):
        return 1
    if cell_type == "MUX2":
        return 3
    return int(cell_type[-1])


def glift_nand_truth_table() -> List[Tuple[int, int, int, int, int, int]]:
    """The 16-row boolean GLIFT table for a NAND gate (paper Figure 1).

    Rows are ``(A, AT, B, BT, O, OT)`` in the paper's column order, for
    concrete input values only, sorted in the paper's row order.
    """
    rows = []
    for a in (0, 1):
        for a_taint in (0, 1):
            for b in (0, 1):
                for b_taint in (0, 1):
                    value, taint = glift_eval(
                        _nand, (a, b), (a_taint, b_taint)
                    )
                    rows.append((a, a_taint, b, b_taint, value, taint))
    return rows
