"""Three-valued (ternary) logic primitives.

Values are plain integers for speed:

* ``ZERO`` (0) -- known logic 0
* ``ONE`` (1) -- known logic 1
* ``UNKNOWN`` (2) -- the symbol ``X``: an unknown-but-digital value

``X`` is the workhorse of the paper's *input-independent* simulation: every
bit read from an input port is an ``X``, and the gate-level simulator
propagates ``X`` with standard ternary gate semantics (a gate output is
known only when the known inputs force it).
"""

from __future__ import annotations

from typing import Iterable, Tuple

ZERO = 0
ONE = 1
UNKNOWN = 2

TERNARY_VALUES: Tuple[int, int, int] = (ZERO, ONE, UNKNOWN)

_REPR = {ZERO: "0", ONE: "1", UNKNOWN: "X"}


def ternary_repr(value: int) -> str:
    """Return ``'0'``, ``'1'`` or ``'X'`` for a ternary value."""
    return _REPR[value]


def is_known(value: int) -> bool:
    """True when *value* is a concrete 0 or 1."""
    return value != UNKNOWN


def concretizations(value: int) -> Tuple[int, ...]:
    """All boolean values a ternary value may take (``X`` -> ``(0, 1)``)."""
    if value == UNKNOWN:
        return (ZERO, ONE)
    return (value,)


def t_not(a: int) -> int:
    if a == UNKNOWN:
        return UNKNOWN
    return ONE - a


def t_buf(a: int) -> int:
    return a


def t_and(a: int, b: int) -> int:
    if a == ZERO or b == ZERO:
        return ZERO
    if a == ONE and b == ONE:
        return ONE
    return UNKNOWN


def t_or(a: int, b: int) -> int:
    if a == ONE or b == ONE:
        return ONE
    if a == ZERO and b == ZERO:
        return ZERO
    return UNKNOWN


def t_xor(a: int, b: int) -> int:
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return a ^ b


def t_nand(a: int, b: int) -> int:
    return t_not(t_and(a, b))


def t_nor(a: int, b: int) -> int:
    return t_not(t_or(a, b))


def t_xnor(a: int, b: int) -> int:
    return t_not(t_xor(a, b))


def t_mux(sel: int, a: int, b: int) -> int:
    """Ternary 2:1 mux: *a* when ``sel == 0``, *b* when ``sel == 1``.

    With an unknown select the output is known only when both data inputs
    agree.
    """
    if sel == ZERO:
        return a
    if sel == ONE:
        return b
    if a == b and a != UNKNOWN:
        return a
    return UNKNOWN


def t_all(values: Iterable[int]) -> int:
    """Ternary AND-reduce over an iterable."""
    out = ONE
    for value in values:
        out = t_and(out, value)
        if out == ZERO:
            return ZERO
    return out


def t_any(values: Iterable[int]) -> int:
    """Ternary OR-reduce over an iterable."""
    out = ZERO
    for value in values:
        out = t_or(out, value)
        if out == ONE:
            return ONE
    return out


def merge(a: int, b: int) -> int:
    """Most conservative value covering both *a* and *b* (differ -> ``X``)."""
    if a == b:
        return a
    return UNKNOWN


def covers(general: int, specific: int) -> bool:
    """True when *general* is at least as conservative as *specific*.

    ``X`` covers everything; a concrete value covers only itself.  This is
    the per-bit building block of the tracker's sub-state check
    (Algorithm 1, lines 21 and 31).
    """
    return general == UNKNOWN or general == specific
