"""repro -- Software-based gate-level information flow security for IoT.

A from-scratch reproduction of Cherupalli et al., "Software-based Gate-level
Information Flow Security for IoT Systems" (MICRO 2017).

The package is organised bottom-up (see ``DESIGN.md``):

* :mod:`repro.logic`    -- ternary logic + GLIFT taint algebra.
* :mod:`repro.netlist`  -- gate-level netlist IR, circuit builder, Verilog IO.
* :mod:`repro.sim`      -- vectorised gate-level GLIFT simulator + SoC models.
* :mod:`repro.isa`      -- the LP430 ISA, assembler, disassembler.
* :mod:`repro.cpu`      -- the gate-level LP430 microcontroller.
* :mod:`repro.isasim`   -- architectural ternary+taint golden simulator.
* :mod:`repro.core`     -- the paper's contribution: input-independent
  gate-level taint tracking, policy checking, sufficient conditions.
* :mod:`repro.transform`-- root-cause identification + software repairs.
* :mod:`repro.baselines`-- *-logic and always-on comparison points.
* :mod:`repro.rtos`     -- MiniRTOS scheduler (Section 7.3 use case).
* :mod:`repro.workloads`-- Table 1 benchmarks in LP430 assembly.
* :mod:`repro.eval`     -- regeneration of every table and figure.
"""

__version__ = "1.0.0"
