"""The *-logic style baseline (footnote 8).

*-logic [19] statically tracks taints but was built for applications with
no control dependence on unknown, tainted inputs.  "Directly applying a
*-logic analysis on commodity hardware to an application where the PC
becomes unknown and tainted results in most of the gates in the hardware
also becoming unknown and tainted, since most gates are impacted by the
PC ... 70% of the gates in MSP430 becoming unknown and tainted, even those
required by the software techniques to remain untainted (e.g., the
watchdog timer)."

This module reproduces that behaviour by running the same gate-level
simulation **without** Algorithm 1's PC concretisation: when an X reaches
the PC, simulation simply continues -- the unknown program counter merges
the entire program memory into the fetch stream, decode collapses, and the
taint fraction across the netlist is measured every cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.labels import SecurityPolicy, default_policy
from repro.cpu import compiled_cpu
from repro.isa.program import Program
from repro.sim.compiled import CompiledCircuit
from repro.sim.runner import GateRunner
from repro.sim.soc import AddressSpace


@dataclass
class StarLogicResult:
    """Outcome of a *-logic style run."""

    cycles: int
    #: peak fraction of netlist bits that are simultaneously unknown AND
    #: tainted (the footnote-8 "70% of gates" number)
    peak_unknown_tainted_fraction: float
    peak_tainted_fraction: float
    #: cycle at which the PC first became unknown (None: never)
    pc_lost_at: Optional[int]
    #: whether the watchdog's state was still verifiably untainted at the
    #: end -- the property the paper's software techniques need
    watchdog_verifiable: bool

    def report(self) -> str:
        lines = [
            f"*-logic style analysis over {self.cycles} cycles:",
            f"  peak unknown+tainted net fraction: "
            f"{self.peak_unknown_tainted_fraction:.0%}",
            f"  peak tainted net fraction:         "
            f"{self.peak_tainted_fraction:.0%}",
        ]
        if self.pc_lost_at is not None:
            lines.append(
                f"  PC became unknown+tainted at cycle {self.pc_lost_at}"
            )
        lines.append(
            "  watchdog verifiably untainted: "
            + ("yes" if self.watchdog_verifiable else "NO")
        )
        return "\n".join(lines)


def star_logic_analysis(
    program: Program,
    policy: Optional[SecurityPolicy] = None,
    cycles: int = 600,
    circuit: Optional[CompiledCircuit] = None,
) -> StarLogicResult:
    """Run the no-concretisation analysis for *cycles* cycles."""
    if policy is None:
        policy = default_policy()
    if circuit is None:
        circuit = compiled_cpu()
    space = AddressSpace(
        tainted_input_ports=tuple(policy.tainted_input_ports),
        tainted_output_ports=tuple(policy.tainted_output_ports),
    )
    runner = GateRunner(circuit, program, space=space)
    for region in policy.tainted_memory:
        space.ram.taint_region(region.low, region.high)

    import numpy as np

    peak_ut = 0.0
    peak_t = 0.0
    pc_lost_at: Optional[int] = None
    soc = runner.soc
    for _ in range(cycles):
        soc.step()
        # Measure over the evaluated codes (values+taints of every net).
        codes = soc.state.codes
        tainted = (codes & 1) == 1
        unknown = codes >= 4
        fraction_ut = float(np.mean(tainted & unknown))
        fraction_t = float(np.mean(tainted))
        peak_ut = max(peak_ut, fraction_ut)
        peak_t = max(peak_t, fraction_t)
        if pc_lost_at is None:
            pc_word = soc.pc()
            if pc_word.xmask and pc_word.tmask:
                pc_lost_at = soc.cycle
    watchdog = soc.space.watchdog
    watchdog_verifiable = (
        not watchdog.corrupted and watchdog.control.tmask == 0
    )
    return StarLogicResult(
        cycles=cycles,
        peak_unknown_tainted_fraction=peak_ut,
        peak_tainted_fraction=peak_t,
        pc_lost_at=pc_lost_at,
        watchdog_verifiable=watchdog_verifiable,
    )
