"""The "always-on" software protection baseline (no application knowledge).

"Guaranteeing information flow security for an unknown application
requires masking of every store and time bounding of every tainted task
using a deterministic timer, since all sufficient conditions must be
satisfied to guarantee non-interference, even though they may not be
necessary for a particular application."  (Section 7.2)

Two entry points:

* :func:`always_on_cost` -- the analytic cost model used for Table 3's
  Without-Analysis column: every dynamic store pays the two-instruction
  mask (6 cycles: two immediate-operand instructions at 3 cycles each)
  and the whole task is watchdog-sliced.
* :func:`always_on_transform` -- an actual source rewrite masking every
  store in the untrusted tasks (used to sanity-check the model on the
  simpler kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.labels import SecurityPolicy, default_policy
from repro.isa.encode import EncodeError, decode
from repro.isa.program import Program
from repro.transform.masking import insert_masks
from repro.transform.slicing import SlicePlan, choose_slicing

#: two inserted immediate-operand instructions (AND #, BIS #): 3 cycles
#: each on the LP430
MASK_CYCLES_PER_STORE = 6


@dataclass
class AlwaysOnCost:
    """Analytic always-on protection cost for one task."""

    task_cycles: int
    dynamic_stores: int
    plan: SlicePlan

    @property
    def masked_cycles(self) -> int:
        return self.task_cycles + self.dynamic_stores * MASK_CYCLES_PER_STORE

    @property
    def protected_cycles(self) -> int:
        return self.plan.total_cycles

    @property
    def overhead_cycles(self) -> int:
        return self.protected_cycles - self.task_cycles

    @property
    def overhead_fraction(self) -> float:
        if self.task_cycles == 0:
            return 0.0
        return self.overhead_cycles / self.task_cycles


def always_on_cost(task_cycles: int, dynamic_stores: int) -> AlwaysOnCost:
    """Cost of protecting a task with no application knowledge."""
    masked = task_cycles + dynamic_stores * MASK_CYCLES_PER_STORE
    return AlwaysOnCost(
        task_cycles=task_cycles,
        dynamic_stores=dynamic_stores,
        plan=choose_slicing(masked),
    )


def untrusted_store_addresses(
    program: Program, include_pushes: bool = False
) -> List[int]:
    """Every maskable store instruction inside untrusted tasks.

    *include_pushes* adds stack pushes (masked in place on SP), matching
    the paper's "masking of every store" -- the always-on baseline uses
    it; the with-analysis flow masks pushes only when flagged.
    """
    stores: List[int] = []
    for task in program.untrusted_tasks():
        address = task.start
        while address < task.end:
            try:
                instruction = decode(
                    program.slice_from(address), address
                )
            except EncodeError:
                address += 1
                continue
            if instruction.mnemonic == "push":
                if include_pushes:
                    stores.append(address)
            elif (
                instruction.is_store and instruction.mnemonic != "call"
            ):
                operand = (
                    instruction.dst
                    if instruction.kind == "two"
                    else instruction.src
                )
                if operand is not None and not operand.is_absolute:
                    stores.append(address)
            address += instruction.length
    return stores


def always_on_transform(
    source: str,
    program: Program,
    policy: Optional[SecurityPolicy] = None,
) -> str:
    """Mask *every* (maskable) store in the untrusted tasks."""
    if policy is None:
        policy = default_policy()
    stores = untrusted_store_addresses(program, include_pushes=True)
    if not stores:
        return source
    return insert_masks(source, program, stores, policy)
