"""Comparison baselines.

* :mod:`repro.baselines.starlogic` -- the *-logic style analysis
  (footnote 8): no PC concretisation, so input-dependent control flow
  collapses most of the netlist to unknown+tainted.
* :mod:`repro.baselines.alwayson`  -- the "always-on" software protection
  assumed when the application is unknown (Table 3's Without-Analysis
  column): mask every store, watchdog-bound every task.
"""

from repro.baselines.starlogic import StarLogicResult, star_logic_analysis
from repro.baselines.alwayson import (
    AlwaysOnCost,
    always_on_cost,
    always_on_transform,
)

__all__ = [
    "star_logic_analysis",
    "StarLogicResult",
    "always_on_cost",
    "AlwaysOnCost",
    "always_on_transform",
]
