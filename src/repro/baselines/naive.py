"""Ablation baseline: naive (value-blind) taint propagation.

Conventional DIFT propagates taint structurally -- a gate output is
tainted whenever any input is -- ignoring whether the tainted input can
actually affect the output.  Under that rule the paper's entire repair
story collapses: ``AND #0x03FF, Rn`` leaves Rn fully tainted (the
untainted mask cannot strip anything), so masked addresses still smear
the whole memory and no application can ever be verified.

This module compiles the same LP430 netlist with naive taint tables and
exposes an analysis entry point, so the ablation benchmark can put the
two semantics side by side on Figure 9.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.labels import SecurityPolicy
from repro.core.tracker import AnalysisResult, TaintTracker
from repro.cpu.build import build_cpu
from repro.isa.program import Program
from repro.sim.compiled import CompiledCircuit


@lru_cache(maxsize=1)
def naive_compiled_cpu() -> CompiledCircuit:
    """The LP430 compiled with value-blind taint propagation."""
    return CompiledCircuit(build_cpu(), taint_mode="naive")


def naive_taint_analysis(
    program: Program,
    policy: SecurityPolicy = None,
    **tracker_kwargs,
) -> AnalysisResult:
    """Run the tracker with naive taint semantics (ablation only)."""
    tracker = TaintTracker(
        program,
        policy=policy,
        circuit=naive_compiled_cpu(),
        **tracker_kwargs,
    )
    return tracker.run()
