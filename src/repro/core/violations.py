"""Violation records and the Section 5.1 sufficient-condition taxonomy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class ViolationKind:
    """Closed set of violation kinds the checker emits."""

    #: C1 -- tainted processor state while untainted code executes
    TAINTED_STATE_IN_TRUSTED_CODE = "tainted_state_in_trusted_code"
    #: C2 -- a store from tainted code may taint an untainted partition
    TAINTED_WRITE_UNTAINTED_MEMORY = "tainted_write_untainted_memory"
    #: C3 -- untainted code loads from a tainted partition
    TRUSTED_READ_TAINTED_MEMORY = "trusted_read_tainted_memory"
    #: C4 -- untainted code reads from a tainted input port
    TRUSTED_READ_TAINTED_PORT = "trusted_read_tainted_port"
    #: C5 -- tainted data (or a tainted task) reaches an untainted output
    TAINTED_WRITE_UNTAINTED_PORT = "tainted_write_untainted_port"
    #: the PC carries taint inside an untrusted task (control-flow leak;
    #: repaired with the watchdog mechanism)
    TAINTED_CONTROL_FLOW = "tainted_control_flow"
    #: the watchdog's control state became tainted/unknown
    WATCHDOG_TAINTED = "watchdog_tainted"

    ALL = (
        TAINTED_STATE_IN_TRUSTED_CODE,
        TAINTED_WRITE_UNTAINTED_MEMORY,
        TRUSTED_READ_TAINTED_MEMORY,
        TRUSTED_READ_TAINTED_PORT,
        TAINTED_WRITE_UNTAINTED_PORT,
        TAINTED_CONTROL_FLOW,
        WATCHDOG_TAINTED,
    )


#: Map each violation kind onto the sufficient condition (1..5) it breaks.
#: Control-flow taint and a tainted watchdog undermine condition 1 (clean
#: state when untainted code runs), which is how Table 2 accounts them.
CONDITION_OF_KIND = {
    ViolationKind.TAINTED_STATE_IN_TRUSTED_CODE: 1,
    ViolationKind.TAINTED_CONTROL_FLOW: 1,
    ViolationKind.WATCHDOG_TAINTED: 1,
    ViolationKind.TAINTED_WRITE_UNTAINTED_MEMORY: 2,
    ViolationKind.TRUSTED_READ_TAINTED_MEMORY: 3,
    ViolationKind.TRUSTED_READ_TAINTED_PORT: 4,
    ViolationKind.TAINTED_WRITE_UNTAINTED_PORT: 5,
}


@dataclass(frozen=True)
class Violation:
    """One potential information-flow violation (a Figure 6 output row)."""

    kind: str
    cycle: int
    address: int  # program address of the responsible instruction
    task: str
    detail: str = ""
    port: Optional[str] = None
    source_line: Optional[int] = None
    source_text: Optional[str] = None
    #: Advisory findings are repair hints (e.g. "this task's control flow
    #: is tainted -- bound it with the watchdog"), not leaks by themselves:
    #: a tainted PC confined to its own untrusted task violates nothing
    #: until it reaches a sink, which the non-advisory checks catch.
    advisory: bool = False

    @property
    def condition(self) -> int:
        return CONDITION_OF_KIND[self.kind]

    @property
    def severity(self) -> str:
        """Errors are direct leaks; warnings may lead to leaks (Section 6)."""
        if self.advisory:
            return "advisory"
        direct = {
            ViolationKind.TAINTED_WRITE_UNTAINTED_PORT,
            ViolationKind.TRUSTED_READ_TAINTED_PORT,
        }
        return "error" if self.kind in direct else "warning"

    def render(self) -> str:
        location = f"0x{self.address:04x}"
        if self.source_line is not None:
            location += f" (line {self.source_line})"
        head = f"{self.severity}: [{self.kind}] at {location}"
        if self.task:
            head += f" in task {self.task!r}"
        if self.port:
            head += f" port {self.port}"
        if self.detail:
            head += f": {self.detail}"
        return head
