"""Union analysis for multi-programmed systems (Section 8).

"In a multi-programmed setting (including systems that support dynamic
linking), we consider the union of all application code (e.g., caller,
callee, and relevant OS code in case of dynamic linking) to identify all
possible execution states."

:func:`build_union_source` assembles N alternative untrusted tasks into
one system binary behind a dispatcher that selects the callee from an
*unknown, untainted* word (standing for the link-time/boot-time choice the
analysis cannot see).  Because the selector is an unknown the tracker
forks over every alternative, so a single analysis covers every possible
linked configuration -- :func:`analyze_union` then reports the union of
root causes across them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.labels import SecurityPolicy
from repro.core.tracker import AnalysisResult, TaintTracker
from repro.isa.assembler import assemble
from repro.isa.program import Program


def build_union_source(
    alternatives: Sequence[Tuple[str, str]],
    data: str = "",
    stack: int = 0x0FFE,
) -> str:
    """A system binary whose untrusted callee is any of *alternatives*.

    Each alternative is ``(name, body)``; bodies follow the benchmark
    convention (entered by ``call``, leaving with ``ret``).  The
    dispatcher reads the selector from the untainted port P3 (unknown at
    analysis time, not attacker-controlled), bounds it to the alternative
    count, and calls through an aligned jump table of ``br #task``
    trampolines so the computed transfer enumerates exactly.

    The default *stack* sits outside the tainted partition so return
    addresses cannot be clobbered by a masked (partition-confined) store;
    alternatives that push tainted data should instead end in idle loops
    under watchdog bounding, like the benchmark harness after repair.
    """
    if not alternatives:
        raise ValueError("need at least one alternative task")
    count = len(alternatives)
    table_size = 1
    while table_size < count:
        table_size *= 2
    if table_size > 16:
        raise ValueError("at most 16 alternatives supported")
    # The table sits at an aligned address so `base + 2*selector` has no
    # carries: the unknown selector bits enumerate the trampolines exactly.
    table_base = 0x40

    lines: List[str] = [
        ".task sys trusted",
        "start:",
        f"    mov #0x{stack:04X}, sp",
        "    mov &P3IN, r15         ; link/boot-time selection (unknown)",
        f"    and #{table_size - 1}, r15",
        "    rla r15                ; 2 words per trampoline",
        f"    add #0x{table_base:04X}, r15",
        "    call #do_dispatch",
        "    jmp start",
        "do_dispatch:",
        "    mov r15, pc            ; enter the trampoline",
        f".org 0x{table_base:04X}",
        "dispatch:",
    ]
    for name, _ in alternatives:
        lines.append(f"    br #{name}")
    for _ in range(table_size - count):
        lines.append(f"    br #{alternatives[0][0]}")
    for name, body in alternatives:
        lines.append(f".task {name} untrusted")
        lines.append(f"{name}:")
        lines.append(body.rstrip())
        lines.append("    ret")
    if data:
        lines.append(data)
    return "\n".join(lines) + "\n"


def analyze_union(
    alternatives: Sequence[Tuple[str, str]],
    data: str = "",
    policy: Optional[SecurityPolicy] = None,
    name: str = "union",
    **tracker_kwargs,
) -> Tuple[AnalysisResult, Program]:
    """Analyse every possible linked configuration in one run."""
    source = build_union_source(alternatives, data)
    program = assemble(source, name=name)
    result = TaintTracker(program, policy=policy, **tracker_kwargs).run()
    return result, program


def per_task_causes(
    result: AnalysisResult, program: Program
) -> Dict[str, List[str]]:
    """Group the union run's violations by owning task."""
    grouped: Dict[str, List[str]] = {}
    for violation in result.violations:
        grouped.setdefault(violation.task, []).append(violation.kind)
    return grouped
