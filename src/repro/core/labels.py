"""Information-flow security policies.

A policy names the tainted sources and the sinks that must stay clean --
the developer-supplied labels of Figure 6.  Following Section 4.2 (after
[19]), ports are labelled trusted/untrusted and, independently,
secret/non-secret; the two taint kinds are *analysed separately*, so a
policy instance carries a single ``kind`` and the evaluation runs the
analysis once per kind.

The default instance mirrors the paper's running example: ``P1`` is the
tainted (untrusted) input the computational task reads, ``P2`` the output
it may write; ``P3``/``P4`` belong to untainted code; the tainted task owns
the Figure 9 RAM window ``0x0400..0x07FF``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro import memmap
from repro.memmap import MemoryRegion


@dataclass(frozen=True)
class SecurityPolicy:
    """Taint labels for one analysis run."""

    name: str = "non-interference"
    kind: str = "untrusted"  # or "secret"
    #: input ports whose reads produce tainted data
    tainted_input_ports: FrozenSet[str] = frozenset({"P1IN"})
    #: output ports that are allowed to carry tainted data
    tainted_output_ports: FrozenSet[str] = frozenset({"P2OUT"})
    #: RAM partitions the tainted task owns (initially marked tainted)
    tainted_memory: Tuple[MemoryRegion, ...] = (
        memmap.TAINTED_REGION,
    )
    #: whether tainted code partitions also taint their program memory
    #: words (footnote 3: supported but off by default)
    taint_code_words: bool = False
    #: strict sufficient-condition checking: flag *any* tainted state
    #: element while trusted code runs.  The default (False) applies the
    #: paper's Section 5.1 refinement -- leftover taint is harmless until a
    #: trusted computation depends on it (new taint appears, or the PC is
    #: tainted); this is what lets clean applications verify on commodity
    #: hardware without meeting the letter of condition 1.
    strict_conditions: bool = False

    # ------------------------------------------------------------------
    def is_tainted_input(self, port: str) -> bool:
        return port in self.tainted_input_ports

    def is_untainted_output(self, port: str) -> bool:
        return port.endswith("OUT") and port not in self.tainted_output_ports

    def in_tainted_memory(self, address: int) -> bool:
        return any(region.contains(address) for region in self.tainted_memory)

    def untainted_ram_regions(self) -> List[MemoryRegion]:
        """The RAM address ranges outside every tainted partition."""
        regions: List[MemoryRegion] = []
        cursor = memmap.RAM_BASE
        for tainted in sorted(self.tainted_memory, key=lambda r: r.low):
            if tainted.low > cursor:
                regions.append(
                    MemoryRegion("untainted_ram", cursor, tainted.low)
                )
            cursor = max(cursor, tainted.high)
        if cursor < memmap.RAM_END:
            regions.append(
                MemoryRegion("untainted_ram", cursor, memmap.RAM_END)
            )
        return regions


def default_policy() -> SecurityPolicy:
    """The untrusted-taint non-interference policy used by the evaluation."""
    return SecurityPolicy()


def secret_policy() -> SecurityPolicy:
    """The secrecy twin: secret inputs must not reach non-secret outputs.

    Structurally identical machinery; only the labelling (and the report
    wording) differs -- exactly how the paper treats the two taints.
    """
    return SecurityPolicy(
        name="non-interference (secrecy)",
        kind="secret",
        tainted_input_ports=frozenset({"P5IN"}),
        tainted_output_ports=frozenset({"P6OUT"}),
    )
