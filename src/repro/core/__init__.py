"""The paper's core contribution: application-specific gate-level IFT.

* :mod:`repro.core.labels`     -- information-flow security policies
  (tainted ports, memory partitions, code partitions; the untrusted and
  secret taint kinds are analysed as separate policy instances).
* :mod:`repro.core.violations` -- violation records and the mapping onto
  the five sufficient conditions of Section 5.1.
* :mod:`repro.core.tree`       -- the (pruned) symbolic execution tree.
* :mod:`repro.core.tracker`    -- Algorithm 1: input-independent gate-level
  taint tracking with PC concretisation and conservative state merging.
* :mod:`repro.core.checker`    -- information-flow policy checking over the
  tracker's per-cycle tainted state (Figure 6's second box).
"""

from repro.core.labels import SecurityPolicy, default_policy, secret_policy
from repro.core.violations import (
    CONDITION_OF_KIND,
    Violation,
    ViolationKind,
)
from repro.core.tree import ExecutionTree, TreeNode
from repro.core.tracker import AnalysisResult, TaintTracker, TrackerError
from repro.core.checker import analyze_program, check_conditions
from repro.core.union import analyze_union, build_union_source

__all__ = [
    "SecurityPolicy",
    "default_policy",
    "secret_policy",
    "Violation",
    "ViolationKind",
    "CONDITION_OF_KIND",
    "ExecutionTree",
    "TreeNode",
    "TaintTracker",
    "TrackerError",
    "AnalysisResult",
    "analyze_program",
    "check_conditions",
    "analyze_union",
    "build_union_source",
]
