"""Algorithm 1: input-independent gate-level taint tracking.

The tracker symbolically executes the *entire system binary* on the
gate-level LP430 SoC with every input port driven to tainted/untainted
``X`` per the policy.  Control flow is concrete until an ``X`` (or taint)
reaches the PC; at that point the shadow-decoded instruction yields the
candidate successor PCs, the PC is made concrete in each child while
*retaining its taint*, and exploration continues depth-first.

Termination comes from the paper's conservative approximation: per
PC-changing instruction (and per watchdog power-on reset) the most
conservative state observed so far is kept; a path whose state is a
sub-state of the stored one stops ("the state, or a more conservative
version, has already been explored"); otherwise the stored state is
widened by merging (differing bits become X, taints OR).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.checker import PolicyChecker, check_conditions
from repro.core.labels import SecurityPolicy
from repro.core.tree import ExecutionTree, TreeNode
from repro.core.violations import Violation, ViolationKind
from repro.obs import CLOCK, get_observer
from repro.obs.provenance import ProvenanceRecorder, record_provenance
from repro.obs.timeline import TimelineRecorder, record_timeline
from repro.cpu import compiled_cpu
from repro.isa.encode import DecodedInstruction, EncodeError, decode
from repro.isa.program import Program
from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import EnumerationLimitError, TWord
from repro.resilience.budget import AnalysisBudget
from repro.resilience.errors import (
    AnalysisError,
    AnalysisInterrupted,
    ForkError,
    ReproError,
    SimulationError,
)
from repro.resilience.faults import get_injector
from repro.resilience.progress import ProgressEstimator
from repro.sim.compiled import CompiledCircuit
from repro.sim.runner import PHASE_E, PHASE_F, PHASE_J, GateRunner
from repro.sim.soc import AddressSpace, SoCState


class TrackerError(AnalysisError):
    """Raised when exploration cannot proceed soundly."""

    code = "TRACKER"


# ---------------------------------------------------------------------------
# Code lattice helpers (vectorised over DFF snapshots)
# ---------------------------------------------------------------------------
def codes_cover(general: np.ndarray, specific: np.ndarray) -> bool:
    general_value = general >> 1
    specific_value = specific >> 1
    value_ok = (general_value == 2) | (general_value == specific_value)
    taint_ok = (general & 1) >= (specific & 1)
    return bool((value_ok & taint_ok).all())


def codes_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    value = np.where((a >> 1) == (b >> 1), a >> 1, 2)
    return (value * 2 + ((a | b) & 1)).astype(np.uint8)


def _por_covers(general: Tuple[int, int], specific: Tuple[int, int]) -> bool:
    value_ok = general[0] == UNKNOWN or general[0] == specific[0]
    return value_ok and general[1] >= specific[1]


def _por_merge(a: Tuple[int, int], b: Tuple[int, int]) -> Tuple[int, int]:
    value = a[0] if a[0] == b[0] else UNKNOWN
    return value, a[1] | b[1]


@dataclass
class AnalysisStats:
    """Exploration effort counters (footnote 4's tractability evidence)."""

    paths: int = 0
    forks: int = 0
    merges: int = 0
    terminations_by_merge: int = 0
    cycles_simulated: int = 0
    fast_forwarded_cycles: int = 0
    instructions: int = 0
    wall_seconds: float = 0.0
    max_taint_fraction: float = 0.0
    #: high-water mark of stored conservative (merged) states
    peak_merged_states: int = 0
    #: paths closed at an untainted-but-unbounded computed jump; non-zero
    #: means the exploration under-approximates and needs heuristics
    incomplete_paths: int = 0
    #: worklist entries never explored because a budget was exhausted;
    #: each was widened to the fully-tainted top state (sound degradation)
    drained_paths: int = 0


@dataclass
class AnalysisResult:
    """Everything Figure 6 promises: per-cycle taints distilled into
    violations, plus the exploration tree and effort statistics."""

    program: Program
    policy: SecurityPolicy
    violations: List[Violation]
    tree: ExecutionTree
    stats: AnalysisStats
    #: budget axes whose exhaustion cut the exploration short (empty for
    #: a complete run); see :class:`repro.resilience.AnalysisBudget`
    exhausted: List[str] = field(default_factory=list)
    #: the :class:`repro.obs.provenance.ProvenanceRecorder` that rode
    #: along with the exploration, or None (recording is opt-in)
    provenance: Optional[ProvenanceRecorder] = None
    #: the :class:`repro.obs.timeline.TimelineRecorder` that captured
    #: per-cycle state frames, or None (recording is opt-in)
    timeline: Optional[TimelineRecorder] = None
    #: the compiled circuit the analysis ran on (net-id space for
    #: provenance slicing)
    circuit: Optional[CompiledCircuit] = None

    def explain(self, violation, max_nodes: int = 4096):
        """Backward-slice *violation* (index or object) to its labelled
        taint origins; see :func:`repro.obs.provenance.explain_violation`."""
        from repro.obs.provenance import explain_violation

        return explain_violation(self, violation, max_nodes=max_nodes)

    @property
    def verdict(self) -> str:
        """``secure`` | ``insecure`` | ``inconclusive``.

        *insecure* -- definite (non-advisory) violations exist; cutting
        exploration short only ever *adds* violations, so these stand.
        *secure* -- exploration completed with no definite violation.
        *inconclusive* -- no violation found, but unexplored work was
        widened away (budget exhaustion) or the exploration was
        incomplete, so security was not proven.
        """
        if [v for v in self.violations if not v.advisory]:
            return "insecure"
        if (
            self.exhausted
            or self.stats.drained_paths
            or self.stats.incomplete_paths
        ):
            return "inconclusive"
        return "secure"

    @property
    def degraded(self) -> bool:
        """True when a budget cut the exploration short (worklist items
        were widened to the fully-tainted top state)."""
        return bool(self.exhausted or self.stats.drained_paths)

    @property
    def secure(self) -> bool:
        """True when no *non-advisory* violation exists (and exploration
        was complete): the non-interference property holds."""
        return self.verdict == "secure"

    def violated_conditions(self, include_advisory: bool = False) -> Set[int]:
        relevant = [
            v
            for v in self.violations
            if include_advisory or not v.advisory
        ]
        return check_conditions(relevant)

    def violating_stores(self) -> List[int]:
        """Program addresses of stores needing masks (root causes, C2)."""
        return sorted(
            {
                violation.address
                for violation in self.violations
                if violation.kind
                == ViolationKind.TAINTED_WRITE_UNTAINTED_MEMORY
            }
        )

    def tasks_needing_watchdog(self) -> List[str]:
        """Tasks whose control flow can become tainted (watchdog repair)."""
        return sorted(
            {
                violation.task
                for violation in self.violations
                if violation.kind == ViolationKind.TAINTED_CONTROL_FLOW
            }
        )

    def report(self) -> str:
        lines = [
            f"analysis of {self.program.name!r} "
            f"under policy {self.policy.name!r} ({self.policy.kind}):",
            f"  paths={self.stats.paths} forks={self.stats.forks} "
            f"merges={self.stats.merges} "
            f"cycles={self.stats.cycles_simulated} "
            f"wall={self.stats.wall_seconds:.2f}s",
        ]
        verdict = self.verdict
        if verdict == "secure":
            lines.append(
                "  SECURE: no possible information-flow violations"
            )
        elif verdict == "inconclusive":
            lines.append(
                "  INCONCLUSIVE: security not proven"
            )
            if self.exhausted:
                lines.append(
                    "  budget(s) exhausted: "
                    + ", ".join(sorted(self.exhausted))
                )
            if self.stats.drained_paths:
                lines.append(
                    f"  {self.stats.drained_paths} unexplored path(s) "
                    "widened to the fully-tainted X state"
                )
            if self.stats.incomplete_paths:
                lines.append(
                    f"  exploration incomplete: "
                    f"{self.stats.incomplete_paths} path(s) ended at an "
                    "unbounded computed control transfer"
                )
            for violation in self.violations:
                lines.append("  " + violation.render())
        else:
            lines.append(
                f"  INSECURE: conditions violated: "
                f"{sorted(self.violated_conditions())}"
            )
            if self.exhausted:
                lines.append(
                    "  budget(s) exhausted: "
                    + ", ".join(sorted(self.exhausted))
                    + " (violations above are definite; more may exist)"
                )
            if self.stats.incomplete_paths:
                lines.append(
                    f"  exploration incomplete: "
                    f"{self.stats.incomplete_paths} path(s) ended at an "
                    "unbounded computed control transfer"
                )
            for violation in self.violations:
                lines.append("  " + violation.render())
        return "\n".join(lines)


@dataclass
class _WorkItem:
    snapshot: SoCState
    node_id: int
    #: False for an item requeued mid-path (interrupt/budget pause), so
    #: the resumed continuation does not double-count as a new path
    counted: bool = True


@dataclass
class _BranchEntry:
    """Per-PC-changing-instruction exploration bookkeeping."""

    #: digests of exactly-explored states (their continuations ran)
    seen: set = field(default_factory=set)
    merged: Optional[SoCState] = None
    #: True once exploration has continued from (a superset of) `merged`,
    #: making merged-coverage a sound termination criterion.
    widened: bool = False


def _site(key) -> str:
    """Human-readable trace label for a merge-table key."""
    return key if isinstance(key, str) else f"0x{key:04x}"


def _state_digest(state: SoCState) -> bytes:
    """A canonical fingerprint of a snapshot (cycle count excluded)."""
    import hashlib

    bits, xmask, tmask, wdt, timer, outputs = state.space_state
    digest = hashlib.sha1()
    digest.update(state.dff_codes.tobytes())
    digest.update(bits.tobytes())
    digest.update(xmask.tobytes())
    digest.update(tmask.tobytes())
    digest.update(
        repr(
            (
                wdt.control,
                wdt.counter,
                wdt.corrupted,
                wdt.pending_reset,
                wdt.pending_reset_taint,
                timer,
                outputs,
                state.pending_por,
            )
        ).encode()
    )
    return digest.digest()


def build_runner(
    program: Program, policy: SecurityPolicy, circuit: CompiledCircuit
) -> GateRunner:
    """The analysis substrate: a gate-level SoC with the policy's taints
    applied (input/output port labels, tainted code words, tainted RAM
    regions).  Shared by :class:`TaintTracker` and the parallel workers,
    so both simulate the exact same machine."""
    space = AddressSpace(
        tainted_input_ports=tuple(policy.tainted_input_ports),
        tainted_output_ports=tuple(policy.tainted_output_ports),
    )
    try:
        runner = GateRunner(circuit, program, space=space)
    except ReproError:
        raise
    except Exception as error:
        # The substrate can fail during the power-on reset too (e.g.
        # an injected gate-eval fault); keep the typed-error contract.
        raise SimulationError(
            f"gate-level substrate failed during reset: {error}"
        ) from error
    if policy.taint_code_words:
        untrusted = {t.name for t in program.untrusted_tasks()}
        program.load_rom_tainted(runner.soc.rom, untrusted)
    for region in policy.tainted_memory:
        space.ram.taint_region(region.low, region.high)
    return runner


class TaintTracker:
    """Runs Algorithm 1 for one program under one policy."""

    def __init__(
        self,
        program: Program,
        policy: Optional[SecurityPolicy] = None,
        circuit: Optional[CompiledCircuit] = None,
        max_cycles: int = 2_000_000,
        max_paths: int = 4_096,
        fork_limit: int = 64,
        exact_branch_visits: int = 512,
        obs=None,
        budget: Optional[AnalysisBudget] = None,
        checkpointer=None,
        provenance: Optional[ProvenanceRecorder] = None,
        timeline: Optional[TimelineRecorder] = None,
        jobs: int = 1,
        progress: Optional[ProgressEstimator] = None,
    ):
        self.program = program
        #: observability sink; defaults to the process-wide current
        #: observer (the no-op NULL_OBSERVER unless one is installed)
        self.obs = obs if obs is not None else get_observer()
        self.policy = policy if policy is not None else SecurityPolicy()
        self.circuit = circuit if circuit is not None else compiled_cpu()
        self.max_cycles = max_cycles
        self.max_paths = max_paths
        #: resource ceilings with sound degradation; the legacy
        #: *max_paths* argument becomes the default budget's path cap
        self.budget = (
            budget
            if budget is not None
            else AnalysisBudget(max_paths=max_paths)
        )
        #: optional :class:`repro.resilience.Checkpointer` for periodic
        #: and on-interrupt state saves
        self.checkpointer = checkpointer
        #: optional per-bit taint provenance recorder, installed
        #: process-wide for the duration of :meth:`run`
        self.provenance = provenance
        #: optional per-cycle timeline flight recorder, installed
        #: process-wide for the duration of :meth:`run`
        self.timeline = timeline
        #: optional :class:`repro.resilience.ProgressEstimator` taking
        #: periodic exploration snapshots (serial mode only: the parallel
        #: coordinator owns its own worklist)
        self.progress = progress
        if progress is not None:
            progress.attach(self)
        self.fork_limit = fork_limit
        #: how many times a concrete PC-changing instruction is revisited
        #: *exactly* before switching to Algorithm 1's continue-from-the-
        #: conservative-state widening.  Bounded constant-trip loops below
        #: this budget simulate precisely (so clean kernels verify clean);
        #: anything longer converges through the conservative merge.
        self.exact_branch_visits = exact_branch_visits
        #: worker processes for path-level parallel exploration (1 =
        #: classic serial mode); see :mod:`repro.parallel`
        self.jobs = max(1, int(jobs))
        self._visit_counts: Dict[object, int] = {}

        self.runner = build_runner(program, self.policy, self.circuit)

        self.checker = PolicyChecker(program, self.policy)
        self.tree = ExecutionTree()
        self.stats = AnalysisStats()
        self._table: Dict[object, SoCState] = {}
        self._merged_states = 0
        self._scratch_space = AddressSpace()
        #: unexplored work; None until run() (or a resume) seeds it, so
        #: a resumed tracker does not re-create the root node
        self._worklist: Optional[List[_WorkItem]] = None
        self._interrupt_reason: Optional[str] = None
        self._exhausted: List[str] = []

    # ------------------------------------------------------------------
    # Snapshot lattice (via a scratch AddressSpace for peripheral state)
    # ------------------------------------------------------------------
    def _covers(self, general: SoCState, specific: SoCState) -> bool:
        if not codes_cover(general.dff_codes, specific.dff_codes):
            return False
        if not _por_covers(general.pending_por, specific.pending_por):
            return False
        self._scratch_space.restore(general.space_state)
        return self._scratch_space.covers(specific.space_state)

    def _merge(self, a: SoCState, b: SoCState) -> SoCState:
        self._scratch_space.restore(a.space_state)
        self._scratch_space.merge(b.space_state)
        return SoCState(
            dff_codes=codes_merge(a.dff_codes, b.dff_codes),
            space_state=self._scratch_space.snapshot(),
            pending_por=_por_merge(a.pending_por, b.pending_por),
            cycle=max(a.cycle, b.cycle),
        )

    def _entry(self, key) -> "_BranchEntry":
        entry = self._table.get(key)
        if entry is None:
            entry = _BranchEntry()
            self._table[key] = entry
        return entry

    def _note_merged_state(self) -> None:
        self._merged_states += 1
        if self._merged_states > self.stats.peak_merged_states:
            self.stats.peak_merged_states = self._merged_states

    def _visit_widening(self, key, state: SoCState) -> Tuple[bool, SoCState]:
        """Conservative-state bookkeeping for widening points (X-PC forks
        and power-on resets), where exploration continues from the merged
        state -- so a later state covered by the merge is soundly done.

        Returns ``(already_covered, merged_state)``.
        """
        entry = self._entry(key)
        if (
            entry.widened
            and entry.merged is not None
            and self._covers(entry.merged, state)
        ):
            self.stats.terminations_by_merge += 1
            return True, entry.merged
        if entry.merged is None:
            entry.merged = state
            self._note_merged_state()
        else:
            entry.merged = self._merge(entry.merged, state)
            self.stats.merges += 1
            if self.obs.enabled:
                self.obs.emit(
                    "merge", site=_site(key), cycle=state.cycle
                )
        entry.widened = True
        return False, entry.merged

    def _visit_concrete(
        self, key, state: SoCState, digest: Optional[bytes] = None
    ) -> Tuple[str, SoCState]:
        """Bookkeeping for concrete PC-changing instructions.

        Within the exact-visit budget each visited state is fingerprinted;
        revisiting an *identical* state is a true "already explored" (its
        continuation ran -- or is this very loop, which then repeats
        forever).  The accumulated merge only becomes a termination
        criterion after the budget forces a switch to the conservative
        continuation, which is when the merged state's behaviour actually
        gets explored (Section 4.1's "simulation continues from the
        conservative state").

        Returns ``(verdict, state_to_continue_from)`` with verdict one of
        ``"stop"``, ``"exact"``, ``"widened"``.
        """
        entry = self._entry(key)
        if digest is None:
            digest = _state_digest(state)
        if digest in entry.seen:
            self.stats.terminations_by_merge += 1
            return "stop", state
        if (
            entry.widened
            and entry.merged is not None
            and self._covers(entry.merged, state)
        ):
            self.stats.terminations_by_merge += 1
            return "stop", entry.merged
        if entry.merged is None:
            entry.merged = state
            self._note_merged_state()
        else:
            entry.merged = self._merge(entry.merged, state)
            self.stats.merges += 1
            if self.obs.enabled:
                self.obs.emit(
                    "merge", site=_site(key), cycle=state.cycle
                )
        if len(entry.seen) < self.exact_branch_visits:
            entry.seen.add(digest)
            return "exact", state
        entry.widened = True
        return "widened", entry.merged

    # ------------------------------------------------------------------
    # Shadow decode
    # ------------------------------------------------------------------
    def _decode_at(self, address: int) -> Optional[DecodedInstruction]:
        injector = get_injector()
        if injector is not None and injector.on_decode(
            address, self.runner.soc.cycle
        ):
            return None  # injected decode failure: path ends "illegal"
        try:
            return decode(self.program.slice_from(address), address)
        except EncodeError:
            return None

    def _task_info(self, address: int) -> Tuple[str, bool]:
        task = self.program.task_of(address)
        if task is None:
            return "", True
        return task.name, task.trusted

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> AnalysisResult:
        """Explore to completion, budget exhaustion, or interrupt.

        On budget exhaustion the remaining worklist is *drained*: every
        unexplored snapshot is widened to the fully-tainted top state and
        the result's verdict degrades to ``inconclusive`` (or stays
        ``insecure`` when definite violations were already found) -- the
        run never discards its work by raising.  On a cooperative
        interrupt (:meth:`request_interrupt`) the state is checkpointed
        (when a checkpointer is attached) and a typed
        :class:`AnalysisInterrupted` is raised; the tracker itself stays
        resumable, in-process via a second :meth:`run` call or across
        processes via :meth:`restore_checkpoint`.
        """
        obs = self.obs
        start_time = CLOCK.wall()
        soc = self.runner.soc
        if self._worklist is None:
            root = self.tree.new_node(None, 0, soc.cycle)
            self._worklist = [_WorkItem(soc.snapshot(), root.node_id)]
        worklist = self._worklist
        budget = self.budget
        budget.start()
        self._exhausted = []

        recording = (
            record_provenance(self.provenance)
            if self.provenance is not None
            else nullcontext()
        )
        flight = (
            record_timeline(self.timeline)
            if self.timeline is not None
            else nullcontext()
        )
        try:
            with obs.span("explore"), recording, flight:
                if self._parallel_jobs() > 1:
                    from repro.parallel.coordinator import (
                        run_worklist_parallel,
                    )

                    run_worklist_parallel(self)
                else:
                    self._run_worklist_serial(worklist, budget)
        finally:
            self.stats.wall_seconds += CLOCK.wall() - start_time

        if self.progress is not None:
            # One last authoritative snapshot (drained worklists leave
            # pending at 0; budget exhaustion leaves its fractions at 1).
            self.progress.update(len(worklist), force=True, done=True)
        with obs.span("check"):
            violations = self.checker.violations()
        self._publish(obs, violations)
        return AnalysisResult(
            program=self.program,
            policy=self.policy,
            violations=violations,
            tree=self.tree,
            stats=self.stats,
            exhausted=list(self._exhausted),
            provenance=self.provenance,
            timeline=self.timeline,
            circuit=self.circuit,
        )

    def _run_worklist_serial(
        self, worklist: List[_WorkItem], budget: AnalysisBudget
    ) -> None:
        """The classic sequential drain of the fork tree."""
        soc = self.runner.soc
        while worklist:
            if self._interrupt_reason is not None:
                self._handle_interrupt()
            reasons = budget.exhausted_reasons(
                self.stats, self._merged_states
            )
            if reasons:
                self._drain(worklist, reasons)
                break
            if (
                self.checkpointer is not None
                and self.checkpointer.due(self.stats.paths)
            ):
                self.checkpointer.save(self)
            item = worklist.pop()
            soc.restore(item.snapshot)
            if item.counted:
                self.stats.paths += 1
            if self.progress is not None:
                self.progress.update(len(worklist))
            try:
                self._explore_path(item.node_id, worklist)
            except ReproError:
                raise
            except Exception as error:
                raise SimulationError(
                    "gate-level exploration failed at cycle "
                    f"{soc.cycle} (path {self.stats.paths}): "
                    f"{error}",
                    cycle=soc.cycle,
                    paths=self.stats.paths,
                    node=item.node_id,
                ) from error

    def _parallel_jobs(self) -> int:
        """The worker count actually used, after the documented
        serial-forcing restrictions.

        Provenance recording hooks every gate evaluation process-wide
        and its edge ring is ordered by global cycle, so it cannot ride
        along with speculative out-of-order workers: recording forces
        serial mode (with a warning).  Fault injection likewise arms a
        process-global seeded hook whose firing schedule *is* the test
        vector -- replaying it across workers would change it."""
        if self.jobs <= 1:
            return 1
        import warnings

        if self.provenance is not None:
            warnings.warn(
                "provenance recording forces serial exploration; "
                f"ignoring jobs={self.jobs} (see DESIGN.md, "
                "'Parallel exploration')",
                RuntimeWarning,
                stacklevel=3,
            )
            return 1
        if self.timeline is not None:
            warnings.warn(
                "timeline recording forces serial exploration; "
                f"ignoring jobs={self.jobs} (frame order is the "
                "timeline -- speculative workers would scramble it)",
                RuntimeWarning,
                stacklevel=3,
            )
            return 1
        if get_injector() is not None:
            warnings.warn(
                "fault injection forces serial exploration; "
                f"ignoring jobs={self.jobs}",
                RuntimeWarning,
                stacklevel=3,
            )
            return 1
        return self.jobs

    # ------------------------------------------------------------------
    # Resilience: interrupts, degradation, checkpoint/resume
    # ------------------------------------------------------------------
    def request_interrupt(self, reason: str = "interrupt") -> None:
        """Ask the exploration to stop at the next safe boundary (a
        worklist pop or an instruction fetch).  Signal-handler safe: it
        only sets a flag."""
        self._interrupt_reason = reason

    def _handle_interrupt(self) -> None:
        reason = self._interrupt_reason or "interrupt"
        self._interrupt_reason = None
        path = None
        if self.checkpointer is not None:
            path = str(self.checkpointer.save(self, reason=reason))
        if self.obs.enabled:
            self.obs.emit(
                "interrupted",
                reason=reason,
                checkpoint=path,
                paths=self.stats.paths,
                cycles=self.stats.cycles_simulated,
            )
        message = (
            f"analysis interrupted ({reason}) after "
            f"{self.stats.paths} path(s) / "
            f"{self.stats.cycles_simulated} cycles"
        )
        if path is not None:
            message += f"; checkpoint saved to {path}"
        raise AnalysisInterrupted(
            message,
            reason=reason,
            checkpoint=path,
            paths=self.stats.paths,
            cycles=self.stats.cycles_simulated,
        )

    def _widen_to_top(self, snapshot: SoCState) -> SoCState:
        """The fully-tainted top state at *snapshot*'s position: every
        DFF and RAM word becomes tainted-``X``.  Any continuation of the
        real state is covered by this, which is what makes draining
        unexplored work sound (over-taint only adds violations)."""
        bits, xmask, tmask, wdt, timer, outputs = snapshot.space_state
        return SoCState(
            dff_codes=np.full_like(snapshot.dff_codes, 5),
            space_state=(
                np.zeros_like(bits),
                np.full_like(xmask, 0xFFFF),
                np.full_like(tmask, 0xFFFF),
                wdt,
                timer,
                outputs,
            ),
            pending_por=(UNKNOWN, 1),
            cycle=snapshot.cycle,
        )

    def _drain(self, worklist: List[_WorkItem], reasons: List[str]) -> None:
        """Sound degradation: widen every unexplored worklist entry to
        the top state, record it in the merge table, and mark the
        analysis as budget-exhausted (verdict becomes inconclusive)."""
        obs = self.obs
        entry = self._entry("DRAINED")
        for item in worklist:
            widened = self._widen_to_top(item.snapshot)
            if entry.merged is None:
                entry.merged = widened
                self._note_merged_state()
            else:
                entry.merged = self._merge(entry.merged, widened)
            entry.widened = True
            node = self.tree.nodes[item.node_id]
            node.end_reason = "drained"
            node.end_cycle = item.snapshot.cycle
            self.stats.drained_paths += 1
            if obs.enabled:
                obs.emit(
                    "degraded",
                    node=item.node_id,
                    cycle=item.snapshot.cycle,
                    reasons=list(reasons),
                )
        worklist.clear()
        self._exhausted = list(reasons)
        if obs.enabled:
            obs.emit(
                "budget_exhausted",
                reasons=list(reasons),
                paths=self.stats.paths,
                cycles=self.stats.cycles_simulated,
                drained=self.stats.drained_paths,
            )

    def config_digest(self) -> str:
        """Fingerprint of everything a checkpoint's validity depends on:
        the program image (code + initial data + taints), the policy, and
        the netlist shape."""
        import hashlib

        digest = hashlib.sha256()
        rom = self.runner.soc.rom
        digest.update(rom.words.tobytes())
        digest.update(rom.tmask.tobytes())
        digest.update(repr(sorted(self.program.data.items())).encode())
        policy = self.policy
        digest.update(
            repr(
                (
                    policy.name,
                    policy.kind,
                    sorted(policy.tainted_input_ports),
                    sorted(policy.tainted_output_ports),
                    tuple(
                        (r.low, r.high) for r in policy.tainted_memory
                    ),
                    policy.taint_code_words,
                    policy.strict_conditions,
                )
            ).encode()
        )
        digest.update(str(len(self.circuit.netlist.net_names)).encode())
        return digest.hexdigest()

    def export_checkpoint(self) -> dict:
        """Everything needed to continue this exploration elsewhere."""
        worklist = self._worklist if self._worklist is not None else []
        return {
            "worklist": [
                (item.snapshot, item.node_id, item.counted)
                for item in worklist
            ],
            "table": self._table,
            "stats": self.stats,
            "tree_nodes": self.tree.nodes,
            "tree_next_id": self.tree._next_id,
            "checker": self.checker.export_state(),
            "merged_states": self._merged_states,
            "provenance": (
                self.provenance.export_state()
                if self.provenance is not None
                else None
            ),
            "timeline": (
                self.timeline.export_state()
                if self.timeline is not None
                else None
            ),
            "obs": self.obs.export_state(),
        }

    def restore_checkpoint(self, payload: dict) -> None:
        """Adopt a checkpoint payload (see :mod:`repro.resilience`'s
        ``read_checkpoint`` for validation) and become resumable."""
        self._worklist = [
            _WorkItem(snapshot, node_id, counted)
            for snapshot, node_id, counted in payload["worklist"]
        ]
        self._table = payload["table"]
        self.stats = payload["stats"]
        self.tree.nodes = payload["tree_nodes"]
        self.tree._next_id = payload["tree_next_id"]
        self.checker.restore_state(payload["checker"])
        self._merged_states = payload["merged_states"]
        # Keys added after checkpoint-format introduction: absent in old
        # checkpoints, so .get() keeps them restorable.
        provenance_state = payload.get("provenance")
        if provenance_state is not None and self.provenance is not None:
            self.provenance.restore_state(provenance_state)
        timeline_state = payload.get("timeline")
        if timeline_state is not None and self.timeline is not None:
            self.timeline.restore_state(timeline_state)
        obs_state = payload.get("obs")
        if obs_state is not None:
            self.obs.restore_state(obs_state)

    def _publish(self, obs, violations: List[Violation]) -> None:
        """Roll the completed run into metrics and trace events."""
        if not obs.enabled:
            return
        stats = self.stats
        metrics = obs.metrics
        metrics.counter("tracker.cycles").inc(stats.cycles_simulated)
        metrics.counter("tracker.fast_forwarded_cycles").inc(
            stats.fast_forwarded_cycles
        )
        metrics.counter("tracker.instructions").inc(stats.instructions)
        metrics.counter("tracker.paths").inc(stats.paths)
        metrics.counter("tracker.forks").inc(stats.forks)
        metrics.counter("tracker.merges").inc(stats.merges)
        metrics.counter("tree.nodes").inc(len(self.tree))
        metrics.counter("tree.pruned").inc(stats.terminations_by_merge)
        metrics.counter("tracker.incomplete_paths").inc(
            stats.incomplete_paths
        )
        metrics.counter("tracker.drained_paths").inc(stats.drained_paths)
        metrics.counter("tracker.violations").inc(len(violations))
        metrics.gauge("tracker.peak_merged_states").update_max(
            stats.peak_merged_states
        )
        if self.provenance is not None:
            summary = self.provenance.snapshot()
            metrics.counter("provenance.edges").inc(
                summary["edges_recorded"]
            )
            metrics.gauge("provenance.retained").set(
                summary["edges_retained"]
            )
            obs.emit(
                "provenance",
                edges=summary["edges_recorded"],
                retained=summary["edges_retained"],
                capacity=summary["capacity"],
                truncated=summary["truncated"],
                labels=summary["labels"],
            )
            if summary["truncated"]:
                obs.emit(
                    "provenance_truncated",
                    edges=summary["edges_recorded"],
                    capacity=summary["capacity"],
                )
        if self.timeline is not None:
            summary = self.timeline.snapshot()
            metrics.counter("timeline.frames").inc(summary["frames"])
            metrics.gauge("timeline.keyframes").set(summary["keyframes"])
            obs.emit(
                "timeline",
                frames=summary["frames"],
                keyframes=summary["keyframes"],
                truncated=summary["truncated"],
                max_frames=summary["max_frames"],
            )
        for violation in violations:
            obs.emit(
                "violation",
                kind=violation.kind,
                condition=violation.condition,
                address=violation.address,
                task=violation.task,
                advisory=violation.advisory,
            )

    # ------------------------------------------------------------------
    def _explore_path(
        self, node_id: int, worklist: List[_WorkItem]
    ) -> None:
        soc = self.runner.soc
        node = self.tree.nodes[node_id]
        progress = self.progress
        current: Optional[DecodedInstruction] = None
        task_name, task_trusted = "", True
        baseline_taint: Optional[np.ndarray] = None
        control_tainted = False

        while True:
            if self.stats.cycles_simulated >= self.max_cycles:
                node.end_reason = "limit"
                node.end_cycle = soc.cycle
                return

            phase = self.runner.phase()
            if phase == PHASE_F and (
                self._interrupt_reason is not None
                or self.budget.mid_path_exhausted(self.stats)
            ):
                # Pause at the fetch boundary: requeue this exact state
                # (resuming from it re-derives every per-instruction
                # local, so the continuation is bit-identical) and let
                # run() decide -- checkpoint+raise on interrupt, drain
                # on budget exhaustion.
                worklist.append(
                    _WorkItem(soc.snapshot(), node.node_id, counted=False)
                )
                return
            if phase < 0:
                # The FSM's own state bits are unknown: the machine has
                # diverged beyond cycle-accurate tracking (e.g. a corrupted
                # watchdog's tainted reset rail).  The root-cause violation
                # is already on record; close the path.
                node.end_reason = "state_lost"
                node.end_cycle = soc.cycle
                if current is not None:
                    self.checker.note_unbounded_control(
                        current, task_name, task_trusted, soc.cycle,
                        tainted=True,
                    )
                return
            if phase == 0:  # F: an instruction fetch is about to happen
                if progress is not None:
                    progress.tick(len(worklist))
                pc_word = soc.pc()
                if pc_word.xmask:
                    raise TrackerError(
                        "PC unknown at a fetch boundary; fork handling "
                        "should have concretised it"
                    )
                address = pc_word.bits
                current = self._decode_at(address)
                if current is None:
                    node.end_reason = "illegal"
                    node.end_cycle = soc.cycle
                    return
                task_name, task_trusted = self._task_info(address)
                control_tainted = bool(pc_word.tmask)
                dff_codes = self.circuit.dff_state(soc.state)
                baseline_taint = dff_codes & 1
                if self.obs.enabled:
                    self.obs.histogram("tracker.taint_density").observe(
                        float(baseline_taint.mean())
                    )
                self.checker.note_instruction_start(
                    current,
                    task_name,
                    task_trusted,
                    soc.cycle,
                    any_state_taint=bool(baseline_taint.any()),
                    pc_taint=pc_word.tmask,
                )
                self.stats.instructions += 1

            events = soc.step()
            self.stats.cycles_simulated += 1
            if events.reset[0] != ONE:
                self.checker.note_events(
                    current,
                    task_name,
                    task_trusted,
                    events,
                    soc.space.watchdog.corrupted,
                    control_tainted=control_tainted,
                )

            if events.reset[0] == ONE:
                # A power-on reset boundary (watchdog expiry); converge on
                # the conservative post-reset state.
                current = None
                covered, merged = self._visit_widening(
                    "POR", soc.snapshot()
                )
                if covered:
                    node.end_reason = "merged"
                    node.end_cycle = soc.cycle
                    if self.obs.enabled:
                        self.obs.emit(
                            "prune",
                            site="POR",
                            node=node.node_id,
                            cycle=soc.cycle,
                        )
                    return
                soc.restore(merged)
                continue

            if phase in (PHASE_E, PHASE_J) and current is not None:
                if task_trusted and baseline_taint is not None:
                    taint_now = self.circuit.dff_state(soc.state) & 1
                    self.checker.note_instruction_end(
                        current,
                        task_name,
                        task_trusted,
                        soc.cycle,
                        taint_grew=bool(
                            (taint_now & ~baseline_taint).any()
                        ),
                    )
                done = self._instruction_completed(
                    current, node, worklist
                )
                if done:
                    return
                current = None

    # ------------------------------------------------------------------
    def _instruction_completed(
        self,
        instruction: DecodedInstruction,
        node: TreeNode,
        worklist: List[_WorkItem],
    ) -> bool:
        """Handle PC-changing instructions; True ends the current path."""
        soc = self.runner.soc
        pc_word = soc.pc()

        if pc_word.xmask:
            return self._fork(instruction, pc_word, node, worklist)

        # Idle self-loop: fast-forward to watchdog expiry or end the path.
        if instruction.is_self_loop:
            watchdog = soc.space.watchdog
            remaining = watchdog.cycles_until_expiry()
            if remaining is None:
                node.end_reason = "halt"
                node.end_cycle = soc.cycle
                return True
            por = watchdog.fast_forward(remaining)
            soc.space.timer.fast_forward(remaining)
            soc.pending_por = por
            soc.cycle += remaining
            self.stats.fast_forwarded_cycles += remaining
            return False

        changes_pc = (
            instruction.is_jump
            or instruction.writes_pc
            or instruction.mnemonic == "call"
        )
        if not changes_pc:
            return False

        key = instruction.address
        verdict, continuation = self._visit_concrete(key, soc.snapshot())
        if verdict == "stop":
            node.end_reason = "merged"
            node.end_cycle = soc.cycle
            if self.obs.enabled:
                self.obs.emit(
                    "prune",
                    site=_site(key),
                    node=node.node_id,
                    cycle=soc.cycle,
                )
            return True
        if verdict == "widened":
            # Continue from the conservative state (Section 4.1), keeping
            # the PC on this path's concrete successor.
            soc.restore(continuation)
            merged_pc_taint = soc.pc().tmask
            soc.force_pc(pc_word.bits, pc_word.tmask | merged_pc_taint)
            if self.obs.enabled:
                self.obs.emit(
                    "widen",
                    site=_site(key),
                    node=node.node_id,
                    cycle=soc.cycle,
                )
        return False

    # ------------------------------------------------------------------
    def _fork(
        self,
        instruction: DecodedInstruction,
        pc_word: TWord,
        node: TreeNode,
        worklist: List[_WorkItem],
    ) -> bool:
        soc = self.runner.soc
        if instruction.is_conditional_jump:
            candidates = [instruction.jump_target, instruction.fallthrough]
        else:
            try:
                candidates = sorted(
                    pc_word.possible_values(limit=self.fork_limit)
                )
            except EnumerationLimitError:
                # A computed control transfer through a widely unknown
                # target (e.g. a return address clobbered by the Figure 4
                # smear).  Exploring 64K successors is pointless; report
                # the control-flow loss and close the path.  When the
                # target is untainted the analysis is marked incomplete
                # instead of silently under-approximating.
                task_name, task_trusted = self._task_info(
                    instruction.address
                )
                self.checker.note_unbounded_control(
                    instruction,
                    task_name,
                    task_trusted,
                    soc.cycle,
                    tainted=bool(pc_word.tmask),
                )
                if not pc_word.tmask:
                    self.stats.incomplete_paths += 1
                node.end_reason = "unbounded"
                node.end_cycle = soc.cycle
                node.fork_address = instruction.address
                return True
            except ValueError as error:
                # Any *other* ValueError is a genuine bug, not the
                # enumeration tripwire: surface it typed, with the fork
                # site fully identified, instead of silently closing the
                # path as "unbounded control".
                raise ForkError(
                    "PC concretisation failed at fork site "
                    f"pc=0x{instruction.address:04x} "
                    f"cycle={soc.cycle} "
                    f"(fork #{self.stats.forks + 1}): {error}",
                    pc=instruction.address,
                    cycle=soc.cycle,
                    forks=self.stats.forks,
                ) from error

        covered, merged = self._visit_widening(
            instruction.address, soc.snapshot()
        )
        node.end_reason = "merged" if covered else "fork"
        node.end_cycle = soc.cycle
        node.fork_address = instruction.address
        if covered:
            if self.obs.enabled:
                self.obs.emit(
                    "prune",
                    site=_site(instruction.address),
                    node=node.node_id,
                    cycle=soc.cycle,
                )
            return True

        self.stats.forks += 1
        children = []
        for candidate in candidates:
            soc.restore(merged)
            soc.force_pc(candidate, pc_word.tmask)
            child = self.tree.new_node(
                node.node_id, candidate, soc.cycle, pc_taint=pc_word.tmask
            )
            worklist.append(_WorkItem(soc.snapshot(), child.node_id))
            children.append(child.node_id)
        if self.obs.enabled:
            self.obs.emit(
                "fork",
                site=_site(instruction.address),
                node=node.node_id,
                children=children,
                targets=[f"0x{c:04x}" for c in candidates],
                pc_tainted=bool(pc_word.tmask),
                cycle=soc.cycle,
            )
        return True
