"""The pruned symbolic execution tree (Figure 7's right-hand structure).

The tracker records one node per explored path segment, with fork edges at
PC-concretisation points and merge terminations where a path reached a
sub-state of a previously observed conservative state.  The tree is kept
light -- path structure, fork metadata and per-node cycle counts -- while
heavyweight per-cycle data stays inside the tracker's streaming checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TreeNode:
    """One path segment between control-flow decision points."""

    node_id: int
    parent: Optional[int]
    start_pc: int
    start_cycle: int
    pc_taint: int = 0
    end_reason: str = "running"  # "fork" | "merged" | "halt" | "limit"
    end_pc: Optional[int] = None
    end_cycle: Optional[int] = None
    fork_address: Optional[int] = None
    children: List[int] = field(default_factory=list)


class ExecutionTree:
    """Container for the exploration structure."""

    def __init__(self):
        self.nodes: Dict[int, TreeNode] = {}
        self._next_id = 0

    def new_node(
        self,
        parent: Optional[int],
        start_pc: int,
        start_cycle: int,
        pc_taint: int = 0,
    ) -> TreeNode:
        node = TreeNode(
            node_id=self._next_id,
            parent=parent,
            start_pc=start_pc,
            start_cycle=start_cycle,
            pc_taint=pc_taint,
        )
        self.nodes[node.node_id] = node
        if parent is not None:
            self.nodes[parent].children.append(node.node_id)
        self._next_id += 1
        return node

    @property
    def root(self) -> Optional[TreeNode]:
        return self.nodes.get(0)

    def __len__(self) -> int:
        return len(self.nodes)

    def leaves(self) -> List[TreeNode]:
        return [node for node in self.nodes.values() if not node.children]

    def depth_of(self, node_id: int) -> int:
        depth = 0
        node = self.nodes[node_id]
        while node.parent is not None:
            node = self.nodes[node.parent]
            depth += 1
        return depth

    def summary(self) -> dict:
        """Aggregate shape statistics (JSON-ready; feeds ``--json`` and
        the obs metrics snapshot)."""
        end_reasons: Dict[str, int] = {}
        for node in self.nodes.values():
            end_reasons[node.end_reason] = (
                end_reasons.get(node.end_reason, 0) + 1
            )
        return {
            "nodes": len(self.nodes),
            "leaves": len(self.leaves()),
            "max_depth": (
                max(self.depth_of(n.node_id) for n in self.nodes.values())
                if self.nodes
                else 0
            ),
            "end_reasons": dict(sorted(end_reasons.items())),
        }

    def render(self) -> str:
        """ASCII rendering of the tree (the Figure 7 style diagram)."""
        lines: List[str] = []

        def visit(node_id: int, depth: int) -> None:
            node = self.nodes[node_id]
            indent = "  " * depth
            taint = " [tainted PC]" if node.pc_taint else ""
            span = ""
            if node.end_cycle is not None:
                span = f" cycles {node.start_cycle}..{node.end_cycle}"
            lines.append(
                f"{indent}node {node.node_id}: pc=0x{node.start_pc:04x}"
                f"{span} -> {node.end_reason}{taint}"
            )
            for child in node.children:
                visit(child, depth + 1)

        if self.nodes:
            visit(0, 0)
        return "\n".join(lines)
