"""Information-flow policy checking (Figure 6's second stage).

The :class:`PolicyChecker` consumes the tracker's per-cycle events and
state probes *streamingly* and materialises :class:`Violation` records.
Checks map one-to-one onto the sufficient conditions of Section 5.1:

1. processor state elements must be untainted when trusted code runs
   (probed at every trusted-task instruction fetch, plus the PC-taint and
   watchdog-integrity checks that protect that invariant);
2. stores must not spread taint into untainted memory partitions;
3. trusted code must not load from tainted partitions (or load tainted
   data);
4. trusted code must not read tainted input ports;
5. untainted output ports must never see tainted data, a tainted task, or
   an attacker-steerable (smeared) store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.labels import SecurityPolicy
from repro.core.violations import Violation, ViolationKind
from repro.isa.encode import DecodedInstruction
from repro.isa.program import Program
from repro.logic.ternary import ONE, ZERO
from repro.logic.words import TWord
from repro.memmap import MemoryRegion


def _address_may_touch(address: TWord, region: MemoryRegion) -> bool:
    """Can a load/store through *address* reach any word of *region*?

    Only *unknown* address bits widen the footprint.  Tainted-but-known
    bits are pinned on this path -- the tracker explores the attacker's
    other choices as separate paths -- which is exactly how the paper can
    "verify that no possible execution of the tainted code can generate an
    address outside of the regions of data memory that are allowed to be
    tainted" even when the masking instructions themselves run under
    tainted control flow (Section 5.2).
    """
    wildcard = address.xmask
    known = 0xFFFF & ~wildcard
    want = address.bits & known
    if wildcard == 0:
        return region.contains(address.bits)
    for candidate in range(region.low, region.high):
        if (candidate & known) == want:
            return True
    return False


class PolicyChecker:
    """Streaming condition checks with per-root-cause deduplication."""

    def __init__(self, program: Program, policy: SecurityPolicy):
        self.program = program
        self.policy = policy
        self._violations: Dict[Tuple, Violation] = {}
        self._untainted_regions = policy.untainted_ram_regions()
        self._watchdog_flagged = False

    # ------------------------------------------------------------------
    def _record(
        self,
        kind: str,
        cycle: int,
        address: int,
        task: str,
        detail: str = "",
        port: Optional[str] = None,
        dedupe: Optional[Tuple] = None,
        advisory: bool = False,
    ) -> None:
        key = dedupe if dedupe is not None else (kind, address, port)
        if key in self._violations:
            return
        line = self.program.line_at(address)
        self._violations[key] = Violation(
            kind=kind,
            cycle=cycle,
            address=address,
            task=task,
            detail=detail,
            port=port,
            source_line=line.line_no if line else None,
            source_text=line.text.strip() if line else None,
            advisory=advisory,
        )

    # ------------------------------------------------------------------
    # Probes called by the tracker
    # ------------------------------------------------------------------
    def note_instruction_start(
        self,
        instruction: DecodedInstruction,
        task_name: str,
        task_trusted: bool,
        cycle: int,
        any_state_taint: bool,
        pc_taint: int,
    ) -> None:
        """Condition 1 probes at each instruction fetch.

        In the default (refined) mode, residual taint in state elements is
        tolerated -- Section 5.1: "it is acceptable for state elements to
        be tainted when an untainted task executes, as long as the
        computations performed by the task do not depend on any tainted
        state elements."  Dependence is detected by the PC-taint check
        here and the taint-growth check in :meth:`note_instruction_end`.
        In strict mode the letter of condition 1 is enforced instead
        (useful for reasoning about unknown applications).
        """
        if (
            self.policy.strict_conditions
            and task_trusted
            and any_state_taint
        ):
            self._record(
                ViolationKind.TAINTED_STATE_IN_TRUSTED_CODE,
                cycle,
                instruction.address,
                task_name,
                detail="processor state elements tainted while trusted "
                "code executes (strict condition 1)",
                dedupe=(ViolationKind.TAINTED_STATE_IN_TRUSTED_CODE, task_name),
            )
        if pc_taint and task_trusted:
            self._record(
                ViolationKind.TAINTED_STATE_IN_TRUSTED_CODE,
                cycle,
                instruction.address,
                task_name,
                detail="control reaches trusted code with a tainted PC",
                dedupe=(
                    ViolationKind.TAINTED_STATE_IN_TRUSTED_CODE,
                    task_name,
                    "pc",
                ),
            )
        if pc_taint and not task_trusted:
            self._record(
                ViolationKind.TAINTED_CONTROL_FLOW,
                cycle,
                instruction.address,
                task_name,
                detail="program counter tainted inside untrusted task; "
                "bound the task with the watchdog mechanism",
                dedupe=(ViolationKind.TAINTED_CONTROL_FLOW, task_name),
                advisory=True,
            )

    def note_instruction_end(
        self,
        instruction: DecodedInstruction,
        task_name: str,
        task_trusted: bool,
        cycle: int,
        taint_grew: bool,
    ) -> None:
        """Refined condition-1 probe: trusted computation produced taint.

        New taint appearing in state elements during a trusted-task
        instruction means the computation *depended* on tainted state.
        """
        if task_trusted and taint_grew:
            self._record(
                ViolationKind.TAINTED_STATE_IN_TRUSTED_CODE,
                cycle,
                instruction.address,
                task_name,
                detail="trusted computation depends on tainted state "
                "(new taint produced)",
                dedupe=(
                    ViolationKind.TAINTED_STATE_IN_TRUSTED_CODE,
                    task_name,
                    instruction.address,
                ),
            )

    def note_unbounded_control(
        self,
        instruction: DecodedInstruction,
        task_name: str,
        task_trusted: bool,
        cycle: int,
        tainted: bool,
    ) -> None:
        """A computed control transfer whose target set is unbounded."""
        if tainted:
            kind = (
                ViolationKind.TAINTED_STATE_IN_TRUSTED_CODE
                if task_trusted
                else ViolationKind.TAINTED_CONTROL_FLOW
            )
            self._record(
                kind,
                cycle,
                instruction.address,
                task_name,
                detail="computed control transfer through tainted, "
                "unbounded target (e.g. a smeared return address)",
                dedupe=(kind, task_name, "unbounded"),
            )

    def note_events(
        self,
        instruction: Optional[DecodedInstruction],
        task_name: str,
        task_trusted: bool,
        events,
        watchdog_corrupted: bool,
        control_tainted: bool = False,
    ) -> None:
        """Conditions 2-5 over one cycle's events.

        *control_tainted* marks cycles executed under a tainted PC.  Such
        cycles are wholly attacker-influenced; the control-flow violation
        already covers them, so conditions 3-5 are not re-attributed to
        the phantom "maybe" events they generate.  Condition 2 is still
        attributed -- but only to *actual store instructions*, which is
        exactly the set the masking repair must protect (the root causes
        Figure 10's identification stage reports).
        """
        cycle = events.cycle
        address = instruction.address if instruction else 0

        is_store = instruction is not None and instruction.is_store
        if (
            events.write is not None
            and is_store
            and (not control_tainted or not task_trusted)
        ):
            write = events.write
            tainting = bool(
                write.data.tmask or write.wen[1] or write.address.tmask
            )
            if tainting:
                for region in self._untainted_regions:
                    if _address_may_touch(write.address, region):
                        self._record(
                            ViolationKind.TAINTED_WRITE_UNTAINTED_MEMORY,
                            cycle,
                            address,
                            task_name,
                            detail=(
                                "store may taint untainted partition "
                                f"0x{region.low:04x}..0x{region.high:04x}"
                            ),
                        )
                        break

        if watchdog_corrupted and not self._watchdog_flagged:
            self._watchdog_flagged = True
            self._record(
                ViolationKind.WATCHDOG_TAINTED,
                cycle,
                address,
                task_name,
                detail="the watchdog timer's control state became "
                "tainted/unknown; its reset can no longer de-taint "
                "the processor",
                dedupe=(ViolationKind.WATCHDOG_TAINTED,),
            )
        if watchdog_corrupted or (control_tainted and task_trusted):
            # Fallout context: a corrupted watchdog (everything downstream
            # is attacker-timed) or trusted code running under a tainted PC
            # (condition 1 is the root cause).  Do not re-attribute the
            # fallout to conditions 3-5.  Untrusted code under tainted
            # control still gets its *real* port accesses checked -- path
            # enumeration makes those events definite.
            return

        if events.read is not None and task_trusted:
            read = events.read
            touched_tainted = any(
                _address_may_touch(read.address, region)
                for region in self.policy.tainted_memory
            )
            if touched_tainted:
                self._record(
                    ViolationKind.TRUSTED_READ_TAINTED_MEMORY,
                    cycle,
                    address,
                    task_name,
                    detail="trusted code loads from a tainted partition",
                )
            elif read.data.tmask:
                self._record(
                    ViolationKind.TRUSTED_READ_TAINTED_MEMORY,
                    cycle,
                    address,
                    task_name,
                    detail="trusted code loaded tainted data",
                )

        for event in events.port_events:
            if event.kind == "read":
                if self.policy.is_tainted_input(event.port) and task_trusted:
                    self._record(
                        ViolationKind.TRUSTED_READ_TAINTED_PORT,
                        cycle,
                        address,
                        task_name,
                        port=event.port,
                        detail="trusted code reads a tainted input port"
                        + ("" if event.definite else " (via unknown address)"),
                    )
            else:  # write
                if not self.policy.is_untainted_output(event.port):
                    continue
                if not event.definite and is_store:
                    # An attacker-steerable store that merely *might* land
                    # on the port: root cause is the unmasked store, which
                    # condition 2 already attributes (and masking repairs).
                    continue
                offending = bool(
                    event.data.tmask
                    or event.address_taint
                    or not task_trusted
                    or not event.definite
                )
                if offending:
                    self._record(
                        ViolationKind.TAINTED_WRITE_UNTAINTED_PORT,
                        cycle,
                        address,
                        task_name,
                        port=event.port,
                        detail="tainted data may reach an untainted "
                        "output port",
                    )

    # ------------------------------------------------------------------
    # Parallel support
    # ------------------------------------------------------------------
    def new_violations_since(self, mark: int) -> List[Tuple[Tuple, Violation]]:
        """The ``(dedupe_key, violation)`` pairs recorded after *mark*
        (a previous ``len(self._violations)``); insertion order."""
        if mark >= len(self._violations):
            return []
        return list(self._violations.items())[mark:]

    def violation_count(self) -> int:
        return len(self._violations)

    def adopt(self, pairs) -> None:
        """Replay ``(dedupe_key, violation)`` pairs captured by a worker's
        local checker.  First occurrence wins, exactly like the serial
        :meth:`_record` dedup: a key already present keeps its (earlier)
        record.  Every probe is pure per call -- the only cross-call state
        is this dedup dict and the watchdog latch, which mirrors the
        ``(WATCHDOG_TAINTED,)`` key -- so consume-order replay of segment
        diffs reproduces the serial checker bit-for-bit."""
        for key, violation in pairs:
            if key not in self._violations:
                self._violations[key] = violation
            if key == (ViolationKind.WATCHDOG_TAINTED,):
                self._watchdog_flagged = True

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Serializable streaming state (for analysis checkpoints)."""
        return {
            "violations": dict(self._violations),
            "watchdog_flagged": self._watchdog_flagged,
        }

    def restore_state(self, state: dict) -> None:
        self._violations = dict(state["violations"])
        self._watchdog_flagged = state["watchdog_flagged"]

    # ------------------------------------------------------------------
    def violations(self) -> List[Violation]:
        return sorted(
            self._violations.values(), key=lambda v: (v.condition, v.address)
        )


def check_conditions(violations: List[Violation]) -> Set[int]:
    """The set of Section 5.1 conditions the violations break (Table 2)."""
    return {violation.condition for violation in violations}


def analyze_program(
    program: Program,
    policy: Optional[SecurityPolicy] = None,
    **tracker_kwargs,
):
    """One-call analysis: build the tracker, run it, return the result."""
    from repro.core.labels import default_policy
    from repro.core.tracker import TaintTracker

    if policy is None:
        policy = default_policy()
    tracker = TaintTracker(program, policy, **tracker_kwargs)
    return tracker.run()
