"""Worker-process side of parallel path exploration.

Each worker process builds its own analysis substrate **once** (compiled
circuit, gate-level SoC, program image with the policy's taints applied)
and then serves speculative chain requests: restore a work-item
snapshot, simulate segment by segment until a fork / power-on reset /
terminal / chain cap, and ship the boundary states and per-segment
deltas back (see :mod:`repro.parallel.protocol`).

The segment loop deliberately mirrors
:meth:`repro.core.tracker.TaintTracker._explore_path` statement for
statement, minus everything that touches shared exploration state: the
merge table, the execution tree, the global stats and the process-wide
checker all stay with the coordinator.  Policy probes run against a
fresh per-chain :class:`PolicyChecker`, whose per-segment violation
diffs the coordinator replays in consume order (every probe is pure per
call, so prefix replay is serial-equivalent -- see ``PolicyChecker.adopt``).

Workers never host a provenance recorder or a fault injector (the
tracker forces serial mode when either is armed) and they ignore
SIGINT/SIGTERM: interrupt handling is the coordinator's job, which lets
a Ctrl-C drain in-flight chains cleanly instead of killing workers
mid-snapshot.
"""

from __future__ import annotations

import signal
from types import SimpleNamespace
from typing import List, Optional, Tuple

from repro.core.checker import PolicyChecker
from repro.core.tracker import _state_digest, build_runner
from repro.isa.encode import DecodedInstruction, EncodeError, decode
from repro.logic.ternary import ONE
from repro.logic.words import EnumerationLimitError
from repro.obs import Observer, set_observer
from repro.parallel.protocol import ChainResult, SegmentRecord
from repro.resilience.faults import install_injector
from repro.sim.runner import PHASE_E, PHASE_F, PHASE_J

#: Per-process worker context, populated by :func:`worker_init`.
_W: Optional[SimpleNamespace] = None


def worker_init(
    program,
    policy,
    circuit,
    fork_limit: int,
    budget_view,
    collect_obs: bool,
    max_chain_segments: int,
    max_chain_cycles: int,
) -> None:
    """Process-pool initializer: build the substrate once per worker."""
    # Interrupts belong to the coordinator (terminal Ctrl-C signals the
    # whole foreground process group; workers must finish their chain).
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, signal.SIG_IGN)
        except (ValueError, OSError):
            pass
    # Under the fork start method the child inherits the parent's
    # process-global observer (possibly with an open trace file) -- give
    # this process its own, or none.
    set_observer(Observer() if collect_obs else None)
    install_injector(None)
    runner = build_runner(program, policy, circuit)
    global _W
    _W = SimpleNamespace(
        program=program,
        policy=policy,
        circuit=circuit,
        runner=runner,
        fork_limit=fork_limit,
        budget=budget_view,
        collect_obs=collect_obs,
        max_chain_segments=max_chain_segments,
        max_chain_cycles=max_chain_cycles,
        counter_marks={},
    )
    # Latch the counter marks *after* building the substrate, so the
    # power-on-reset cycles build_runner simulates in this process do
    # not leak into the first chain's deltas (the coordinator's own
    # build_runner already accounted for the one reset serial mode runs).
    _counter_deltas()


def _decode_at(address: int) -> Optional[DecodedInstruction]:
    try:
        return decode(_W.program.slice_from(address), address)
    except EncodeError:
        return None


def _task_info(address: int) -> Tuple[str, bool]:
    task = _W.program.task_of(address)
    if task is None:
        return "", True
    return task.name, task.trusted


def _counter_deltas() -> Optional[dict]:
    """New counter increments in this worker's registry since the last
    call (gate evals etc. accumulated inside ``soc.step``)."""
    if not _W.collect_obs:
        return None
    from repro.obs import get_observer

    counters = get_observer().metrics._counters
    marks = _W.counter_marks
    deltas = {}
    for name, counter in counters.items():
        delta = counter.value - marks.get(name, 0)
        if delta:
            deltas[name] = delta
        marks[name] = counter.value
    return deltas or None


def run_chain(snapshot) -> ChainResult:
    """Speculatively explore one work item from its snapshot.

    Mirrors ``TaintTracker._explore_path`` exactly, with two departures:
    every ``_visit_concrete`` verdict is *assumed* ``"exact"`` (the
    chain just keeps simulating from the unchanged boundary state), and
    anything that needs the merge table (fork children, POR
    continuations) or global state (cycle limits, path accounting) ends
    the chain so the coordinator can decide.
    """
    try:
        return _run_chain(snapshot)
    except Exception as error:  # ships as data; coordinator re-runs serially
        return ChainResult(error=f"{type(error).__name__}: {error}")


def _run_chain(snapshot) -> ChainResult:
    runner = _W.runner
    soc = runner.soc
    circuit = _W.circuit
    checker = PolicyChecker(_W.program, _W.policy)
    budget = _W.budget
    # Worker-side budget slice only checks deadline/RSS; give it the
    # stats shape it expects with the global-only axes zeroed.
    budget_stats = SimpleNamespace(cycles_simulated=0)

    soc.restore(snapshot)
    records: List[SegmentRecord] = []
    chain_cycles = 0

    # Per-segment delta accumulators, reset by _close().
    cycles = instructions = fast_forwarded = 0
    densities: List[float] = []
    viol_mark = checker.violation_count()

    def _close(kind: str, **fields) -> None:
        nonlocal cycles, instructions, fast_forwarded, densities, viol_mark
        records.append(
            SegmentRecord(
                kind=kind,
                cycles=cycles,
                instructions=instructions,
                fast_forwarded=fast_forwarded,
                violations=checker.new_violations_since(viol_mark),
                densities=densities,
                counter_deltas=_counter_deltas(),
                **fields,
            )
        )
        cycles = instructions = fast_forwarded = 0
        densities = []
        viol_mark = checker.violation_count()

    current: Optional[DecodedInstruction] = None
    task_name, task_trusted = "", True
    baseline_taint = None
    control_tainted = False

    while True:
        phase = runner.phase()
        if phase == PHASE_F and (
            len(records) >= _W.max_chain_segments
            or chain_cycles >= _W.max_chain_cycles
            or (
                budget is not None
                and budget.mid_path_exhausted(budget_stats)
            )
        ):
            _close(
                "paused",
                state=soc.snapshot(),
                cycle=soc.cycle,
                pause_reason="chain_cap"
                if chain_cycles >= _W.max_chain_cycles
                or len(records) >= _W.max_chain_segments
                else "budget",
            )
            break
        if phase < 0:
            if current is not None:
                checker.note_unbounded_control(
                    current, task_name, task_trusted, soc.cycle, tainted=True
                )
            _close("terminal", end_reason="state_lost", cycle=soc.cycle)
            break
        if phase == PHASE_F:
            pc_word = soc.pc()
            if pc_word.xmask:
                raise RuntimeError(
                    "PC unknown at a fetch boundary in a worker chain"
                )
            address = pc_word.bits
            current = _decode_at(address)
            if current is None:
                _close("terminal", end_reason="illegal", cycle=soc.cycle)
                break
            task_name, task_trusted = _task_info(address)
            control_tainted = bool(pc_word.tmask)
            baseline_taint = circuit.dff_state(soc.state) & 1
            if _W.collect_obs:
                densities.append(float(baseline_taint.mean()))
            checker.note_instruction_start(
                current,
                task_name,
                task_trusted,
                soc.cycle,
                any_state_taint=bool(baseline_taint.any()),
                pc_taint=pc_word.tmask,
            )
            instructions += 1

        events = soc.step()
        cycles += 1
        chain_cycles += 1
        if events.reset[0] != ONE:
            checker.note_events(
                current,
                task_name,
                task_trusted,
                events,
                soc.space.watchdog.corrupted,
                control_tainted=control_tainted,
            )

        if events.reset[0] == ONE:
            current = None
            _close("por", state=soc.snapshot(), cycle=soc.cycle)
            break

        if phase in (PHASE_E, PHASE_J) and current is not None:
            if task_trusted and baseline_taint is not None:
                taint_now = circuit.dff_state(soc.state) & 1
                checker.note_instruction_end(
                    current,
                    task_name,
                    task_trusted,
                    soc.cycle,
                    taint_grew=bool((taint_now & ~baseline_taint).any()),
                )

            pc_word = soc.pc()
            if pc_word.xmask:
                # Fork site: enumerate the successors exactly as the
                # serial _fork would, but leave child creation (which
                # starts from the *merged* state) to the coordinator.
                if current.is_conditional_jump:
                    candidates = [
                        current.jump_target, current.fallthrough
                    ]
                else:
                    try:
                        candidates = sorted(
                            pc_word.possible_values(limit=_W.fork_limit)
                        )
                    except EnumerationLimitError:
                        fork_task, fork_trusted = _task_info(
                            current.address
                        )
                        checker.note_unbounded_control(
                            current,
                            fork_task,
                            fork_trusted,
                            soc.cycle,
                            tainted=bool(pc_word.tmask),
                        )
                        _close(
                            "terminal",
                            end_reason="unbounded",
                            cycle=soc.cycle,
                            fork_address=current.address,
                            pc_tainted=bool(pc_word.tmask),
                        )
                        break
                    # Any other ValueError propagates: the coordinator
                    # re-runs the item serially and raises the typed
                    # ForkError with full fork-site context.
                _close(
                    "fork",
                    state=soc.snapshot(),
                    key=current.address,
                    candidates=candidates,
                    pc_bits=pc_word.bits,
                    pc_tmask=pc_word.tmask,
                    cycle=soc.cycle,
                )
                break

            if current.is_self_loop:
                watchdog = soc.space.watchdog
                remaining = watchdog.cycles_until_expiry()
                if remaining is None:
                    _close("terminal", end_reason="halt", cycle=soc.cycle)
                    break
                por = watchdog.fast_forward(remaining)
                soc.space.timer.fast_forward(remaining)
                soc.pending_por = por
                soc.cycle += remaining
                fast_forwarded += remaining
                current = None
                continue

            changes_pc = (
                current.is_jump
                or current.writes_pc
                or current.mnemonic == "call"
            )
            if changes_pc:
                snap = soc.snapshot()
                _close(
                    "pc_change",
                    state=snap,
                    digest=_state_digest(snap),
                    key=current.address,
                    pc_bits=pc_word.bits,
                    pc_tmask=pc_word.tmask,
                    cycle=soc.cycle,
                )
                # Speculate "exact": the continuation state is the
                # boundary state itself; keep simulating in place.
            current = None

    return ChainResult(records=records)
