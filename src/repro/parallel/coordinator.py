"""Coordinator side of parallel path exploration.

The coordinator owns *all* shared exploration state -- the worklist, the
merge table, the execution tree, the stats, the policy checker, the
observability sinks -- and drains the worklist in exactly the serial
pop order.  Workers only ever contribute speculative, side-effect-free
chains of simulation segments (:mod:`repro.parallel.protocol`); every
merge decision is applied here, single-writer, in canonical order.

Serial equivalence, by construction:

* A work item's snapshot is fixed when it is enqueued, so the *first*
  segment of every queued item is always valid speculation.
* Segments between merge boundaries are pure functions of their entry
  state (the merge table is only read at boundaries), so a chain stays
  valid exactly as long as every ``_visit_concrete`` verdict along it is
  ``"exact"`` -- which leaves the continuation state untouched.
* The coordinator validates each boundary against the real table in
  consume order.  The moment a verdict is *not* ``"exact"`` (a covering
  stop, a widened continuation, an uncovered power-on reset, a global
  cycle-limit crossing, a worker failure), the speculative tail is
  discarded and the classic serial explorer continues inline from the
  decision's continuation state.

Discarded speculation costs time, never correctness: with every chain
discarded this degenerates to the serial algorithm.  Violations are
replayed from per-segment diffs of the worker's local checker (probe
calls are pure; see ``PolicyChecker.adopt``), stats deltas are applied
only for consumed segments, and fork successors are enqueued in the
exact order serial ``_fork`` uses -- so verdicts, violation records,
path/fork/merge counts and the rendered report are bit-identical to a
serial run, regardless of worker count or scheduling.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List

from repro.core.tracker import TaintTracker, _site, _WorkItem
from repro.parallel import worker as worker_mod
from repro.parallel.protocol import (
    ChainResult,
    MAX_CHAIN_CYCLES,
    MAX_CHAIN_SEGMENTS,
    SegmentRecord,
)
from repro.resilience.errors import ReproError, SimulationError


def run_worklist_parallel(tracker: TaintTracker) -> None:
    """Drain ``tracker._worklist`` with a worker pool; same contract as
    the serial loop in :meth:`TaintTracker.run`."""
    _Coordinator(tracker).run()


class _Coordinator:
    def __init__(self, tracker: TaintTracker):
        self.tracker = tracker
        self.jobs = tracker._parallel_jobs()
        self.worklist: List[_WorkItem] = tracker._worklist
        self.futures: Dict[int, object] = {}
        budget = tracker.budget
        worker_budget = (
            budget.worker_view()
            if (budget.deadline_seconds or budget.max_rss_mb)
            else None
        )
        self.pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=worker_mod.worker_init,
            initargs=(
                tracker.program,
                tracker.policy,
                tracker.circuit,
                tracker.fork_limit,
                worker_budget,
                bool(tracker.obs.enabled),
                MAX_CHAIN_SEGMENTS,
                MAX_CHAIN_CYCLES,
            ),
        )

    # ------------------------------------------------------------------
    def _submit(self, item: _WorkItem) -> None:
        self.futures[id(item)] = self.pool.submit(
            worker_mod.run_chain, item.snapshot
        )

    def _submit_from(self, start: int) -> None:
        """Speculate every worklist item appended at or after *start*."""
        for item in self.worklist[start:]:
            self._submit(item)

    # ------------------------------------------------------------------
    def run(self) -> None:
        tracker = self.tracker
        worklist = self.worklist
        budget = tracker.budget
        try:
            self._submit_from(0)
            while worklist:
                if tracker._interrupt_reason is not None:
                    tracker._handle_interrupt()
                reasons = budget.exhausted_reasons(
                    tracker.stats, tracker._merged_states
                )
                if reasons:
                    tracker._drain(worklist, reasons)
                    break
                if (
                    tracker.checkpointer is not None
                    and tracker.checkpointer.due(tracker.stats.paths)
                ):
                    tracker.checkpointer.save(tracker)
                item = worklist.pop()
                future = self.futures.pop(id(item), None)
                if item.counted:
                    tracker.stats.paths += 1
                chain = None
                if future is not None:
                    try:
                        chain = future.result()
                    except ReproError:
                        raise
                    except Exception:
                        # A broken pool / transport failure is not an
                        # analysis error: re-run this item serially.
                        chain = None
                if chain is None or chain.error is not None:
                    if chain is not None and tracker.obs.enabled:
                        tracker.obs.emit(
                            "parallel_fallback",
                            node=item.node_id,
                            error=chain.error,
                        )
                    self._inline_from(item.snapshot, item.node_id)
                    continue
                self._consume(item, chain)
        finally:
            self.pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def _consume(self, item: _WorkItem, chain: ChainResult) -> None:
        tracker = self.tracker
        stats = tracker.stats
        obs = tracker.obs
        soc = tracker.runner.soc
        worklist = self.worklist
        node = tracker.tree.nodes[item.node_id]
        resume_state = item.snapshot

        for rec in chain.records:
            # The serial explorer pauses at instruction-fetch boundaries
            # on interrupt or mid-path budget exhaustion; segment entry
            # points are exactly such boundaries.
            if (
                tracker._interrupt_reason is not None
                or tracker.budget.mid_path_exhausted(stats)
            ):
                worklist.append(
                    _WorkItem(resume_state, node.node_id, counted=False)
                )
                return
            # A global cycle-limit crossing happens *inside* a segment;
            # only the cycle-accurate serial loop can reproduce where.
            if stats.cycles_simulated + rec.cycles >= tracker.max_cycles:
                self._inline_from(resume_state, node.node_id)
                return

            self._apply_segment(rec)

            if rec.kind == "pc_change":
                verdict, continuation = tracker._visit_concrete(
                    rec.key, rec.state, digest=rec.digest
                )
                if verdict == "stop":
                    node.end_reason = "merged"
                    node.end_cycle = rec.cycle
                    if obs.enabled:
                        obs.emit(
                            "prune",
                            site=_site(rec.key),
                            node=node.node_id,
                            cycle=rec.cycle,
                        )
                    return
                if verdict == "exact":
                    resume_state = rec.state
                    continue
                # "widened": continue from the conservative state,
                # keeping this path's concrete successor PC -- the
                # speculative tail (which assumed "exact") is invalid.
                soc.restore(continuation)
                merged_pc_taint = soc.pc().tmask
                soc.force_pc(rec.pc_bits, rec.pc_tmask | merged_pc_taint)
                if obs.enabled:
                    obs.emit(
                        "widen",
                        site=_site(rec.key),
                        node=node.node_id,
                        cycle=soc.cycle,
                    )
                self._inline_explore(node.node_id)
                return

            if rec.kind == "por":
                covered, merged = tracker._visit_widening("POR", rec.state)
                if covered:
                    node.end_reason = "merged"
                    node.end_cycle = rec.cycle
                    if obs.enabled:
                        obs.emit(
                            "prune",
                            site="POR",
                            node=node.node_id,
                            cycle=rec.cycle,
                        )
                    return
                soc.restore(merged)
                self._inline_explore(node.node_id)
                return

            if rec.kind == "fork":
                covered, merged = tracker._visit_widening(
                    rec.key, rec.state
                )
                node.end_reason = "merged" if covered else "fork"
                node.end_cycle = rec.cycle
                node.fork_address = rec.key
                if covered:
                    if obs.enabled:
                        obs.emit(
                            "prune",
                            site=_site(rec.key),
                            node=node.node_id,
                            cycle=rec.cycle,
                        )
                    return
                stats.forks += 1
                children = []
                start = len(worklist)
                for candidate in rec.candidates:
                    soc.restore(merged)
                    soc.force_pc(candidate, rec.pc_tmask)
                    child = tracker.tree.new_node(
                        node.node_id,
                        candidate,
                        soc.cycle,
                        pc_taint=rec.pc_tmask,
                    )
                    worklist.append(
                        _WorkItem(soc.snapshot(), child.node_id)
                    )
                    children.append(child.node_id)
                self._submit_from(start)
                if obs.enabled:
                    obs.emit(
                        "fork",
                        site=_site(rec.key),
                        node=node.node_id,
                        children=children,
                        targets=[f"0x{c:04x}" for c in rec.candidates],
                        pc_tainted=bool(rec.pc_tmask),
                        cycle=soc.cycle,
                    )
                return

            if rec.kind == "terminal":
                node.end_reason = rec.end_reason
                node.end_cycle = rec.cycle
                if rec.end_reason == "unbounded":
                    node.fork_address = rec.fork_address
                    if not rec.pc_tainted:
                        stats.incomplete_paths += 1
                return

            if rec.kind == "paused":
                if rec.pause_reason == "budget":
                    # The *worker's* deadline/RSS slice tripped.  The
                    # coordinator's own budget decides what that means;
                    # continue serially so a healthy parent cannot
                    # ping-pong the item back to an exhausted worker.
                    self._inline_from(rec.state, node.node_id)
                else:
                    start = len(worklist)
                    worklist.append(
                        _WorkItem(rec.state, node.node_id, counted=False)
                    )
                    self._submit_from(start)
                return

        raise SimulationError(
            "parallel worker returned a chain without a closing record "
            f"(node {item.node_id})",
            node=item.node_id,
        )

    # ------------------------------------------------------------------
    def _apply_segment(self, rec: SegmentRecord) -> None:
        tracker = self.tracker
        stats = tracker.stats
        stats.cycles_simulated += rec.cycles
        stats.instructions += rec.instructions
        stats.fast_forwarded_cycles += rec.fast_forwarded
        tracker.checker.adopt(rec.violations)
        obs = tracker.obs
        if obs.enabled:
            if rec.densities:
                histogram = obs.histogram("tracker.taint_density")
                for value in rec.densities:
                    histogram.observe(value)
            if rec.counter_deltas:
                metrics = obs.metrics
                for name, delta in rec.counter_deltas.items():
                    metrics.counter(name).inc(delta)

    # ------------------------------------------------------------------
    def _inline_from(self, state, node_id: int) -> None:
        self.tracker.runner.soc.restore(state)
        self._inline_explore(node_id)

    def _inline_explore(self, node_id: int) -> None:
        """Continue a path with the serial explorer from the current SoC
        state; speculate any work it enqueues (fork children, pauses)."""
        tracker = self.tracker
        worklist = self.worklist
        start = len(worklist)
        try:
            tracker._explore_path(node_id, worklist)
        except ReproError:
            raise
        except Exception as error:
            soc = tracker.runner.soc
            raise SimulationError(
                "gate-level exploration failed at cycle "
                f"{soc.cycle} (path {tracker.stats.paths}): {error}",
                cycle=soc.cycle,
                paths=tracker.stats.paths,
                node=node_id,
            ) from error
        self._submit_from(start)
