"""Parallel path exploration for the GLIFT tracker.

Two layers, both deterministic:

* :mod:`repro.parallel.coordinator` / :mod:`repro.parallel.worker` --
  path-level parallelism *inside* one analysis (``TaintTracker(...,
  jobs=N)``).  Workers speculatively simulate path segments; the
  coordinator alone applies merges, in serial order, so results are
  bit-identical to ``jobs=1``.
* :mod:`repro.parallel.analyze_all` -- workload-level parallelism
  *across* analyses (``repro analyze-all --jobs N``): each worker runs
  one workload's full serial analysis and the parent aggregates the
  per-workload documents.
"""

from repro.parallel.protocol import (
    ChainResult,
    MAX_CHAIN_CYCLES,
    MAX_CHAIN_SEGMENTS,
    SegmentRecord,
)

__all__ = [
    "ChainResult",
    "SegmentRecord",
    "MAX_CHAIN_CYCLES",
    "MAX_CHAIN_SEGMENTS",
]
