"""Workload-level parallelism: ``repro analyze-all --jobs N``.

The second, coarser layer of :mod:`repro.parallel`: instead of splitting
one exploration across workers, fan the Table 1 workload registry over a
process pool -- one workload per worker, each running the classic serial
analysis -- and aggregate the per-workload verdict documents, exit codes
and timing into one JSON report.

Per-workload runs are fully independent (own program, own tracker, own
budget instance built from the same spec), so the aggregate document is
deterministic regardless of worker count or completion order: results
are always reported in the requested workload order.
"""

from __future__ import annotations

import concurrent.futures
import signal
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional

from repro.obs import CLOCK, MetricsRegistry, Observer, observe
from repro.resilience import (
    AnalysisInterrupted,
    ReproError,
    VERDICT_EXIT_CODES,
)

#: Schema tag for the aggregate document (bump on breaking changes).
ANALYZE_ALL_SCHEMA = 1

#: Exit code reported for a workload whose analysis raised (matches the
#: single-workload CLI contract: typed errors carry their own code).
ERROR_EXIT_CODE = 6


def _analyze_one(spec: dict) -> dict:
    """Run one workload's full serial analysis; executed in a worker.

    Returns a JSON-ready document (never raises: errors ship as data so
    one failing workload cannot take down the sweep).
    """
    name = spec["workload"]
    started = CLOCK.wall()
    try:
        from repro.cli import _analysis_document, _policy, _resolve_workload
        from repro.core import TaintTracker
        from repro.isa.assembler import assemble
        from repro.resilience.budget import AnalysisBudget

        from repro.cpu import compiled_cpu

        source, resolved = _resolve_workload(name)
        program = assemble(source, name=resolved)
        budget = AnalysisBudget(**spec["budget"])
        observer = Observer()
        with observe(observer):
            result = TaintTracker(
                program,
                circuit=compiled_cpu(spec.get("engine", "dense")),
                policy=_policy(spec["policy"]),
                max_cycles=spec["max_cycles"],
                budget=budget,
            ).run()
        document = _analysis_document(result)
        document["workload"] = resolved
        document["exit_code"] = VERDICT_EXIT_CODES[result.verdict]
        document["wall_seconds"] = CLOCK.wall() - started
        document["metrics_state"] = observer.metrics.export_state()
        return document
    except ReproError as error:
        return {
            "workload": name,
            "verdict": "error",
            "exit_code": error.exit_code,
            "wall_seconds": CLOCK.wall() - started,
            "error": error.to_document(),
        }
    except Exception as error:  # pragma: no cover - defensive
        return {
            "workload": name,
            "verdict": "error",
            "exit_code": ERROR_EXIT_CODE,
            "wall_seconds": CLOCK.wall() - started,
            "error": {"type": type(error).__name__, "message": str(error)},
        }


def _reap_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Forcefully end a pool's worker processes (SIGTERM, then SIGKILL
    for any that linger) so an interrupted sweep leaves no orphans
    holding checkpoints or cache files open.

    ``_processes`` is a private-but-stable attribute (present since
    3.7); if a future Python renames it we degrade to the old
    wait-for-completion behaviour instead of crashing.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(timeout=3.0)
    for process in processes:
        if process.is_alive():
            process.kill()
            process.join(timeout=3.0)


def _run_pool(specs: List[dict], workers: int) -> List[dict]:
    """Fan the sweep over a process pool, reaping every worker on
    SIGINT/SIGTERM instead of silently finishing the whole sweep.

    The default executor behaviour on an exception is
    ``shutdown(wait=True)``: a Ctrl-C'd sweep would keep *all* its
    workers running to completion.  Here the signal sets a flag, the
    collection loop notices within 200ms, pending futures are
    cancelled, live workers are terminated and joined, and a typed
    :class:`AnalysisInterrupted` (exit 130) propagates to the CLI.
    """
    interrupted: List[str] = []

    def _note_signal(signum, frame):
        interrupted.append(signal.Signals(signum).name)

    previous = {}
    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, _note_signal)
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = {
            pool.submit(_analyze_one, spec): index
            for index, spec in enumerate(specs)
        }
        results: List[Optional[dict]] = [None] * len(specs)
        pending = set(futures)
        while pending and not interrupted:
            done, pending = concurrent.futures.wait(pending, timeout=0.2)
            for future in done:
                results[futures[future]] = future.result()
        if interrupted:
            for future in pending:
                future.cancel()
            _reap_pool_processes(pool)
            finished = sum(1 for r in results if r is not None)
            raise AnalysisInterrupted(
                f"analyze-all interrupted ({interrupted[0]}) with "
                f"{finished}/{len(specs)} workload(s) finished; "
                "worker processes reaped",
                reason=interrupted[0],
                finished=finished,
                total=len(specs),
            )
        return results
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        pool.shutdown(wait=False, cancel_futures=True)


def run_analyze_all(
    workloads: List[str],
    jobs: int = 1,
    policy: str = "untrusted",
    max_cycles: int = 1_000_000,
    budget: Optional[dict] = None,
    engine: str = "dense",
) -> dict:
    """Analyze every workload (one serial analysis per worker process)
    and return the aggregate document.

    ``budget`` is an :class:`AnalysisBudget` kwargs dict applied *per
    workload* (each analysis gets its own fresh instance, so a deadline
    bounds each workload, not the sweep).  ``engine`` selects the gate
    evaluation engine (``dense`` | ``event``) for every workload;
    verdicts are bit-identical either way.
    """
    jobs = max(1, int(jobs))
    specs = [
        {
            "workload": name,
            "policy": policy,
            "max_cycles": max_cycles,
            "budget": dict(budget or {}),
            "engine": engine,
        }
        for name in workloads
    ]
    started = CLOCK.wall()

    # Build the compiled circuit once before forking: workers inherit the
    # process-wide cache and skip their own levelization entirely.
    from repro.cpu import compiled_cpu

    compiled_cpu(engine)

    if jobs == 1 or len(specs) <= 1:
        results = [_analyze_one(spec) for spec in specs]
    else:
        results = _run_pool(specs, min(jobs, len(specs)))

    merged = MetricsRegistry()
    for document in results:
        state = document.pop("metrics_state", None)
        if state is not None:
            merged.merge_state(state)

    verdicts = [document["verdict"] for document in results]
    exit_code = max(
        (document["exit_code"] for document in results), default=0
    )
    return {
        "schema": ANALYZE_ALL_SCHEMA,
        "tool": "repro analyze-all",
        "jobs": jobs,
        "policy": policy,
        "max_cycles": max_cycles,
        "engine": engine,
        "budget": dict(budget or {}),
        "workloads": results,
        "metrics": merged.snapshot(),
        "summary": {
            "total": len(results),
            "secure": verdicts.count("secure"),
            "insecure": verdicts.count("insecure"),
            "inconclusive": verdicts.count("inconclusive"),
            "errors": verdicts.count("error"),
            "wall_seconds": CLOCK.wall() - started,
            "serial_seconds": sum(
                document["wall_seconds"] for document in results
            ),
            "exit_code": exit_code,
        },
    }
