"""Coordinator/worker wire protocol for parallel path exploration.

A worker receives one :class:`repro.core.tracker._WorkItem` snapshot and
runs it *speculatively*: segment by segment, from one merge-relevant
boundary (a concrete PC-changing instruction, an X-PC fork site, a
watchdog power-on reset, or a terminal) to the next, assuming every
concrete-PC visit verdict will be ``"exact"`` (the overwhelmingly common
case, in which the continuation state is exactly the boundary state).
The chain of :class:`SegmentRecord`\\ s it ships back is therefore a
*cache* of pure simulation work: each record is a deterministic function
of the item's snapshot alone, because the merge table is only consulted
at boundaries -- and only by the coordinator.

The coordinator walks a chain in canonical (serial) order, applying the
real ``_visit_concrete`` / ``_visit_widening`` bookkeeping at each
boundary.  A verdict other than ``"exact"`` simply invalidates the
speculative tail; the coordinator falls back to the serial explorer from
the decision's continuation state.  Correctness never depends on
speculation: discarding every chain degenerates to the serial algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.violations import Violation
from repro.sim.soc import SoCState

#: Chain caps: a worker closes its chain with a ``paused`` record once a
#: single work item has produced this many segments / simulated cycles.
#: They bound the size of one result message (each boundary record
#: carries a full SoC snapshot) and the amount of speculation that a
#: single invalidation can throw away.
MAX_CHAIN_SEGMENTS = 64
MAX_CHAIN_CYCLES = 20_000


@dataclass
class SegmentRecord:
    """One fetch-boundary-to-boundary slice of speculative simulation.

    ``kind`` is one of:

    ``pc_change``
        ended at a concrete PC-changing instruction; ``state`` is the
        post-instruction snapshot the coordinator feeds to
        ``_visit_concrete`` (with ``digest`` precomputed), ``key`` the
        instruction address, and ``pc_*`` the concrete successor PC the
        widened continuation must keep.
    ``fork``
        ended at an X-PC fork site; ``candidates`` is the exact successor
        list the serial ``_fork`` would enumerate (conditional-jump order
        preserved -- *not* sorted -- because worklist order is part of
        serial equivalence).
    ``por``
        ended at a watchdog power-on reset boundary.
    ``terminal``
        the path ended (``end_reason`` in ``illegal`` / ``state_lost`` /
        ``halt`` / ``unbounded``); no continuation state.
    ``paused``
        the chain hit a cap or the worker-side budget slice; ``state``
        is a fetch-boundary snapshot to requeue.

    Every record also carries the segment's *deltas*: simulated cycles,
    retired instructions, fast-forwarded cycles, newly recorded
    ``(dedupe_key, Violation)`` pairs from the worker's local checker,
    per-instruction taint densities (only when the parent observer is
    live) and observability counter deltas.  The coordinator applies a
    record's deltas exactly once, if and only if it consumes the record.
    """

    kind: str
    cycles: int = 0
    instructions: int = 0
    fast_forwarded: int = 0
    violations: List[Tuple[tuple, Violation]] = field(default_factory=list)
    densities: List[float] = field(default_factory=list)
    counter_deltas: Optional[dict] = None
    cycle: int = 0
    state: Optional[SoCState] = None
    digest: Optional[bytes] = None
    key: Optional[int] = None
    pc_bits: int = 0
    pc_tmask: int = 0
    candidates: Optional[List[int]] = None
    end_reason: Optional[str] = None
    fork_address: Optional[int] = None
    pc_tainted: bool = False
    pause_reason: Optional[str] = None


@dataclass
class ChainResult:
    """Everything a worker learned from one speculative work item."""

    records: List[SegmentRecord] = field(default_factory=list)
    #: set when the chain died on an exception; the coordinator then
    #: ignores ``records`` and re-runs the item through the serial
    #: explorer, which reproduces the same (typed) error exactly where
    #: serial mode would raise it
    error: Optional[str] = None
