"""The LP430 instruction set: an openMSP430-inspired 16-bit ISA.

* :mod:`repro.isa.spec`      -- registers, formats, opcodes, flags, timing.
* :mod:`repro.isa.encode`    -- instruction <-> machine-word codec.
* :mod:`repro.isa.assembler` -- two-pass assembler with labels, sections,
  task/partition directives and debug info (the paper's Figure 11 compile
  flow front end).
* :mod:`repro.isa.disasm`    -- disassembler (the ``objdump`` stage).
* :mod:`repro.isa.program`   -- the loadable system binary plus metadata.
"""

from repro.isa.spec import (
    COND,
    FLAG_C,
    FLAG_N,
    FLAG_V,
    FLAG_Z,
    FORMAT_I_OPCODES,
    FORMAT_II_OPCODES,
    JUMP_MNEMONICS,
    MODE_INDEXED,
    MODE_INDIRECT,
    MODE_INDIRECT_INC,
    MODE_REGISTER,
    PC,
    SP,
    SR,
    CG,
)
from repro.isa.encode import (
    DecodedInstruction,
    EncodeError,
    Operand,
    decode,
    encode,
)
from repro.isa.assembler import AssemblyError, assemble
from repro.isa.disasm import disassemble_program, disassemble_word
from repro.isa.program import Program, SourceLine, TaskInfo

__all__ = [
    "PC",
    "SP",
    "SR",
    "CG",
    "FLAG_C",
    "FLAG_Z",
    "FLAG_N",
    "FLAG_V",
    "MODE_REGISTER",
    "MODE_INDEXED",
    "MODE_INDIRECT",
    "MODE_INDIRECT_INC",
    "FORMAT_I_OPCODES",
    "FORMAT_II_OPCODES",
    "JUMP_MNEMONICS",
    "COND",
    "Operand",
    "DecodedInstruction",
    "EncodeError",
    "encode",
    "decode",
    "assemble",
    "AssemblyError",
    "Program",
    "TaskInfo",
    "SourceLine",
    "disassemble_word",
    "disassemble_program",
]
