"""LP430 ISA specification.

LP430 is the reproduction's stand-in for the openMSP430: a 16-bit,
word-oriented, Harvard microcontroller ISA with MSP430 instruction formats,
register conventions and addressing modes, trimmed of byte operations and
the constant generator.

Registers
---------
``R0``=PC, ``R1``=SP, ``R2``=SR (status), ``R3``=CG (reads as constant 0,
writes ignored), ``R4``-``R15`` general purpose.

Status register flags: C (bit 0), Z (bit 1), N (bit 2), V (bit 8).

Instruction formats (one 16-bit word plus 0-2 extension words)
--------------------------------------------------------------

Format I -- two-operand, ``op src, dst`` computing ``dst = dst OP src``::

    [15:12] opcode  [11:8] src reg  [7] Ad  [6] 0  [5:4] As  [3:0] dst reg

    opcodes: MOV=4 ADD=5 ADDC=6 SUBC=7 SUB=8 CMP=9 BIT=B BIC=C BIS=D XOR=E AND=F

Format II -- single-operand::

    [15:10] = 000100  [9:7] opcode  [6] 0  [5:4] Ad  [3:0] reg

    opcodes: RRC=0 SWPB=1 RRA=2 PUSH=4 CALL=5

Format III -- conditional jumps::

    [15:13] = 001  [12:10] cond  [9:0] signed word offset
    target = (address of jump) + 1 + offset

    cond: JNZ=0 JZ=1 JNC=2 JC=3 JN=4 JGE=5 JL=6 JMP=7

Addressing modes (``As`` two bits for sources; ``Ad`` one bit for
destinations supporting modes 00/01 only):

====  =============  ==========================================
As    syntax         meaning
====  =============  ==========================================
00    ``Rn``         register direct (R3 reads 0)
01    ``x(Rn)``      indexed, extension word x (R3 base: ``&abs``)
10    ``@Rn``        register indirect
11    ``@Rn+``       indirect autoincrement; with Rn=PC: ``#imm``
====  =============  ==========================================

Execution phases (cycle-accurate contract shared by the gate-level CPU and
the architectural simulator)::

    F   fetch, IR <- pmem[PC], PC += 1
    SE  source extension word (indexed offset or immediate), PC += 1
    SL  source load from data memory (modes @Rn / @Rn+ / x(Rn) / &abs)
    DE  destination extension word, PC += 1
    DL  destination load (read-modify-write and CMP/BIT destinations)
    E   execute: ALU, flags, register/memory/PC writeback, PUSH/CALL store
    J   jump resolve: PC <- taken ? PC + offset : PC

Every instruction takes F plus the phases its operands require; CPI ranges
from 2 (reg-reg, jumps) to 6 (mem-mem read-modify-write with two extension
words), in family with the real MSP430's 1-6 cycles.
"""

from __future__ import annotations

from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# Registers
# ---------------------------------------------------------------------------
PC = 0
SP = 1
SR = 2
CG = 3
NUM_REGS = 16

REGISTER_ALIASES = {
    "pc": PC,
    "sp": SP,
    "sr": SR,
    "cg": CG,
    **{f"r{i}": i for i in range(NUM_REGS)},
}

# ---------------------------------------------------------------------------
# Status flags (bit positions in SR)
# ---------------------------------------------------------------------------
FLAG_C = 0
FLAG_Z = 1
FLAG_N = 2
FLAG_V = 8

FLAG_MASK = (1 << FLAG_C) | (1 << FLAG_Z) | (1 << FLAG_N) | (1 << FLAG_V)

# ---------------------------------------------------------------------------
# Addressing modes
# ---------------------------------------------------------------------------
MODE_REGISTER = 0  # Rn
MODE_INDEXED = 1  # x(Rn); &abs when Rn == CG
MODE_INDIRECT = 2  # @Rn
MODE_INDIRECT_INC = 3  # @Rn+; #imm when Rn == PC

# ---------------------------------------------------------------------------
# Opcodes
# ---------------------------------------------------------------------------
FORMAT_I_OPCODES: Dict[str, int] = {
    "mov": 0x4,
    "add": 0x5,
    "addc": 0x6,
    "subc": 0x7,
    "sub": 0x8,
    "cmp": 0x9,
    "bit": 0xB,
    "bic": 0xC,
    "bis": 0xD,
    "xor": 0xE,
    "and": 0xF,
}
FORMAT_I_MNEMONICS = {v: k for k, v in FORMAT_I_OPCODES.items()}

FORMAT_II_OPCODES: Dict[str, int] = {
    "rrc": 0,
    "swpb": 1,
    "rra": 2,
    "push": 4,
    "call": 5,
}
FORMAT_II_MNEMONICS = {v: k for k, v in FORMAT_II_OPCODES.items()}

#: Format I instructions that do not write their destination.
NO_WRITEBACK = frozenset({"cmp", "bit"})
#: Format I instructions that do not update flags.
NO_FLAGS = frozenset({"mov", "bic", "bis"})

JUMP_MNEMONICS: Tuple[str, ...] = (
    "jnz",
    "jz",
    "jnc",
    "jc",
    "jn",
    "jge",
    "jl",
    "jmp",
)
COND: Dict[str, int] = {name: index for index, name in enumerate(JUMP_MNEMONICS)}
JUMP_ALIASES = {"jne": "jnz", "jeq": "jz", "jlo": "jnc", "jhs": "jc"}

JUMP_OFFSET_BITS = 10
JUMP_OFFSET_MIN = -(1 << (JUMP_OFFSET_BITS - 1))
JUMP_OFFSET_MAX = (1 << (JUMP_OFFSET_BITS - 1)) - 1

# ---------------------------------------------------------------------------
# Execution phases (one-hot indices shared with the gate-level FSM)
# ---------------------------------------------------------------------------
PHASE_F = 0
PHASE_SE = 1
PHASE_SL = 2
PHASE_DE = 3
PHASE_DL = 4
PHASE_E = 5
PHASE_J = 6
NUM_PHASES = 7

PHASE_NAMES = ("F", "SE", "SL", "DE", "DL", "E", "J")


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low *bits* of *value* as signed two's complement."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value
