"""LP430 disassembler (the ``objdump`` stage of the Figure 11 flow)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa.encode import DecodedInstruction, EncodeError, decode
from repro.isa.program import Program


def disassemble_word(
    words: Sequence[int], address: int = 0
) -> DecodedInstruction:
    """Decode one instruction from a word stream (alias of :func:`decode`)."""
    return decode(words, address)


def disassemble_program(program: Program) -> str:
    """Produce an annotated listing of the whole program memory image."""
    lines: List[str] = []
    image = program.words()
    address = 0
    while address < len(image):
        label = program.label_at(address)
        if label:
            lines.append(f"{label}:")
        window = image[address : address + 3] + [0, 0]
        try:
            instruction = decode(window, address)
        except EncodeError:
            lines.append(f"  0x{address:04x}:  .word 0x{image[address]:04x}")
            address += 1
            continue
        raw = " ".join(
            f"{image[address + i]:04x}" for i in range(instruction.length)
        )
        task = program.task_of(address)
        task_tag = ""
        if task is not None:
            task_tag = f"  ; {task.name} ({'trusted' if task.trusted else 'untrusted'})"
        lines.append(
            f"  0x{address:04x}:  {raw:<15} {instruction.render()}{task_tag}"
        )
        address += instruction.length
    return "\n".join(lines) + "\n"
