"""Intel HEX reader/writer for LP430 program images.

Figure 11's flow produces a "Loadable Program Binary (.ihex)" and the
analysis consumes "the final hex (program memory contents)".  This module
provides that interchange format: 16-bit words are emitted little-endian
at byte address ``2 * word_address``, standard record types 00 (data) and
01 (EOF), 16-byte rows, with the usual two's-complement checksum.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.program import Program


class IhexError(Exception):
    """Raised on malformed Intel HEX input."""


def _record(address: int, record_type: int, data: bytes) -> str:
    payload = bytes(
        [len(data), (address >> 8) & 0xFF, address & 0xFF, record_type]
    ) + data
    checksum = (-sum(payload)) & 0xFF
    return ":" + (payload + bytes([checksum])).hex().upper()


def write_ihex(program: Program, row_bytes: int = 16) -> str:
    """Serialise the program-memory image as Intel HEX text."""
    image: Dict[int, int] = {}  # byte address -> byte
    for word_address, word in sorted(program.code.items()):
        image[2 * word_address] = word & 0xFF
        image[2 * word_address + 1] = (word >> 8) & 0xFF

    lines: List[str] = []
    addresses = sorted(image)
    index = 0
    while index < len(addresses):
        start = addresses[index]
        row: List[int] = []
        while (
            index < len(addresses)
            and addresses[index] == start + len(row)
            and len(row) < row_bytes
        ):
            row.append(image[addresses[index]])
            index += 1
        lines.append(_record(start, 0, bytes(row)))
    lines.append(_record(0, 1, b""))
    return "\n".join(lines) + "\n"


def read_ihex(text: str) -> Dict[int, int]:
    """Parse Intel HEX into a word-address -> word image."""
    bytes_image: Dict[int, int] = {}
    saw_eof = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if not line.startswith(":"):
            raise IhexError(f"line {line_no}: missing ':' start code")
        try:
            payload = bytes.fromhex(line[1:])
        except ValueError as error:
            raise IhexError(f"line {line_no}: bad hex digits") from error
        if len(payload) < 5:
            raise IhexError(f"line {line_no}: record too short")
        if sum(payload) & 0xFF:
            raise IhexError(f"line {line_no}: checksum mismatch")
        count, high, low, record_type = payload[:4]
        data = payload[4:-1]
        if len(data) != count:
            raise IhexError(f"line {line_no}: length mismatch")
        if record_type == 1:
            saw_eof = True
            break
        if record_type != 0:
            raise IhexError(
                f"line {line_no}: unsupported record type {record_type}"
            )
        address = (high << 8) | low
        for offset, value in enumerate(data):
            bytes_image[address + offset] = value
    if not saw_eof:
        raise IhexError("missing EOF record")

    words: Dict[int, int] = {}
    for byte_address in sorted(bytes_image):
        if byte_address % 2:
            continue
        low_byte = bytes_image[byte_address]
        high_byte = bytes_image.get(byte_address + 1, 0)
        words[byte_address // 2] = low_byte | (high_byte << 8)
    # odd orphan bytes (no even partner) would indicate corruption
    for byte_address in bytes_image:
        if byte_address % 2 and byte_address - 1 not in bytes_image:
            raise IhexError(
                f"orphan high byte at byte address 0x{byte_address:04x}"
            )
    return words


def load_ihex_into_rom(text: str, rom) -> None:
    """Load an Intel HEX image into a :class:`repro.sim.soc.Rom`."""
    for word_address, word in read_ihex(text).items():
        rom.load(word_address, [word])
