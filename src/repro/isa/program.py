"""The loadable system binary and its metadata.

A :class:`Program` is what the paper calls "the application": the *entire*
binary loaded into program memory, including system code and computational
tasks, together with the side tables the toolflow needs -- task/partition
boundaries (tainted vs. untainted code), label addresses, a data-memory
image, and an address -> source-line map used for root-cause reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import memmap


@dataclass(frozen=True)
class TaskInfo:
    """One code partition (Section 5's computational task)."""

    name: str
    trusted: bool
    start: int
    end: int  # exclusive

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end


@dataclass(frozen=True)
class SourceLine:
    """Debug info: one assembled source line."""

    address: int
    length: int
    line_no: int
    text: str
    task: str


@dataclass
class Program:
    """An assembled LP430 system binary."""

    name: str = "program"
    code: Dict[int, int] = field(default_factory=dict)
    data: Dict[int, int] = field(default_factory=dict)
    labels: Dict[str, int] = field(default_factory=dict)
    tasks: List[TaskInfo] = field(default_factory=list)
    lines: List[SourceLine] = field(default_factory=list)
    source: List[str] = field(default_factory=list)
    entry: int = 0

    # ------------------------------------------------------------------
    # Image access
    # ------------------------------------------------------------------
    @property
    def code_size(self) -> int:
        return (max(self.code) + 1) if self.code else 0

    def words(self) -> List[int]:
        """Dense program-memory image from address 0."""
        image = [0] * self.code_size
        for address, word in self.code.items():
            image[address] = word
        return image

    def word_at(self, address: int) -> int:
        return self.code.get(address, 0)

    def slice_from(self, address: int, count: int = 3) -> List[int]:
        return [self.word_at(address + i) for i in range(count)]

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_rom(self, rom) -> None:
        """Load code into a :class:`repro.sim.soc.Rom` (honours task taints).

        Footnote 3 of the paper: code partitions do not, by default, mark
        their instructions as tainted in program memory, "although our tool
        allows them to be" -- callers that want that pass per-task taints
        via :meth:`load_rom_tainted`.
        """
        for address, word in self.code.items():
            rom.load(address, [word])

    def load_rom_tainted(self, rom, tainted_tasks) -> None:
        """Load code, marking instructions of *tainted_tasks* as tainted."""
        for address, word in self.code.items():
            task = self.task_of(address)
            tmask = (
                0xFFFF if task is not None and task.name in tainted_tasks else 0
            )
            rom.load(address, [word], tmask=tmask)

    def load_ram(self, memory) -> None:
        """Load the data image into a :class:`TaintedMemory` (concrete)."""
        for address, word in self.data.items():
            memory.load(address, [word])

    # ------------------------------------------------------------------
    # Metadata queries
    # ------------------------------------------------------------------
    def task_of(self, address: int) -> Optional[TaskInfo]:
        for task in self.tasks:
            if task.contains(address):
                return task
        return None

    def task_named(self, name: str) -> TaskInfo:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(name)

    def untrusted_tasks(self) -> List[TaskInfo]:
        return [task for task in self.tasks if not task.trusted]

    def line_at(self, address: int) -> Optional[SourceLine]:
        for line in self.lines:
            if line.address <= address < line.address + line.length:
                return line
        return None

    def label_at(self, address: int) -> Optional[str]:
        for name, label_address in self.labels.items():
            if label_address == address:
                return name
        return None
