"""Instruction encoding and decoding for LP430."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.isa import spec
from repro.isa.spec import (
    CG,
    COND,
    FORMAT_I_MNEMONICS,
    FORMAT_I_OPCODES,
    FORMAT_II_MNEMONICS,
    FORMAT_II_OPCODES,
    JUMP_MNEMONICS,
    MODE_INDEXED,
    MODE_INDIRECT,
    MODE_INDIRECT_INC,
    MODE_REGISTER,
    PC,
    sign_extend,
)


class EncodeError(Exception):
    """Raised for malformed instructions."""


@dataclass(frozen=True)
class Operand:
    """One operand: addressing mode + register + optional extension word."""

    mode: int
    reg: int
    ext: Optional[int] = None  # extension word (offset / immediate / address)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def register(reg: int) -> "Operand":
        return Operand(MODE_REGISTER, reg)

    @staticmethod
    def indexed(offset: int, reg: int) -> "Operand":
        return Operand(MODE_INDEXED, reg, offset & 0xFFFF)

    @staticmethod
    def absolute(address: int) -> "Operand":
        return Operand(MODE_INDEXED, CG, address & 0xFFFF)

    @staticmethod
    def indirect(reg: int) -> "Operand":
        return Operand(MODE_INDIRECT, reg)

    @staticmethod
    def autoincrement(reg: int) -> "Operand":
        return Operand(MODE_INDIRECT_INC, reg)

    @staticmethod
    def immediate(value: int) -> "Operand":
        return Operand(MODE_INDIRECT_INC, PC, value & 0xFFFF)

    # ------------------------------------------------------------------
    @property
    def is_immediate(self) -> bool:
        return self.mode == MODE_INDIRECT_INC and self.reg == PC

    @property
    def is_absolute(self) -> bool:
        return self.mode == MODE_INDEXED and self.reg == CG

    @property
    def needs_ext(self) -> bool:
        return self.mode == MODE_INDEXED or self.is_immediate

    @property
    def reads_dmem(self) -> bool:
        """Whether fetching this operand's value touches data memory."""
        if self.mode == MODE_REGISTER or self.is_immediate:
            return False
        return True

    def render(self) -> str:
        if self.mode == MODE_REGISTER:
            return f"r{self.reg}"
        if self.is_immediate:
            return f"#{self.ext}" if self.ext is not None else "#?"
        if self.is_absolute:
            return f"&0x{(self.ext or 0):04x}"
        if self.mode == MODE_INDEXED:
            return f"{sign_extend(self.ext or 0, 16)}(r{self.reg})"
        if self.mode == MODE_INDIRECT:
            return f"@r{self.reg}"
        return f"@r{self.reg}+"


@dataclass(frozen=True)
class DecodedInstruction:
    """A decoded instruction plus its location and encoding length."""

    mnemonic: str
    kind: str  # "two" | "one" | "jump"
    src: Optional[Operand] = None
    dst: Optional[Operand] = None
    offset: Optional[int] = None  # jump offset (signed, words)
    address: int = 0  # word address of the first word
    length: int = 1  # total words including extensions

    # ------------------------------------------------------------------
    @property
    def is_jump(self) -> bool:
        return self.kind == "jump"

    @property
    def jump_target(self) -> int:
        assert self.offset is not None
        return (self.address + 1 + self.offset) & 0xFFFF

    @property
    def fallthrough(self) -> int:
        return (self.address + self.length) & 0xFFFF

    @property
    def is_self_loop(self) -> bool:
        """``jmp $`` -- the idle loop the tracker treats as END."""
        return self.mnemonic == "jmp" and self.offset == -1

    @property
    def writes_pc(self) -> bool:
        """Format I/II instructions that load the PC (``br``, ``call``...)."""
        if self.kind == "two":
            return (
                self.dst is not None
                and self.dst.mode == MODE_REGISTER
                and self.dst.reg == PC
                and self.mnemonic not in spec.NO_WRITEBACK
            )
        return self.mnemonic == "call"

    @property
    def is_store(self) -> bool:
        """True when execution writes data memory."""
        if self.mnemonic in ("push", "call"):
            return True
        if self.kind != "two" or self.mnemonic in spec.NO_WRITEBACK:
            return False
        return self.dst is not None and self.dst.mode != MODE_REGISTER

    @property
    def is_conditional_jump(self) -> bool:
        return self.kind == "jump" and self.mnemonic != "jmp"

    def render(self) -> str:
        if self.kind == "jump":
            return f"{self.mnemonic} 0x{self.jump_target:04x}"
        if self.kind == "one":
            return f"{self.mnemonic} {self.src.render()}"
        return f"{self.mnemonic} {self.src.render()}, {self.dst.render()}"


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------
def encode(instruction: DecodedInstruction) -> List[int]:
    """Encode to machine words (base word + extension words, src first)."""
    if instruction.kind == "jump":
        if instruction.mnemonic not in COND:
            raise EncodeError(f"unknown jump {instruction.mnemonic!r}")
        offset = instruction.offset
        if offset is None or not (
            spec.JUMP_OFFSET_MIN <= offset <= spec.JUMP_OFFSET_MAX
        ):
            raise EncodeError(f"jump offset {offset} out of range")
        word = (
            (0b001 << 13)
            | (COND[instruction.mnemonic] << 10)
            | (offset & 0x3FF)
        )
        return [word]

    if instruction.kind == "one":
        opcode = FORMAT_II_OPCODES.get(instruction.mnemonic)
        if opcode is None:
            raise EncodeError(f"unknown format-II {instruction.mnemonic!r}")
        operand = instruction.src
        if operand is None:
            raise EncodeError(f"{instruction.mnemonic} missing operand")
        word = (
            (0b000100 << 10)
            | (opcode << 7)
            | (operand.mode << 4)
            | operand.reg
        )
        words = [word]
        if operand.needs_ext:
            if operand.ext is None:
                raise EncodeError("missing extension word")
            words.append(operand.ext & 0xFFFF)
        return words

    if instruction.kind == "two":
        opcode = FORMAT_I_OPCODES.get(instruction.mnemonic)
        if opcode is None:
            raise EncodeError(f"unknown format-I {instruction.mnemonic!r}")
        src, dst = instruction.src, instruction.dst
        if src is None or dst is None:
            raise EncodeError(f"{instruction.mnemonic} needs two operands")
        if dst.mode not in (MODE_REGISTER, MODE_INDEXED):
            raise EncodeError(
                f"destination mode {dst.mode} not encodable (Ad is 1 bit)"
            )
        ad = 1 if dst.mode == MODE_INDEXED else 0
        word = (
            (opcode << 12)
            | (src.reg << 8)
            | (ad << 7)
            | (src.mode << 4)
            | dst.reg
        )
        words = [word]
        if src.needs_ext:
            if src.ext is None:
                raise EncodeError("missing source extension word")
            words.append(src.ext & 0xFFFF)
        if dst.mode == MODE_INDEXED:
            if dst.ext is None:
                raise EncodeError("missing destination extension word")
            words.append(dst.ext & 0xFFFF)
        return words

    raise EncodeError(f"unknown instruction kind {instruction.kind!r}")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------
def decode(
    words: Sequence[int], address: int = 0
) -> DecodedInstruction:
    """Decode an instruction starting at ``words[0]``.

    *words* must include enough following words to cover any extensions
    (pass a slice of program memory starting at *address*).
    """
    word = words[0] & 0xFFFF
    top3 = word >> 13
    if top3 == 0b001:
        cond = (word >> 10) & 0x7
        offset = sign_extend(word, 10)
        return DecodedInstruction(
            mnemonic=JUMP_MNEMONICS[cond],
            kind="jump",
            offset=offset,
            address=address,
            length=1,
        )

    if (word >> 10) == 0b000100:
        opcode = (word >> 7) & 0x7
        mnemonic = FORMAT_II_MNEMONICS.get(opcode)
        if mnemonic is None:
            raise EncodeError(
                f"reserved format-II opcode {opcode} at 0x{address:04x}"
            )
        mode = (word >> 4) & 0x3
        reg = word & 0xF
        operand = Operand(mode, reg)
        length = 1
        if operand.needs_ext:
            operand = Operand(mode, reg, words[1] & 0xFFFF)
            length = 2
        return DecodedInstruction(
            mnemonic=mnemonic,
            kind="one",
            src=operand,
            address=address,
            length=length,
        )

    opcode = word >> 12
    mnemonic = FORMAT_I_MNEMONICS.get(opcode)
    if mnemonic is None:
        raise EncodeError(
            f"illegal opcode 0x{opcode:x} at 0x{address:04x}"
        )
    src_reg = (word >> 8) & 0xF
    ad = (word >> 7) & 0x1
    src_mode = (word >> 4) & 0x3
    dst_reg = word & 0xF
    index = 1
    src = Operand(src_mode, src_reg)
    if src.needs_ext:
        src = Operand(src_mode, src_reg, words[index] & 0xFFFF)
        index += 1
    if ad:
        dst = Operand(MODE_INDEXED, dst_reg, words[index] & 0xFFFF)
        index += 1
    else:
        dst = Operand(MODE_REGISTER, dst_reg)
    return DecodedInstruction(
        mnemonic=mnemonic,
        kind="two",
        src=src,
        dst=dst,
        address=address,
        length=index,
    )
