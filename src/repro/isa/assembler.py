"""Two-pass LP430 assembler.

Plays the ``msp430-as`` + ``msp430-ld`` role in the paper's Figure 11 flow:
source text in, loadable :class:`~repro.isa.program.Program` out, including
the task-partition table and per-line debug info that root-cause analysis
and the automatic software-repair stage rely on.

Syntax
------
::

    ; comment
    .org   0x0000            ; set code address (words)
    .task  sys trusted       ; start a code partition
    .equ   LIMIT 25
    loop:                     ; label
        mov   #100, r10       ; immediate
        mov   &P1IN, r15      ; absolute (peripheral symbols built in)
        mov   @r15+, r14      ; autoincrement
        mov   2(r15), r14     ; indexed
        sub   #1, r10
        jnz   loop
        jmp   $               ; idle self-loop ("halt")
    .data  0x0400            ; switch to data-image emission
    table: .word 1, 2, 3
    .space 16

Pseudo-instructions: ``nop ret pop br clr inc dec tst halt inv rla adc``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro import memmap
from repro.isa import spec
from repro.isa.encode import DecodedInstruction, EncodeError, Operand, encode
from repro.isa.program import Program, SourceLine, TaskInfo
from repro.isa.spec import (
    FORMAT_I_OPCODES,
    FORMAT_II_OPCODES,
    JUMP_ALIASES,
    JUMP_MNEMONICS,
    REGISTER_ALIASES,
)


class AssemblyError(Exception):
    """Raised with file/line context on any assembly problem."""

    def __init__(self, message: str, line_no: int = 0, text: str = ""):
        self.line_no = line_no
        self.text = text
        if line_no:
            message = f"line {line_no}: {message}  [{text.strip()}]"
        super().__init__(message)


_LABEL = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_INDEXED = re.compile(r"^(.*)\((\w+)\)$")
_NUMBER = re.compile(r"^-?(0x[0-9a-fA-F]+|0b[01]+|\d+)$")
_SYMBOL = re.compile(r"^[A-Za-z_][\w.$]*$")


def _parse_number(text: str) -> Optional[int]:
    if _NUMBER.match(text):
        return int(text, 0)
    return None


class _Item:
    """One assembled line: either an instruction or data words."""

    def __init__(self, line_no: int, text: str, address: int, task: str):
        self.line_no = line_no
        self.text = text
        self.address = address
        self.task = task
        self.length = 0
        self.kind = ""  # "insn" | "words"
        self.mnemonic = ""
        self.operands: List[str] = []
        self.word_exprs: List[str] = []
        self.in_data = False


class Assembler:
    """Two-pass assembler; use :func:`assemble` for the one-shot API."""

    def __init__(self, source: str, name: str = "program"):
        self.source_lines = source.splitlines()
        self.program = Program(name=name, source=list(self.source_lines))
        self.symbols: Dict[str, int] = dict(memmap.PERIPHERAL_SYMBOLS)
        self.items: List[_Item] = []
        self._task_starts: List[Tuple[str, bool, int]] = []
        self._code_address = 0
        self._data_address: Optional[int] = None
        self._in_data = False

    # ------------------------------------------------------------------
    # Pass 1: sizing and symbol collection
    # ------------------------------------------------------------------
    def pass1(self) -> None:
        for line_no, raw in enumerate(self.source_lines, start=1):
            text = raw.split(";")[0].rstrip()
            stripped = text.strip()
            while True:
                match = _LABEL.match(stripped)
                if not match:
                    break
                label = match.group(1)
                self._define(label, self._current_address(), line_no, text)
                stripped = stripped[match.end():].strip()
            if not stripped:
                continue
            if stripped.startswith("."):
                self._directive(stripped, line_no, text)
                continue
            self._instruction(stripped, line_no, text)
        self._close_task(self._code_address)

    def _current_address(self) -> int:
        if self._in_data:
            assert self._data_address is not None
            return self._data_address
        return self._code_address

    def _define(self, name: str, value: int, line_no: int, text: str) -> None:
        if name in self.symbols or name in self.program.labels:
            raise AssemblyError(f"duplicate symbol {name!r}", line_no, text)
        self.program.labels[name] = value
        self.symbols[name] = value

    def _close_task(self, end: int) -> None:
        if self._task_starts:
            name, trusted, start = self._task_starts[-1]
            if not self.program.tasks or self.program.tasks[-1].name != name:
                self.program.tasks.append(
                    TaskInfo(name, trusted, start, end)
                )

    def _directive(self, stripped: str, line_no: int, text: str) -> None:
        parts = stripped.split(None, 1)
        name = parts[0].lower()
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name == ".org":
            value = _parse_number(rest)
            if value is None:
                raise AssemblyError(".org needs a literal address", line_no, text)
            if self._in_data:
                self._data_address = value
            else:
                self._code_address = value
        elif name == ".task":
            fields = rest.split()
            if len(fields) != 2 or fields[1] not in (
                "trusted",
                "untrusted",
                "untainted",
                "tainted",
            ):
                raise AssemblyError(
                    ".task NAME trusted|untrusted", line_no, text
                )
            self._close_task(self._code_address)
            trusted = fields[1] in ("trusted", "untainted")
            self._task_starts.append(
                (fields[0], trusted, self._code_address)
            )
        elif name == ".equ":
            fields = rest.split(None, 1)
            if len(fields) != 2:
                raise AssemblyError(".equ NAME VALUE", line_no, text)
            value = _parse_number(fields[1].strip())
            if value is None:
                raise AssemblyError(
                    ".equ value must be a literal", line_no, text
                )
            self._define(fields[0], value & 0xFFFF, line_no, text)
        elif name == ".data":
            value = _parse_number(rest) if rest else None
            self._in_data = True
            if value is not None:
                self._data_address = value
            elif self._data_address is None:
                self._data_address = memmap.RAM_BASE
        elif name == ".text":
            self._in_data = False
        elif name == ".word":
            exprs = [e.strip() for e in rest.split(",") if e.strip()]
            if not exprs:
                raise AssemblyError(".word needs values", line_no, text)
            item = _Item(line_no, text, self._current_address(), self._task_name())
            item.kind = "words"
            item.word_exprs = exprs
            item.length = len(exprs)
            item.in_data = self._in_data
            self.items.append(item)
            self._advance(len(exprs))
        elif name == ".space":
            count = _parse_number(rest)
            if count is None or count < 0:
                raise AssemblyError(".space needs a literal count", line_no, text)
            item = _Item(line_no, text, self._current_address(), self._task_name())
            item.kind = "words"
            item.word_exprs = ["0"] * count
            item.length = count
            item.in_data = self._in_data
            self.items.append(item)
            self._advance(count)
        else:
            raise AssemblyError(f"unknown directive {name!r}", line_no, text)

    def _task_name(self) -> str:
        if self._task_starts:
            return self._task_starts[-1][0]
        return ""

    def _advance(self, words: int) -> None:
        if self._in_data:
            self._data_address += words
        else:
            self._code_address += words

    def _instruction(self, stripped: str, line_no: int, text: str) -> None:
        if self._in_data:
            raise AssemblyError(
                "instruction in data section", line_no, text
            )
        fields = stripped.split(None, 1)
        mnemonic = fields[0].lower()
        operand_text = fields[1] if len(fields) > 1 else ""
        operands = self._split_operands(operand_text)
        mnemonic, operands = self._expand_pseudo(
            mnemonic, operands, line_no, text
        )
        item = _Item(line_no, text, self._code_address, self._task_name())
        item.kind = "insn"
        item.mnemonic = mnemonic
        item.operands = operands
        item.length = self._sizeof(mnemonic, operands, line_no, text)
        self.items.append(item)
        self._code_address += item.length

    @staticmethod
    def _split_operands(text: str) -> List[str]:
        operands = []
        depth = 0
        current = ""
        for char in text:
            if char == "," and depth == 0:
                operands.append(current.strip())
                current = ""
                continue
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            current += char
        if current.strip():
            operands.append(current.strip())
        return operands

    def _expand_pseudo(
        self, mnemonic: str, operands: List[str], line_no: int, text: str
    ) -> Tuple[str, List[str]]:
        mnemonic = JUMP_ALIASES.get(mnemonic, mnemonic)
        expansions = {
            "nop": ("mov", ["r3", "r3"], 0),
            "ret": ("mov", ["@sp+", "pc"], 0),
            "halt": ("jmp", ["$"], 0),
            "pop": ("mov", ["@sp+"], 1),
            "br": ("mov", [], 1, ["pc"]),
            "clr": ("mov", ["#0"], 1),
            "inc": ("add", ["#1"], 1),
            "dec": ("sub", ["#1"], 1),
            "tst": ("cmp", ["#0"], 1),
            "inv": ("xor", ["#0xFFFF"], 1),
            "adc": ("addc", ["#0"], 1),
        }
        if mnemonic == "rla":
            if len(operands) != 1:
                raise AssemblyError("rla takes one operand", line_no, text)
            return "add", [operands[0], operands[0]]
        if mnemonic in expansions:
            entry = expansions[mnemonic]
            base, prefix, argc = entry[0], entry[1], entry[2]
            suffix = entry[3] if len(entry) > 3 else []
            if len(operands) != argc:
                raise AssemblyError(
                    f"{mnemonic} takes {argc} operand(s)", line_no, text
                )
            return base, prefix + operands + suffix
        return mnemonic, operands

    def _sizeof(
        self, mnemonic: str, operands: List[str], line_no: int, text: str
    ) -> int:
        if mnemonic in JUMP_MNEMONICS:
            return 1
        length = 1
        if mnemonic in FORMAT_II_OPCODES:
            expected = 1
        elif mnemonic in FORMAT_I_OPCODES:
            expected = 2
        else:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no, text)
        if len(operands) != expected:
            raise AssemblyError(
                f"{mnemonic} takes {expected} operand(s)", line_no, text
            )
        for operand in operands:
            if self._operand_needs_ext(operand, line_no, text):
                length += 1
        return length

    def _operand_needs_ext(
        self, operand: str, line_no: int, text: str
    ) -> bool:
        if operand.startswith("#") or operand.startswith("&"):
            return True
        if operand.lower() in REGISTER_ALIASES:
            return False
        if operand.startswith("@"):
            return False
        if _INDEXED.match(operand):
            return True
        raise AssemblyError(f"bad operand {operand!r}", line_no, text)

    # ------------------------------------------------------------------
    # Pass 2: expression evaluation and encoding
    # ------------------------------------------------------------------
    def pass2(self) -> Program:
        for item in self.items:
            if item.kind == "words":
                self._emit_words(item)
            else:
                self._emit_instruction(item)
        self.program.lines.sort(key=lambda line: line.address)
        return self.program

    def _emit_words(self, item: _Item) -> None:
        for offset, expr in enumerate(item.word_exprs):
            value = self._eval(expr, item) & 0xFFFF
            if item.in_data:
                self.program.data[item.address + offset] = value
            else:
                self.program.code[item.address + offset] = value
        if not item.in_data:
            self._note_line(item)

    def _emit_instruction(self, item: _Item) -> None:
        mnemonic = item.mnemonic
        try:
            if mnemonic in JUMP_MNEMONICS:
                target = self._eval(item.operands[0], item)
                offset = self._signed_word_delta(target, item)
                instruction = DecodedInstruction(
                    mnemonic=mnemonic,
                    kind="jump",
                    offset=offset,
                    address=item.address,
                )
            elif mnemonic in FORMAT_II_OPCODES:
                operand = self._operand(item.operands[0], item)
                instruction = DecodedInstruction(
                    mnemonic=mnemonic,
                    kind="one",
                    src=operand,
                    address=item.address,
                )
            else:
                src = self._operand(item.operands[0], item)
                dst = self._operand(item.operands[1], item)
                instruction = DecodedInstruction(
                    mnemonic=mnemonic,
                    kind="two",
                    src=src,
                    dst=dst,
                    address=item.address,
                )
            words = encode(instruction)
        except EncodeError as error:
            raise AssemblyError(str(error), item.line_no, item.text) from error
        for offset, word in enumerate(words):
            self.program.code[item.address + offset] = word
        self._note_line(item)

    def _note_line(self, item: _Item) -> None:
        self.program.lines.append(
            SourceLine(
                address=item.address,
                length=item.length,
                line_no=item.line_no,
                text=item.text,
                task=item.task,
            )
        )

    def _signed_word_delta(self, target: int, item: _Item) -> int:
        offset = target - (item.address + 1)
        if not (spec.JUMP_OFFSET_MIN <= offset <= spec.JUMP_OFFSET_MAX):
            raise AssemblyError(
                f"jump target 0x{target:04x} out of range",
                item.line_no,
                item.text,
            )
        return offset

    def _operand(self, text: str, item: _Item) -> Operand:
        lowered = text.lower()
        if lowered in REGISTER_ALIASES:
            return Operand.register(REGISTER_ALIASES[lowered])
        if text.startswith("#"):
            return Operand.immediate(self._eval(text[1:], item))
        if text.startswith("&"):
            return Operand.absolute(self._eval(text[1:], item))
        if text.startswith("@"):
            body = text[1:]
            autoincrement = body.endswith("+")
            if autoincrement:
                body = body[:-1]
            reg = REGISTER_ALIASES.get(body.lower())
            if reg is None:
                raise AssemblyError(
                    f"bad indirect operand {text!r}", item.line_no, item.text
                )
            if autoincrement:
                return Operand.autoincrement(reg)
            return Operand.indirect(reg)
        match = _INDEXED.match(text)
        if match:
            reg = REGISTER_ALIASES.get(match.group(2).lower())
            if reg is None:
                raise AssemblyError(
                    f"bad index register in {text!r}", item.line_no, item.text
                )
            return Operand.indexed(self._eval(match.group(1), item), reg)
        raise AssemblyError(f"bad operand {text!r}", item.line_no, item.text)

    def _eval(self, expr: str, item: _Item) -> int:
        expr = expr.strip()
        # Binary +/- chains (left-assoc), honouring a leading unary minus.
        tokens = re.split(r"([+-])", expr)
        tokens = [token.strip() for token in tokens if token.strip()]
        if not tokens:
            raise AssemblyError("empty expression", item.line_no, item.text)
        if tokens[0] in "+-":
            tokens.insert(0, "0")
        value = self._atom(tokens[0], item)
        index = 1
        while index < len(tokens):
            operator = tokens[index]
            if operator not in "+-" or index + 1 >= len(tokens):
                raise AssemblyError(
                    f"bad expression {expr!r}", item.line_no, item.text
                )
            operand = self._atom(tokens[index + 1], item)
            value = value + operand if operator == "+" else value - operand
            index += 2
        return value & 0xFFFF

    def _atom(self, token: str, item: _Item) -> int:
        if token == "$":
            return item.address
        number = _parse_number(token)
        if number is not None:
            return number
        if _SYMBOL.match(token) and token in self.symbols:
            return self.symbols[token]
        raise AssemblyError(
            f"undefined symbol {token!r}", item.line_no, item.text
        )


def assemble(source: str, name: str = "program") -> Program:
    """Assemble LP430 source text into a :class:`Program`."""
    assembler = Assembler(source, name=name)
    assembler.pass1()
    return assembler.pass2()
